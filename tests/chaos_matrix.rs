//! Chaos matrix: the repo's core invariants re-verified under seeded
//! fault schedules (`--features fault-inject`).
//!
//! Each test arms a set of failpoints (see DESIGN.md, "Fault model &
//! injection points"), then re-runs an invariant the plain test suite
//! already checks on clean executions:
//!
//! * **conservation** — every inserted element is extracted exactly
//!   once (XOR + sum checksums), under stretched pool windows, spurious
//!   trylock failures and forced SMR retries;
//! * **emptiness guarantee** — `extract_max` never returns `None` while
//!   the queue provably holds an element;
//! * **blocking liveness** — parked consumers always finish under
//!   spurious wakeups and pre-park delays;
//! * **panic recovery** — injected panics inside locked windows leave
//!   the tree usable (insert) or lose nothing (extract);
//! * **timeout regression** — `extract_max_timeout` charges spurious
//!   wakeups against the original deadline.
//!
//! The schedule seed defaults to a fixed matrix value and can be
//! overridden with `CHAOS_SEED=<decimal or 0xhex>` — CI sweeps a small
//! fixed set of seeds; a failure message always includes the seed so any
//! run is replayable.
//!
//! The conservation test doubles as the suite's mutation check: comment
//! out the refiller's `wait_for_consumers` call in `zmsq::pool` and
//! `conservation_consumer_wait_under_claim_delay` fails deterministically
//! (the stretched claim window races the next refill).

#![cfg(feature = "fault-inject")]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

use baselines::{KLsm, Mound, MultiQueue, SprayList};
use fault::{Action, Policy, Trigger};
use pq_traits::ConcurrentPriorityQueue;
use zmsq::{Reclamation, ShardedConfig, ShardedZmsq, ShedPolicy, Zmsq, ZmsqConfig};

/// Base seed for every schedule; override with `CHAOS_SEED`.
fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("unparseable CHAOS_SEED `{s}`"))
        }
        Err(_) => 0xC4A0_5EED,
    }
}

/// Failure hook: when the owning test panics, dump the obs flight
/// recorder to `target/obs-dump-<seed>.json` so the trace leading up to
/// the failure is preserved alongside the replayable `CHAOS_SEED`. On a
/// passing test the guard drops silently.
struct DumpOnFail(u64);

impl Drop for DumpOnFail {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let path = std::path::PathBuf::from(format!("target/obs-dump-{:#x}.json", self.0));
            if obs::recorder::dump_to_file(&path).is_ok() {
                eprintln!("chaos: flight recorder dumped to {}", path.display());
            }
        }
    }
}

/// XOR+sum conservation under concurrent producers/consumers: the
/// fundamental safety property, immune to reordering by construction.
fn run_conservation(q: &impl ConcurrentPriorityQueue<u64>, per_thread: u64) {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: u64 = 2;
    let inserted_xor = AtomicU64::new(0);
    let inserted_sum = AtomicU64::new(0);
    let extracted_xor = AtomicU64::new(0);
    let extracted_sum = AtomicU64::new(0);
    let extracted_n = AtomicU64::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let (xor, sum) = (&inserted_xor, &inserted_sum);
            s.spawn(move || {
                let mut x = 0x1234_5678 + p;
                let mut lx = 0u64;
                let mut ls = 0u64;
                for _ in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 65_536, x);
                    lx ^= x;
                    ls = ls.wrapping_add(x);
                }
                xor.fetch_xor(lx, Ordering::Relaxed);
                sum.fetch_add(ls, Ordering::Relaxed);
            });
        }
        for _ in 0..CONSUMERS {
            let (xor, sum, n) = (&extracted_xor, &extracted_sum, &extracted_n);
            s.spawn(move || {
                let mut lx = 0u64;
                let mut ls = 0u64;
                let mut ln = 0u64;
                let budget = per_thread * PRODUCERS / CONSUMERS / 2;
                let mut misses = 0u64;
                while ln < budget && misses < 1_000_000 {
                    match q.extract_max() {
                        Some((_, v)) => {
                            lx ^= v;
                            ls = ls.wrapping_add(v);
                            ln += 1;
                        }
                        None => misses += 1,
                    }
                }
                xor.fetch_xor(lx, Ordering::Relaxed);
                sum.fetch_add(ls, Ordering::Relaxed);
                n.fetch_add(ln, Ordering::Relaxed);
            });
        }
    });
    // Drain the remainder single-threaded.
    while let Some((_, v)) = q.extract_max() {
        extracted_xor.fetch_xor(v, Ordering::Relaxed);
        extracted_sum.fetch_add(v, Ordering::Relaxed);
        extracted_n.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(
        extracted_n.load(Ordering::Relaxed),
        per_thread * PRODUCERS,
        "element count not conserved"
    );
    assert_eq!(
        extracted_xor.load(Ordering::Relaxed),
        inserted_xor.load(Ordering::Relaxed),
        "XOR checksum mismatch: elements lost or duplicated"
    );
    assert_eq!(
        extracted_sum.load(Ordering::Relaxed),
        inserted_sum.load(Ordering::Relaxed),
        "sum checksum mismatch: elements lost or duplicated"
    );
}

/// The mutation-check test: ConsumerWait reclamation with the
/// claimed-but-unread window stretched by `pool.claim-delay`. Only the
/// refiller's `wait_for_consumers` makes this safe — remove it and the
/// refill overwrites slots a sleeping claimant has yet to read.
#[test]
fn conservation_consumer_wait_under_claim_delay() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x01);
    let _dump = DumpOnFail(seed ^ 0x01);
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.2)).with_action(Action::SleepMs(1)),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.3)).with_action(Action::Yield),
    );
    let q: Zmsq<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(8)
            .target_len(12)
            .reclamation(Reclamation::ConsumerWait),
    );
    run_conservation(&q, 3_000);
    assert!(
        fault::hit_count("pool.claim-delay") > 0,
        "seed {seed:#x}: claim-delay failpoint never evaluated"
    );
    fault::reset();
}

/// The rank estimator's shadow reservoir under stretched pool windows:
/// the claim/refill races that `pool.claim-delay` provokes must not
/// leak or double-release reservoir slots. Shift 0 samples every key,
/// and the keyspace (`x % 65_536`) far exceeds the 512-slot reservoir,
/// so drops are expected — the exact conservation identities are what
/// must survive:
///
/// * `sampled_inserts == stored + dropped`
/// * `sampled_extracts == matched + missed`
/// * `live == stored - matched` (no removes in this workload)
#[test]
fn estimator_conserves_samples_under_claim_delay() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x0C);
    let _dump = DumpOnFail(seed ^ 0x0C);
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.2)).with_action(Action::SleepMs(1)),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.3)).with_action(Action::Yield),
    );
    let q: Zmsq<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(8)
            .target_len(12)
            .rank_estimator(0),
    );
    run_conservation(&q, 1_500);
    // Drain the half the consumers left behind so the identities are
    // checked against a quiescent, empty queue.
    while q.extract_max().is_some() {}
    assert!(
        fault::hit_count("pool.claim-delay") > 0,
        "seed {seed:#x}: claim-delay failpoint never evaluated"
    );
    let est = q.rank_estimator().expect("estimator configured on");
    let (si, st, dr, se, ma, mi, sr, rm, rs) = est.counters();
    assert_eq!(si, 3_000, "shift 0 samples every insert");
    assert_eq!(se, 3_000, "shift 0 samples every extract (full drain)");
    assert_eq!(si, st + dr, "insert conservation broken (seed {seed:#x})");
    assert!(dr > 0, "3000 live keys must overflow 512 slots");
    assert_eq!(se, ma + mi, "extract conservation broken (seed {seed:#x})");
    assert_eq!((sr, rm, rs), (0, 0, 0), "nothing removes in this workload");
    assert_eq!(
        est.live() as u64,
        st - ma,
        "slots leaked or double-released (seed {seed:#x})"
    );
    fault::reset();
}

/// Conservation for the hazard-pointer (default) and leak reclamation
/// modes under spurious trylock failures, forced SMR protect retries and
/// stretched pool windows.
#[test]
fn conservation_hazard_and_leak_under_faults() {
    let _x = fault::exclusive();
    let seed = chaos_seed();
    for (tag, reclamation) in [(0x02u64, Reclamation::Hazard), (0x03, Reclamation::Leak)] {
        fault::reset();
        fault::set_seed(seed ^ tag);
        let _dump = DumpOnFail(seed ^ tag);
        fault::configure("trylock.spurious-fail", Policy::new(Trigger::Prob(0.05)));
        fault::configure("smr.protect-retry", Policy::new(Trigger::Prob(0.2)));
        fault::configure(
            "pool.claim-delay",
            Policy::new(Trigger::Prob(0.05)).with_action(Action::Yield),
        );
        let q: Zmsq<u64> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(8)
                .target_len(12)
                .reclamation(reclamation),
        );
        run_conservation(&q, 3_000);
        fault::reset();
    }
}

/// Sharded conservation under stretched pool windows: every shard's
/// claim and refill paths hit the same failpoints, so the two-choice
/// winner/loser steal and the cross-shard sweep run against delayed
/// claims and racing refills. The adaptive batch controller is armed so
/// its mid-run resizes (`set_current_batch` between refills) are also
/// under fire.
#[test]
fn conservation_sharded_adaptive_under_pool_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x09);
    let _dump = DumpOnFail(seed ^ 0x09);
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.1)).with_action(Action::SleepMs(1)),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.2)).with_action(Action::Yield),
    );
    fault::configure("trylock.spurious-fail", Policy::new(Trigger::Prob(0.05)));
    let q: ShardedZmsq<u64> = ShardedZmsq::new(
        4,
        ZmsqConfig::default()
            .batch(4)
            .target_len(8)
            .adaptive_batch(2, 16),
    );
    run_conservation(&q, 3_000);
    assert!(
        fault::hit_count("pool.claim-delay") > 0,
        "seed {seed:#x}: claim-delay failpoint never evaluated"
    );
    fault::reset();
}

/// The batched entry points under the same pool faults: `insert_batch`
/// scatters, `extract_batch` claims multi-slot windows (`try_claim_many`
/// sits directly on the `pool.claim-delay` failpoint), and XOR/sum
/// checksums must still balance.
#[test]
fn conservation_sharded_batched_ops_under_pool_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x0A);
    let _dump = DumpOnFail(seed ^ 0x0A);
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.1)).with_action(Action::Yield),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.2)).with_action(Action::Yield),
    );
    let q: ShardedZmsq<u64> = ShardedZmsq::new(2, ZmsqConfig::default().batch(8).target_len(12));
    const PRODUCERS: u64 = 2;
    const CONSUMERS: u64 = 2;
    const PER: u64 = 3_000;
    let inserted_xor = AtomicU64::new(0);
    let extracted_xor = AtomicU64::new(0);
    let extracted_n = AtomicU64::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let (q, xor) = (&q, &inserted_xor);
            s.spawn(move || {
                let mut x = 0xBA7C_4ED0 + p;
                let mut lx = 0u64;
                let mut batch = Vec::with_capacity(16);
                for _ in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    batch.push((x % 65_536, x));
                    lx ^= x;
                    if batch.len() == 16 {
                        q.insert_batch(&mut batch);
                    }
                }
                q.insert_batch(&mut batch);
                xor.fetch_xor(lx, Ordering::Relaxed);
            });
        }
        for _ in 0..CONSUMERS {
            let (q, xor, n) = (&q, &extracted_xor, &extracted_n);
            s.spawn(move || {
                let mut lx = 0u64;
                let mut ln = 0u64;
                let mut out = Vec::with_capacity(8);
                let budget = PER * PRODUCERS / CONSUMERS / 2;
                let mut misses = 0u64;
                while ln < budget && misses < 1_000_000 {
                    out.clear();
                    let got = q.extract_batch(&mut out, 8);
                    if got == 0 {
                        misses += 1;
                        continue;
                    }
                    for &(_, v) in &out {
                        lx ^= v;
                    }
                    ln += got as u64;
                }
                xor.fetch_xor(lx, Ordering::Relaxed);
                n.fetch_add(ln, Ordering::Relaxed);
            });
        }
    });
    let mut out = Vec::new();
    while q.extract_batch(&mut out, 64) > 0 {}
    for &(_, v) in &out {
        extracted_xor.fetch_xor(v, Ordering::Relaxed);
        extracted_n.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(
        extracted_n.load(Ordering::Relaxed),
        PER * PRODUCERS,
        "batched element count not conserved"
    );
    assert_eq!(
        extracted_xor.load(Ordering::Relaxed),
        inserted_xor.load(Ordering::Relaxed),
        "batched XOR checksum mismatch: elements lost or duplicated"
    );
    assert!(
        fault::hit_count("pool.claim-delay") > 0,
        "seed {seed:#x}: claim-delay failpoint never evaluated"
    );
    fault::reset();
}

/// Emptiness guarantee (§3.7) under faults: a credit claimed after a
/// completed insert proves the queue is nonempty, so `extract_max` must
/// return `Some` on the first call — even with trylock failures and
/// stretched pool windows injected.
#[test]
fn emptiness_guarantee_under_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x04);
    let _dump = DumpOnFail(seed ^ 0x04);
    fault::configure("trylock.spurious-fail", Policy::new(Trigger::Prob(0.05)));
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.1)).with_action(Action::Yield),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.1)).with_action(Action::Yield),
    );

    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 4;
    const TOTAL: i64 = 20_000;
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(8).target_len(12));
    let credits = AtomicI64::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let q = &q;
            let credits = &credits;
            s.spawn(move || {
                let share = TOTAL / PRODUCERS as i64;
                let mut x = 0xACE0 + p as u64;
                for _ in 0..share {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 65_536, x);
                    // Credit only after the insert completed.
                    credits.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let q = &q;
            let credits = &credits;
            s.spawn(move || loop {
                let c = credits.fetch_sub(1, Ordering::SeqCst);
                if c <= 0 {
                    credits.fetch_add(1, Ordering::SeqCst);
                    if c <= -(TOTAL * 2) {
                        return; // producers done, queue drained
                    }
                    let done = credits.load(Ordering::SeqCst) <= 0;
                    std::thread::yield_now();
                    if done && q.len_hint() == 0 {
                        return;
                    }
                    continue;
                }
                assert!(
                    q.extract_max().is_some(),
                    "emptiness guarantee violated: None with a claimed credit"
                );
            });
        }
    });
    fault::reset();
}

/// Blocking liveness (§3.6) under spurious wakeups and pre-park delays:
/// every handoff completes and `close()` releases the consumer.
#[test]
fn blocking_liveness_under_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x05);
    let _dump = DumpOnFail(seed ^ 0x05);
    fault::configure("futex.spurious-wake", Policy::new(Trigger::Prob(0.3)));
    fault::configure(
        "event.pre-park-delay",
        Policy::new(Trigger::Prob(0.05)).with_action(Action::SleepMs(1)),
    );

    const ROUNDS: u64 = 1_000;
    let q: Zmsq<u64> =
        Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(8).blocking(true));
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        let q2 = &q;
        let got = &got;
        let consumer = s.spawn(move || {
            let mut n = 0u64;
            while q2.extract_max_blocking().is_some() {
                n += 1;
                got.fetch_add(1, Ordering::SeqCst);
            }
            n
        });
        for i in 0..ROUNDS {
            q.insert(i % 128, i);
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        while got.load(Ordering::SeqCst) < ROUNDS {
            std::thread::yield_now();
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), ROUNDS);
    });
    assert!(
        fault::hit_count("futex.spurious-wake") > 0,
        "spurious-wake off-path"
    );
    fault::reset();
}

/// Panic recovery: periodic injected panics inside insert's locked
/// window must only ever lose the in-flight element — the queue stays
/// operational and everything else drains out.
#[test]
fn insert_panic_recovery_under_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x06);
    let _dump = DumpOnFail(seed ^ 0x06);
    fault::configure(
        "queue.insert.locked-panic",
        Policy::new(Trigger::EveryNth(97)).with_action(Action::Panic("chaos")),
    );
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(6));
    const N: u64 = 5_000;
    let mut lost = 0u64;
    for i in 0..N {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.insert(i % 512, i);
        }));
        if r.is_err() {
            lost += 1;
        }
    }
    assert!(lost > 0, "seed: panic failpoint never fired");
    fault::reset();
    let mut q = q;
    q.validate_invariants()
        .expect("tree invariants broken after unwinds");
    assert_eq!(
        q.drain_count() as u64,
        N - lost,
        "conservation modulo lost in-flight"
    );
}

/// Extraction panics fire before any mutation: nothing is lost across
/// repeated injected panics, and the drain completes.
#[test]
fn extract_panic_recovery_under_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x07);
    let _dump = DumpOnFail(seed ^ 0x07);
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(6));
    const N: u64 = 2_000;
    for i in 0..N {
        q.insert(i % 512, i);
    }
    fault::configure(
        "queue.extract.locked-panic",
        Policy::new(Trigger::EveryNth(41)).with_action(Action::Panic("chaos")),
    );
    let mut drained = 0u64;
    let mut panics = 0u64;
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.extract_max())) {
            Ok(Some(_)) => drained += 1,
            Ok(None) => break,
            Err(_) => panics += 1,
        }
    }
    assert!(panics > 0, "panic failpoint never fired");
    assert_eq!(drained, N, "extraction panics must not lose elements");
    fault::reset();
}

/// `extract_max_timeout` must meet its deadline even when every park
/// returns spuriously (the satellite-2 regression, at matrix scale).
#[test]
fn timeout_holds_under_spurious_wake_storm() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x08);
    let _dump = DumpOnFail(seed ^ 0x08);
    fault::configure("futex.spurious-wake", Policy::new(Trigger::Always));
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().blocking(true));
    let timeout = Duration::from_millis(40);
    let start = std::time::Instant::now();
    assert_eq!(q.extract_max_timeout(timeout), None);
    let elapsed = start.elapsed();
    fault::reset();
    assert!(elapsed >= timeout, "returned early: {elapsed:?}");
    assert!(elapsed < timeout * 25, "deadline restarted: {elapsed:?}");
}

/// Overload conservation under all three shed policies with the
/// `queue.capacity.race` failpoint stretching the window between a
/// successful occupancy CAS and the element actually landing in the
/// tree (and between extraction and the matching release). Each policy
/// has its own exact accounting identity:
///
/// * `Block` — nothing is ever shed, so the plain XOR/sum checksums
///   must balance and every element round-trips;
/// * `Reject` — `try_insert` hands rejected elements back, so the
///   admitted-side checksum (tracked by the producers) must balance;
/// * `ShedLowest` — evicted victims were admitted first, so the count
///   identity `inserts == extracted + shed_evicted` must hold.
///
/// All three end with `occupancy() == 0` after a full drain: the
/// occupancy counter is exactly admitted − extracted − evicted.
#[test]
fn overload_conservation_all_policies_under_capacity_race() {
    let _x = fault::exclusive();
    let seed = chaos_seed();
    const PRODUCERS: u64 = 2;
    const PER: u64 = 2_000;
    const CAP: usize = 64;

    let arm = |tag: u64| {
        fault::reset();
        fault::set_seed(seed ^ tag);
        fault::configure(
            "queue.capacity.race",
            Policy::new(Trigger::Prob(0.15)).with_action(Action::Yield),
        );
    };
    let bounded = |shed: ShedPolicy| -> Zmsq<u64> {
        Zmsq::with_config(
            ZmsqConfig::default()
                .batch(4)
                .target_len(8)
                .capacity(CAP)
                .shed_policy(shed),
        )
    };

    // Block: producers park when full, a consumer drains until every
    // produced element came back out. Exact XOR conservation.
    {
        arm(0x0B);
        let _dump = DumpOnFail(seed ^ 0x0B);
        let q = bounded(ShedPolicy::Block);
        let inserted_xor = AtomicU64::new(0);
        let extracted_xor = AtomicU64::new(0);
        let extracted_n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let (q, xor) = (&q, &inserted_xor);
                s.spawn(move || {
                    let mut x = 0x0B10_C4ED + p;
                    let mut lx = 0u64;
                    for _ in 0..PER {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        q.insert(x % 65_536, x);
                        lx ^= x;
                    }
                    xor.fetch_xor(lx, Ordering::Relaxed);
                });
            }
            let (q, xor, n) = (&q, &extracted_xor, &extracted_n);
            s.spawn(move || {
                // Must drain everything: parked producers depend on it.
                while n.load(Ordering::Relaxed) < PER * PRODUCERS {
                    match q.extract_max() {
                        Some((_, v)) => {
                            xor.fetch_xor(v, Ordering::Relaxed);
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        });
        assert_eq!(
            extracted_xor.load(Ordering::Relaxed),
            inserted_xor.load(Ordering::Relaxed),
            "seed {seed:#x}: Block policy lost or duplicated elements"
        );
        assert_eq!(q.occupancy(), 0, "seed {seed:#x}: Block occupancy leak");
        assert!(
            fault::hit_count("queue.capacity.race") > 0,
            "seed {seed:#x}: capacity.race failpoint never evaluated"
        );
    }

    // Reject: producers use `try_insert` and keep the exact admitted
    // checksum (a Full error hands the element back untouched).
    {
        arm(0x1B);
        let _dump = DumpOnFail(seed ^ 0x1B);
        let q = bounded(ShedPolicy::Reject);
        let admitted_xor = AtomicU64::new(0);
        let admitted_n = AtomicU64::new(0);
        let rejected_n = AtomicU64::new(0);
        let extracted_xor = AtomicU64::new(0);
        let extracted_n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let (q, xor, an, rn) = (&q, &admitted_xor, &admitted_n, &rejected_n);
                s.spawn(move || {
                    let mut x = 0x4E1E_C7ED + p;
                    let (mut lx, mut la, mut lr) = (0u64, 0u64, 0u64);
                    for _ in 0..PER {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        match q.try_insert(x % 65_536, x) {
                            Ok(()) => {
                                lx ^= x;
                                la += 1;
                            }
                            Err(e) => {
                                let v = e.into_value();
                                assert_eq!(v, x, "rejected element mangled");
                                lr += 1;
                            }
                        }
                    }
                    xor.fetch_xor(lx, Ordering::Relaxed);
                    an.fetch_add(la, Ordering::Relaxed);
                    rn.fetch_add(lr, Ordering::Relaxed);
                });
            }
            for _ in 0..2 {
                let (q, xor, n) = (&q, &extracted_xor, &extracted_n);
                s.spawn(move || {
                    let mut misses = 0u64;
                    while misses < 200_000 {
                        match q.extract_max() {
                            Some((_, v)) => {
                                xor.fetch_xor(v, Ordering::Relaxed);
                                n.fetch_add(1, Ordering::Relaxed);
                                misses = 0;
                            }
                            None => misses += 1,
                        }
                    }
                });
            }
        });
        while let Some((_, v)) = q.extract_max() {
            extracted_xor.fetch_xor(v, Ordering::Relaxed);
            extracted_n.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(
            extracted_n.load(Ordering::Relaxed),
            admitted_n.load(Ordering::Relaxed),
            "seed {seed:#x}: Reject admitted-count identity broken"
        );
        assert_eq!(
            extracted_xor.load(Ordering::Relaxed),
            admitted_xor.load(Ordering::Relaxed),
            "seed {seed:#x}: Reject admitted-XOR identity broken"
        );
        assert_eq!(q.occupancy(), 0, "seed {seed:#x}: Reject occupancy leak");
        assert!(
            fault::hit_count("queue.capacity.race") > 0,
            "seed {seed:#x}: capacity.race failpoint never evaluated"
        );
    }

    // ShedLowest: evictions silently drop admitted elements, so the
    // identity shifts to the stats counters.
    {
        arm(0x2B);
        let _dump = DumpOnFail(seed ^ 0x2B);
        let mut q = bounded(ShedPolicy::ShedLowest);
        let extracted_n = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    let mut x = 0x53ED_10E5 + p;
                    for _ in 0..PER {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        q.insert(x % 65_536, x);
                    }
                });
            }
            for _ in 0..2 {
                let (q, n) = (&q, &extracted_n);
                s.spawn(move || {
                    let mut misses = 0u64;
                    while misses < 200_000 {
                        match q.extract_max() {
                            Some(_) => {
                                n.fetch_add(1, Ordering::Relaxed);
                                misses = 0;
                            }
                            None => misses += 1,
                        }
                    }
                });
            }
        });
        while q.extract_max().is_some() {
            extracted_n.fetch_add(1, Ordering::Relaxed);
        }
        let s = q.stats();
        assert_eq!(
            s.inserts,
            extracted_n.load(Ordering::Relaxed) + s.shed_evicted,
            "seed {seed:#x}: ShedLowest conservation identity broken \
             (inserts != extracted + evicted)"
        );
        assert_eq!(
            s.inserts + s.shed_rejected,
            PER * PRODUCERS,
            "seed {seed:#x}: ShedLowest arrival accounting broken"
        );
        assert_eq!(
            q.occupancy(),
            0,
            "seed {seed:#x}: ShedLowest occupancy leak"
        );
        assert!(
            fault::hit_count("queue.capacity.race") > 0,
            "seed {seed:#x}: capacity.race failpoint never evaluated"
        );
        q.validate_invariants()
            .expect("tree invariants broken after evictions under faults");
    }
    fault::reset();
}

/// Producer liveness under lost-wake pressure: `producer.wake-lost`
/// stalls every producer between its failed admission attempt and
/// sleeper registration, so concurrent release+signal pairs complete
/// entirely inside the gap. The `EventBuffer` predicate re-check after
/// registration is the only thing standing between this schedule and a
/// parked-forever producer — the test passing *is* the liveness proof.
#[test]
fn producer_liveness_under_wake_lost() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x0C);
    let _dump = DumpOnFail(seed ^ 0x0C);
    fault::configure(
        "producer.wake-lost",
        Policy::new(Trigger::Prob(0.25)).with_action(Action::SleepMs(1)),
    );
    let q: Zmsq<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(2)
            .target_len(4)
            .capacity(4)
            .shed_policy(ShedPolicy::Block),
    );
    const PRODUCERS: u64 = 2;
    const PER: u64 = 400;
    let inserted_xor = AtomicU64::new(0);
    let extracted_xor = AtomicU64::new(0);
    let extracted_n = AtomicU64::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let (q, xor) = (&q, &inserted_xor);
            s.spawn(move || {
                let mut x = 0x3A4E_5EED + p;
                let mut lx = 0u64;
                for _ in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 65_536, x);
                    lx ^= x;
                }
                xor.fetch_xor(lx, Ordering::Relaxed);
            });
        }
        let (q, xor, n) = (&q, &extracted_xor, &extracted_n);
        s.spawn(move || {
            while n.load(Ordering::Relaxed) < PER * PRODUCERS {
                match q.extract_max() {
                    Some((_, v)) => {
                        xor.fetch_xor(v, Ordering::Relaxed);
                        n.fetch_add(1, Ordering::Relaxed);
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
    });
    let stats = q.stats();
    assert_eq!(
        extracted_xor.load(Ordering::Relaxed),
        inserted_xor.load(Ordering::Relaxed),
        "seed {seed:#x}: elements lost or duplicated under wake-lost"
    );
    assert_eq!(q.occupancy(), 0, "seed {seed:#x}: occupancy leak");
    assert!(
        stats.producer_waits > 0,
        "seed {seed:#x}: capacity 4 never made a producer wait"
    );
    assert!(
        fault::hit_count("producer.wake-lost") > 0,
        "seed {seed:#x}: wake-lost failpoint never evaluated"
    );
    fault::reset();
}

/// Batched-op conservation for a baseline through the `pq_traits`
/// default `insert_batch`/`extract_batch` paths, with a seeded
/// harness-side failpoint (`baseline.op-delay`) perturbing the
/// interleaving between batch operations.
///
/// Returns `(inserted_xor, extracted_xor, extracted_n)` after a
/// best-effort drain rather than asserting: k-LSM legitimately strands
/// elements in exited threads' local buffers (the §2.1 deficiency this
/// repo reproduces on purpose), so the caller finishes reconciliation —
/// with [`KLsm::drain_all`] where needed — and asserts the identity.
fn run_conservation_batched(
    q: &impl ConcurrentPriorityQueue<u64>,
    per_thread: u64,
    salt: u64,
) -> (u64, u64, u64) {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: u64 = 2;
    let inserted_xor = AtomicU64::new(0);
    let extracted_xor = AtomicU64::new(0);
    let extracted_n = AtomicU64::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let (q, xor) = (&q, &inserted_xor);
            s.spawn(move || {
                let mut x = salt + p;
                let mut lx = 0u64;
                let mut batch = Vec::with_capacity(16);
                for _ in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    batch.push((x % 65_536, x));
                    lx ^= x;
                    if batch.len() == 16 {
                        fault::fail_point!("baseline.op-delay");
                        q.insert_batch(&mut batch);
                    }
                }
                q.insert_batch(&mut batch);
                xor.fetch_xor(lx, Ordering::Relaxed);
            });
        }
        for _ in 0..CONSUMERS {
            let (q, xor, n) = (&q, &extracted_xor, &extracted_n);
            s.spawn(move || {
                let mut lx = 0u64;
                let mut ln = 0u64;
                let mut out = Vec::new();
                let budget = per_thread * PRODUCERS / CONSUMERS / 2;
                let mut misses = 0u64;
                while ln < budget && misses < 1_000_000 {
                    out.clear();
                    fault::fail_point!("baseline.op-delay");
                    let got = q.extract_batch(&mut out, 8);
                    if got == 0 {
                        misses += 1;
                        continue;
                    }
                    for &(_, v) in &out {
                        lx ^= v;
                    }
                    ln += got as u64;
                }
                xor.fetch_xor(lx, Ordering::Relaxed);
                n.fetch_add(ln, Ordering::Relaxed);
            });
        }
    });
    // Best-effort drain. SprayList extractions can spuriously observe
    // empty, so bound the retries by overall progress (the same idiom as
    // tests/conservation.rs) rather than stopping on the first empty
    // batch; give up after a long quiet streak and let the caller decide
    // whether the shortfall is stranded-by-design (k-LSM) or a real loss.
    let mut out = Vec::new();
    let mut stall = 0u64;
    loop {
        out.clear();
        let got = q.extract_batch(&mut out, 64);
        if got == 0 {
            if extracted_n.load(Ordering::Relaxed) >= per_thread * PRODUCERS {
                break;
            }
            stall += 1;
            if stall >= 100_000 {
                break;
            }
            std::hint::spin_loop();
            continue;
        }
        stall = 0;
        for &(_, v) in &out {
            extracted_xor.fetch_xor(v, Ordering::Relaxed);
        }
        extracted_n.fetch_add(got as u64, Ordering::Relaxed);
    }
    (
        inserted_xor.load(Ordering::Relaxed),
        extracted_xor.load(Ordering::Relaxed),
        extracted_n.load(Ordering::Relaxed),
    )
}

/// The baselines through the default batched entry points under a
/// seeded fault schedule. The baselines carry no internal failpoints,
/// so the injection lives in the harness: a seeded `baseline.op-delay`
/// yield between batch operations widens the producer/consumer
/// interleavings the same way the internal failpoints stretch ZMSQ's
/// windows. One test per baseline so a failure names the culprit.
fn run_baseline_batched_chaos(
    q: &impl ConcurrentPriorityQueue<u64>,
    tag: u64,
    salt: u64,
) -> (u64, u64, u64) {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ tag);
    let _dump = DumpOnFail(seed ^ tag);
    fault::configure(
        "baseline.op-delay",
        Policy::new(Trigger::Prob(0.15)).with_action(Action::Yield),
    );
    let sums = run_conservation_batched(q, BASELINE_PER, salt);
    assert!(
        fault::hit_count("baseline.op-delay") > 0,
        "seed {seed:#x}: op-delay failpoint never evaluated"
    );
    fault::reset();
    sums
}

/// Elements per producer thread in the baseline batched-chaos runs
/// (2 producers, so the conserved total is twice this).
const BASELINE_PER: u64 = 2_000;

/// Mound (strict baseline) batched conservation under seeded faults.
#[test]
fn conservation_mound_batched_under_faults() {
    let q: Mound<u64> = Mound::new();
    let (ins_xor, ext_xor, ext_n) = run_baseline_batched_chaos(&q, 0x0D, 0x40A1_D000);
    assert_eq!(
        ext_n,
        BASELINE_PER * 2,
        "mound: element count not conserved"
    );
    assert_eq!(ext_xor, ins_xor, "mound: elements lost or duplicated");
}

/// SprayList (relaxed baseline) batched conservation under seeded faults.
#[test]
fn conservation_spraylist_batched_under_faults() {
    let q: SprayList<u64> = SprayList::new(4);
    let (ins_xor, ext_xor, ext_n) = run_baseline_batched_chaos(&q, 0x1D, 0x51A4_D000);
    assert_eq!(
        ext_n,
        BASELINE_PER * 2,
        "spraylist: element count not conserved"
    );
    assert_eq!(ext_xor, ins_xor, "spraylist: elements lost or duplicated");
}

/// k-LSM (relaxed baseline) batched conservation under seeded faults.
/// Producers exit with up to `k` elements parked in their local
/// components — invisible to other threads' `extract_max` (the §2.1
/// deficiency this port reproduces on purpose) — so the reconciliation
/// finishes with the quiescent `drain_all` before asserting.
#[test]
fn conservation_klsm_batched_under_faults() {
    let mut q: KLsm<u64> = KLsm::new(64);
    let (ins_xor, mut ext_xor, mut ext_n) = run_baseline_batched_chaos(&q, 0x2D, 0x6C5A_D000);
    let stranded = q.drain_all();
    assert!(
        stranded.len() as u64 <= 2 * 64,
        "k-LSM stranded more than two locals' worth: {}",
        stranded.len()
    );
    for (_, v) in stranded {
        ext_xor ^= v;
        ext_n += 1;
    }
    assert_eq!(
        ext_n,
        BASELINE_PER * 2,
        "k-lsm: element count not conserved"
    );
    assert_eq!(ext_xor, ins_xor, "k-lsm: elements lost or duplicated");
}

/// Tuned (sticky + buffered) sharded conservation under stretched
/// flush and pool windows: operation buffers stage elements in shared
/// per-thread slots, and every overflow/re-sample flush crosses the
/// `shard.flush-delay` failpoint while the underlying pool claims and
/// refills are delayed too. Conservation must hold through the
/// flush-before-report path that publishes slot buffers when a consumer
/// would otherwise report empty — including the final single-threaded
/// drain of elements the worker threads left staged.
#[test]
fn conservation_tuned_sharded_under_flush_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x0E);
    let _dump = DumpOnFail(seed ^ 0x0E);
    fault::configure(
        "shard.flush-delay",
        Policy::new(Trigger::Prob(0.05)).with_action(Action::SleepMs(1)),
    );
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.1)).with_action(Action::Yield),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.2)).with_action(Action::Yield),
    );
    fault::configure("trylock.spurious-fail", Policy::new(Trigger::Prob(0.05)));
    let q: ShardedZmsq<u64> = ShardedZmsq::with_tuning(
        4,
        ZmsqConfig::default().batch(4).target_len(8),
        ShardedConfig::new()
            .stickiness(8)
            .insert_buffer(8)
            .delete_buffer(8),
    );
    run_conservation(&q, 3_000);
    assert!(
        fault::hit_count("shard.flush-delay") > 0,
        "seed {seed:#x}: flush-delay failpoint never evaluated"
    );
    fault::reset();
}

/// Tuned MultiQueue conservation under delayed buffer flushes: the
/// baseline's operation buffers share the `shard.flush-delay` failpoint,
/// so a yield right before each publish widens the window in which a
/// racing consumer sees the sub-heaps empty while elements sit staged.
/// The retry/drain logic in `run_conservation` must still account for
/// every element.
#[test]
fn conservation_tuned_multiqueue_under_flush_faults() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x0F);
    let _dump = DumpOnFail(seed ^ 0x0F);
    fault::configure(
        "shard.flush-delay",
        Policy::new(Trigger::Prob(0.1)).with_action(Action::Yield),
    );
    let q: MultiQueue<u64> = MultiQueue::with_tuning(4, 2, 8, 8, 8);
    run_conservation(&q, 3_000);
    assert!(
        fault::hit_count("shard.flush-delay") > 0,
        "seed {seed:#x}: flush-delay failpoint never evaluated"
    );
    fault::reset();
}

/// Slab slot conservation under chaos pool windows: with the
/// slab-backed sets, every element living in a tree set occupies
/// exactly one slab slot, so at every quiescent point
/// `slab.live == inserts − extracts − pooled` — and the pool can hold
/// at most one refill batch. The claim/refill races stretched by
/// `pool.claim-delay` are precisely where a buggy recycler would leak
/// (slot freed twice → list corruption) or strand (slot never freed)
/// storage; the identity is checked over several churn phases and
/// exactly (`live == 0`) on the fully drained queue.
#[test]
fn slab_slot_conservation_under_pool_chaos() {
    let _x = fault::exclusive();
    fault::reset();
    let seed = chaos_seed();
    fault::set_seed(seed ^ 0x5A);
    let _dump = DumpOnFail(seed ^ 0x5A);
    fault::configure(
        "pool.claim-delay",
        Policy::new(Trigger::Prob(0.2)).with_action(Action::SleepMs(1)),
    );
    fault::configure(
        "pool.refill-delay",
        Policy::new(Trigger::Prob(0.3)).with_action(Action::Yield),
    );
    fault::configure("trylock.spurious-fail", Policy::new(Trigger::Prob(0.05)));
    const BATCH_MAX: u64 = 48; // ZmsqConfig::default() ceiling
    let q: zmsq::ZmsqSlab<u64> = Zmsq::with_config(ZmsqConfig::default().batch(8).target_len(12));
    for phase in 0..3u64 {
        run_conservation(&q, 1_000);
        // Quiescent sandwich: live slots are the in-queue elements minus
        // whatever sits claimable in pool buffers (taken out of their
        // slots at refill), which one refill bounds by batch_max.
        let s = q.stats();
        let in_queue = s.inserts - s.extracts;
        let slab = q.slab_stats().expect("slab variant exposes arena stats");
        assert!(
            slab.live <= in_queue,
            "phase {phase}: {} live slots exceed {in_queue} in-queue elements \
             (double-handed slot, seed {seed:#x})",
            slab.live
        );
        assert!(
            slab.live + BATCH_MAX >= in_queue,
            "phase {phase}: {} live slots for {in_queue} in-queue elements — \
             more than one refill batch unaccounted (leaked slots, seed {seed:#x})",
            slab.live
        );
        // Drain to empty: the identity must now hold exactly.
        let mut drained = 0u64;
        while q.extract_max().is_some() {
            drained += 1;
        }
        assert_eq!(drained, in_queue, "phase {phase}: drain count mismatch");
        let s = q.stats();
        assert_eq!(s.inserts, s.extracts, "phase {phase}: conservation broken");
        assert_eq!(
            q.slab_stats().unwrap().live,
            0,
            "phase {phase}: live != inserts − extracts on the drained queue \
             (slots leaked, seed {seed:#x})"
        );
    }
    let slab = q.slab_stats().unwrap();
    assert!(slab.hits > 0, "churn must exercise the recycler");
    assert!(
        fault::hit_count("pool.claim-delay") > 0,
        "seed {seed:#x}: claim-delay failpoint never evaluated"
    );
    fault::reset();
}
