//! Property-based conservation across *every* queue implementation:
//! arbitrary single-threaded op sequences must preserve the multiset of
//! elements, for strict and relaxed queues alike.

use proptest::prelude::*;

use pq_traits::ConcurrentPriorityQueue;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Extract,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u64..500).prop_map(Op::Insert),
            2 => Just(Op::Extract),
        ],
        1..200,
    )
}

fn run_conservation<Q: ConcurrentPriorityQueue<u64>>(q: &Q, ops: &[Op], strict: bool) {
    let mut model: Vec<u64> = Vec::new(); // sorted ascending
    for op in ops {
        match op {
            Op::Insert(k) => {
                q.insert(*k, *k);
                let pos = model.partition_point(|&x| x <= *k);
                model.insert(pos, *k);
            }
            Op::Extract => match q.extract_max() {
                Some((k, v)) => {
                    assert_eq!(k, v, "{}: value corrupted", q.name());
                    let pos = model
                        .iter()
                        .rposition(|&x| x == k)
                        .unwrap_or_else(|| panic!("{}: phantom key {k}", q.name()));
                    if strict {
                        assert_eq!(
                            k,
                            *model.last().unwrap(),
                            "{}: strict queue returned non-max",
                            q.name()
                        );
                    }
                    model.remove(pos);
                }
                None => {
                    // Relaxed queues may fail spuriously; retry a bounded
                    // number of times to distinguish from loss.
                    if !model.is_empty() {
                        let mut recovered = false;
                        for _ in 0..100_000 {
                            if let Some((k, _)) = q.extract_max() {
                                let pos = model
                                    .iter()
                                    .rposition(|&x| x == k)
                                    .expect("phantom key on retry");
                                model.remove(pos);
                                recovered = true;
                                break;
                            }
                        }
                        assert!(
                            recovered || !strict,
                            "{}: lost elements ({} modeled)",
                            q.name(),
                            model.len()
                        );
                    }
                }
            },
        }
    }
    // Final drain: every modeled element must come back out.
    let mut stall = 0;
    while !model.is_empty() {
        match q.extract_max() {
            Some((k, _)) => {
                stall = 0;
                let pos = model
                    .iter()
                    .rposition(|&x| x == k)
                    .unwrap_or_else(|| panic!("{}: phantom key {k} in drain", q.name()));
                model.remove(pos);
            }
            None => {
                stall += 1;
                assert!(stall < 1_000_000, "{}: drain stalled", q.name());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn coarse_heap(ops in ops()) {
        run_conservation(&baselines::CoarseHeap::new(), &ops, true);
    }

    #[test]
    fn mound(ops in ops()) {
        run_conservation(&baselines::Mound::new(), &ops, true);
    }

    #[test]
    fn skiplist_strict(ops in ops()) {
        run_conservation(&baselines::StrictSkiplistPq::new(), &ops, true);
    }

    #[test]
    fn spraylist(ops in ops()) {
        run_conservation(&baselines::SprayList::new(8), &ops, false);
    }

    #[test]
    fn multiqueue(ops in ops()) {
        run_conservation(&baselines::MultiQueue::new(4, 2), &ops, false);
    }

    #[test]
    fn klsm_single_thread(ops in ops()) {
        // Single-threaded, the k-LSM sees its own local + global: no
        // invisible elements, so conservation holds.
        run_conservation(&baselines::KLsm::new(16), &ops, false);
    }

    #[test]
    fn zmsq_relaxed(ops in ops()) {
        let q: zmsq::Zmsq<u64> = zmsq::Zmsq::with_config(
            zmsq::ZmsqConfig::default().batch(4).target_len(6),
        );
        run_conservation(&q, &ops, false);
    }

    #[test]
    fn zmsq_strict(ops in ops()) {
        let q: zmsq::Zmsq<u64> = zmsq::Zmsq::with_config(zmsq::ZmsqConfig::strict());
        run_conservation(&q, &ops, true);
    }
}
