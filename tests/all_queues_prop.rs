//! Property-based conservation across *every* queue implementation:
//! arbitrary single-threaded op sequences must preserve the multiset of
//! elements, for strict and relaxed queues alike.

use fault::DetRng;
use pq_traits::ConcurrentPriorityQueue;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Extract,
}

/// Seeded op sequence: 3 insert : 2 extract, 1..200 ops.
fn random_ops(rng: &mut DetRng) -> Vec<Op> {
    let len = rng.random_range(1usize..200);
    (0..len)
        .map(|_| {
            if rng.random_range(0u32..5) < 3 {
                Op::Insert(rng.random_range(0u64..500))
            } else {
                Op::Extract
            }
        })
        .collect()
}

fn run_conservation<Q: ConcurrentPriorityQueue<u64>>(q: &Q, ops: &[Op], strict: bool) {
    let mut model: Vec<u64> = Vec::new(); // sorted ascending
    for op in ops {
        match op {
            Op::Insert(k) => {
                q.insert(*k, *k);
                let pos = model.partition_point(|&x| x <= *k);
                model.insert(pos, *k);
            }
            Op::Extract => match q.extract_max() {
                Some((k, v)) => {
                    assert_eq!(k, v, "{}: value corrupted", q.name());
                    let pos = model
                        .iter()
                        .rposition(|&x| x == k)
                        .unwrap_or_else(|| panic!("{}: phantom key {k}", q.name()));
                    if strict {
                        assert_eq!(
                            k,
                            *model.last().unwrap(),
                            "{}: strict queue returned non-max",
                            q.name()
                        );
                    }
                    model.remove(pos);
                }
                None => {
                    // Relaxed queues may fail spuriously; retry a bounded
                    // number of times to distinguish from loss.
                    if !model.is_empty() {
                        let mut recovered = false;
                        for _ in 0..100_000 {
                            if let Some((k, _)) = q.extract_max() {
                                let pos = model
                                    .iter()
                                    .rposition(|&x| x == k)
                                    .expect("phantom key on retry");
                                model.remove(pos);
                                recovered = true;
                                break;
                            }
                        }
                        assert!(
                            recovered || !strict,
                            "{}: lost elements ({} modeled)",
                            q.name(),
                            model.len()
                        );
                    }
                }
            },
        }
    }
    // Final drain: every modeled element must come back out.
    let mut stall = 0;
    while !model.is_empty() {
        match q.extract_max() {
            Some((k, _)) => {
                stall = 0;
                let pos = model
                    .iter()
                    .rposition(|&x| x == k)
                    .unwrap_or_else(|| panic!("{}: phantom key {k} in drain", q.name()));
                model.remove(pos);
            }
            None => {
                stall += 1;
                assert!(stall < 1_000_000, "{}: drain stalled", q.name());
            }
        }
    }
}

/// Run 32 seeded cases against a queue factory, reporting the case
/// index (and therefore the replayable subsequence) on failure.
fn check<Q: ConcurrentPriorityQueue<u64>>(seed: u64, strict: bool, make: impl Fn() -> Q) {
    let mut rng = DetRng::seed_from_u64(seed);
    for case in 0..32 {
        let ops = random_ops(&mut rng);
        let q = make();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_conservation(&q, &ops, strict);
        }));
        if let Err(e) = r {
            panic!("seed {seed:#x} case {case} ops {ops:?}: {e:?}");
        }
    }
}

/// Longer seeded sequences for the tuned (sticky + buffered)
/// differential: deep buffers (k = 64) need enough operations to cycle
/// through staging, overflow flushes and delete-buffer refills several
/// times, and a wide keyspace keeps rank measurements crisp.
fn random_ops_long(rng: &mut DetRng) -> Vec<Op> {
    // 4:1 insert bias: the live population grows to several hundred, so
    // the composed rank bounds stay well below the population size (a
    // bound past the population is trivially true and tests nothing).
    let len = rng.random_range(900usize..1400);
    (0..len)
        .map(|_| {
            if rng.random_range(0u32..5) < 4 {
                Op::Insert(rng.random_range(0u64..100_000))
            } else {
                Op::Extract
            }
        })
        .collect()
}

/// Differential run of a tuned queue against the multiset reference:
/// every extraction must return a modeled element (no phantoms, values
/// intact), `None` is allowed only when the model is empty (the
/// flush-before-report guarantee — single-threaded, staged elements are
/// the only place something could hide), and after `flush()` the drain
/// must return exactly the modeled multiset. Appends every extraction's
/// rank error (how many modeled elements were strictly greater than the
/// one returned) to `ranks` for the caller to check against the
/// composed bound documented in DESIGN.md ("Stickiness & operation
/// buffers").
fn run_tuned_differential<Q: ConcurrentPriorityQueue<u64>>(
    q: &Q,
    ops: &[Op],
    ranks: &mut Vec<usize>,
) {
    let mut model: Vec<u64> = Vec::new(); // sorted ascending
    let note_extract = |model: &mut Vec<u64>, k: u64, ranks: &mut Vec<usize>| {
        let pos = model
            .iter()
            .rposition(|&x| x == k)
            .unwrap_or_else(|| panic!("{}: phantom key {k}", q.name()));
        ranks.push(model.len() - model.partition_point(|&x| x <= k));
        model.remove(pos);
    };
    for op in ops {
        match op {
            Op::Insert(k) => {
                q.insert(*k, *k);
                let pos = model.partition_point(|&x| x <= *k);
                model.insert(pos, *k);
            }
            Op::Extract => match q.extract_max() {
                Some((k, v)) => {
                    assert_eq!(k, v, "{}: value corrupted", q.name());
                    note_extract(&mut model, k, ranks);
                }
                None => assert!(
                    model.is_empty(),
                    "{}: empty report with {} live elements (flush-before-report broken)",
                    q.name(),
                    model.len()
                ),
            },
        }
    }
    // Publish whatever is still staged, then the multisets must match
    // exactly: every modeled element comes out, then the queue is empty.
    q.flush();
    while !model.is_empty() {
        match q.extract_max() {
            Some((k, _)) => note_extract(&mut model, k, &mut *ranks),
            None => panic!("{}: lost {} elements in drain", q.name(), model.len()),
        }
    }
    assert_eq!(
        q.extract_max().map(|(k, _)| k),
        None,
        "{}: surplus element after the model drained",
        q.name()
    );
}

/// Sweep stickiness c ∈ {1,4,16} × buffer depth k ∈ {1,8,64}, running
/// `cases` seeded sequences per combination, and assert the p99 of the
/// per-extraction rank errors stays within the caller's composed bound
/// for that (c, k). The p99 — not the max — is the gated statistic: the
/// worst single extraction is a heavy-tailed order statistic (a sticky
/// insert run can skew one sub-queue arbitrarily relative to the
/// others), while the p99 over a few thousand extractions is stable and
/// matches how the repo measures quality everywhere else
/// (`quality.est_rank` p99, `RankOracle` p99).
fn check_tuned<Q: ConcurrentPriorityQueue<u64>>(
    seed: u64,
    cases: u32,
    make: impl Fn(usize, usize) -> Q,
    bound: impl Fn(usize, usize) -> usize,
) {
    for &c in &[1usize, 4, 16] {
        for &k in &[1usize, 8, 64] {
            let mut rng = DetRng::seed_from_u64(seed ^ ((c as u64) << 32) ^ (k as u64) << 16);
            let mut ranks: Vec<usize> = Vec::new();
            for case in 0..cases {
                let ops = random_ops_long(&mut rng);
                let q = make(c, k);
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut case_ranks = Vec::new();
                    run_tuned_differential(&q, &ops, &mut case_ranks);
                    case_ranks
                }));
                match r {
                    Ok(rs) => ranks.extend(rs),
                    Err(e) => panic!("seed {seed:#x} c{c} k{k} case {case}: {e:?}"),
                }
            }
            ranks.sort_unstable();
            let q_at = |f: f64| ranks[((ranks.len() - 1) as f64 * f) as usize];
            let (p50, p99, max) = (q_at(0.5), q_at(0.99), *ranks.last().unwrap());
            let b = bound(c, k);
            eprintln!(
                "tuned differential c{c} k{k}: {} extracts, rank p50 {p50} p99 {p99} max {max} (bound {b})",
                ranks.len()
            );
            assert!(
                p99 <= b,
                "seed {seed:#x} c{c} k{k}: rank-error p99 {p99} exceeds composed bound {b}"
            );
        }
    }
}

/// Tuned `ShardedZmsq` vs the reference multiset: Q = 4 shards with the
/// per-shard window W = batch + 2·target_len = 4 + 12 = 16. Composed
/// bound (DESIGN.md, "Stickiness & operation buffers"):
/// `Q·(W + α·(c + k)) + slack` — every shard can be simultaneously
/// ahead by its window, a sticky run digs up to `c` refills of `k`
/// deep into one shard while the insert-biased workload (4 arrivals
/// per extraction here) piles fresh elements into the others, and
/// staged insert buffers hide up to `k` elements per thread. α = 12
/// absorbs the arrival rate; slack = 128 covers the two-choice tail at
/// this sample count. Constants are calibrated to ≥ 1.4x over the
/// measured p99 of every (c, k) cell on this workload shape.
#[test]
fn tuned_sharded_differential() {
    check_tuned(
        0xA11_0009,
        6,
        |c, k| {
            zmsq::ShardedZmsq::<u64>::with_tuning(
                4,
                zmsq::ZmsqConfig::default().batch(4).target_len(6),
                zmsq::ShardedConfig::new()
                    .stickiness(c)
                    .insert_buffer(k)
                    .delete_buffer(k),
            )
        },
        |c, k| 4 * (16 + 12 * (c + k)) + 128,
    )
}

/// Tuned `MultiQueue` vs the reference multiset: Q = 8 strict sub-heaps
/// (threads = 4 × factor 2) with per-heap window W = 1, same composed
/// bound shape as the sharded test. Its shard picks come from an
/// address-seeded thread-local RNG (deliberately not deterministic
/// across runs), so α = 8 keeps ≥ 2x headroom over every measured
/// (c, k) cell's p99 rather than hugging one seed's numbers.
#[test]
fn tuned_multiqueue_differential() {
    check_tuned(
        0xA11_000A,
        6,
        |c, k| baselines::MultiQueue::<u64>::with_tuning(4, 2, c, k, k),
        |c, k| 8 * (1 + 8 * (c + k)) + 64,
    )
}

#[test]
fn coarse_heap() {
    check(0xA11_0001, true, baselines::CoarseHeap::new);
}

#[test]
fn mound() {
    check(0xA11_0002, true, baselines::Mound::new);
}

#[test]
fn skiplist_strict() {
    check(0xA11_0003, true, baselines::StrictSkiplistPq::new);
}

#[test]
fn spraylist() {
    check(0xA11_0004, false, || baselines::SprayList::new(8));
}

#[test]
fn multiqueue() {
    check(0xA11_0005, false, || baselines::MultiQueue::new(4, 2));
}

#[test]
fn klsm_single_thread() {
    // Single-threaded, the k-LSM sees its own local + global: no
    // invisible elements, so conservation holds.
    check(0xA11_0006, false, || baselines::KLsm::new(16));
}

#[test]
fn zmsq_relaxed() {
    check(0xA11_0007, false, || {
        zmsq::Zmsq::<u64>::with_config(zmsq::ZmsqConfig::default().batch(4).target_len(6))
    });
}

#[test]
fn zmsq_strict() {
    check(0xA11_0008, true, || {
        zmsq::Zmsq::<u64>::with_config(zmsq::ZmsqConfig::strict())
    });
}
