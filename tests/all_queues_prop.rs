//! Property-based conservation across *every* queue implementation:
//! arbitrary single-threaded op sequences must preserve the multiset of
//! elements, for strict and relaxed queues alike.

use fault::DetRng;
use pq_traits::ConcurrentPriorityQueue;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Extract,
}

/// Seeded op sequence: 3 insert : 2 extract, 1..200 ops.
fn random_ops(rng: &mut DetRng) -> Vec<Op> {
    let len = rng.random_range(1usize..200);
    (0..len)
        .map(|_| {
            if rng.random_range(0u32..5) < 3 {
                Op::Insert(rng.random_range(0u64..500))
            } else {
                Op::Extract
            }
        })
        .collect()
}

fn run_conservation<Q: ConcurrentPriorityQueue<u64>>(q: &Q, ops: &[Op], strict: bool) {
    let mut model: Vec<u64> = Vec::new(); // sorted ascending
    for op in ops {
        match op {
            Op::Insert(k) => {
                q.insert(*k, *k);
                let pos = model.partition_point(|&x| x <= *k);
                model.insert(pos, *k);
            }
            Op::Extract => match q.extract_max() {
                Some((k, v)) => {
                    assert_eq!(k, v, "{}: value corrupted", q.name());
                    let pos = model
                        .iter()
                        .rposition(|&x| x == k)
                        .unwrap_or_else(|| panic!("{}: phantom key {k}", q.name()));
                    if strict {
                        assert_eq!(
                            k,
                            *model.last().unwrap(),
                            "{}: strict queue returned non-max",
                            q.name()
                        );
                    }
                    model.remove(pos);
                }
                None => {
                    // Relaxed queues may fail spuriously; retry a bounded
                    // number of times to distinguish from loss.
                    if !model.is_empty() {
                        let mut recovered = false;
                        for _ in 0..100_000 {
                            if let Some((k, _)) = q.extract_max() {
                                let pos = model
                                    .iter()
                                    .rposition(|&x| x == k)
                                    .expect("phantom key on retry");
                                model.remove(pos);
                                recovered = true;
                                break;
                            }
                        }
                        assert!(
                            recovered || !strict,
                            "{}: lost elements ({} modeled)",
                            q.name(),
                            model.len()
                        );
                    }
                }
            },
        }
    }
    // Final drain: every modeled element must come back out.
    let mut stall = 0;
    while !model.is_empty() {
        match q.extract_max() {
            Some((k, _)) => {
                stall = 0;
                let pos = model
                    .iter()
                    .rposition(|&x| x == k)
                    .unwrap_or_else(|| panic!("{}: phantom key {k} in drain", q.name()));
                model.remove(pos);
            }
            None => {
                stall += 1;
                assert!(stall < 1_000_000, "{}: drain stalled", q.name());
            }
        }
    }
}

/// Run 32 seeded cases against a queue factory, reporting the case
/// index (and therefore the replayable subsequence) on failure.
fn check<Q: ConcurrentPriorityQueue<u64>>(seed: u64, strict: bool, make: impl Fn() -> Q) {
    let mut rng = DetRng::seed_from_u64(seed);
    for case in 0..32 {
        let ops = random_ops(&mut rng);
        let q = make();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_conservation(&q, &ops, strict);
        }));
        if let Err(e) = r {
            panic!("seed {seed:#x} case {case} ops {ops:?}: {e:?}");
        }
    }
}

#[test]
fn coarse_heap() {
    check(0xA11_0001, true, baselines::CoarseHeap::new);
}

#[test]
fn mound() {
    check(0xA11_0002, true, baselines::Mound::new);
}

#[test]
fn skiplist_strict() {
    check(0xA11_0003, true, baselines::StrictSkiplistPq::new);
}

#[test]
fn spraylist() {
    check(0xA11_0004, false, || baselines::SprayList::new(8));
}

#[test]
fn multiqueue() {
    check(0xA11_0005, false, || baselines::MultiQueue::new(4, 2));
}

#[test]
fn klsm_single_thread() {
    // Single-threaded, the k-LSM sees its own local + global: no
    // invisible elements, so conservation holds.
    check(0xA11_0006, false, || baselines::KLsm::new(16));
}

#[test]
fn zmsq_relaxed() {
    check(0xA11_0007, false, || {
        zmsq::Zmsq::<u64>::with_config(zmsq::ZmsqConfig::default().batch(4).target_len(6))
    });
}

#[test]
fn zmsq_strict() {
    check(0xA11_0008, true, || {
        zmsq::Zmsq::<u64>::with_config(zmsq::ZmsqConfig::strict())
    });
}
