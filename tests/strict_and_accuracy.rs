//! Strict-mode exactness and the relaxed-mode accuracy bound (§3.7).

use zmsq::{Zmsq, ZmsqConfig};

/// Strict mode (batch = 0) "behaves exactly like the mound, and is
/// guaranteed to return the largest element" — after concurrent inserts,
/// sequential extraction must be perfectly non-increasing and complete.
#[test]
fn strict_mode_total_order_after_concurrent_inserts() {
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::strict());
    const THREADS: u64 = 4;
    const PER: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            s.spawn(move || {
                let mut x = 0x1357_9BDF ^ (t << 32);
                for _ in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 1_000_000, x);
                }
            });
        }
    });
    let mut prev = u64::MAX;
    let mut n = 0;
    while let Some((k, _)) = q.extract_max() {
        assert!(
            k <= prev,
            "strict extraction out of order: {k} after {prev}"
        );
        prev = k;
        n += 1;
    }
    assert_eq!(n, THREADS * PER);
}

/// Strict mode under concurrent extraction: each extraction returns the
/// maximum *at its linearization*, so with only-extract threads the
/// sequence each thread sees must be locally non-increasing.
#[test]
fn strict_mode_concurrent_extracts_locally_monotone() {
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::strict());
    for i in 0..40_000u64 {
        q.insert(i, i);
    }
    std::thread::scope(|s| {
        for _ in 0..4 {
            let q = &q;
            s.spawn(move || {
                let mut prev = u64::MAX;
                while let Some((k, _)) = q.extract_max() {
                    assert!(
                        k <= prev,
                        "thread-local extraction order violated: {k} after {prev}"
                    );
                    prev = k;
                }
            });
        }
    });
    assert_eq!(q.extract_max(), None);
}

/// §3.7: "k × batch calls to extractMax() are guaranteed to return the
/// top k elements" (quiescent queue). Checked for several k and batch.
#[test]
fn k_batch_window_contains_top_k() {
    for batch in [1usize, 4, 8, 32] {
        for k in [1usize, 3, 10] {
            let q: Zmsq<u64> =
                Zmsq::with_config(ZmsqConfig::default().batch(batch).target_len(batch.max(16)));
            let n = 20_000u64;
            for i in 0..n {
                q.insert(i, i);
            }
            let window = k * batch.max(1) + k; // k*batch extractions, plus
                                               // k for the reserved-max slots
            let mut got: Vec<u64> = Vec::with_capacity(window);
            for _ in 0..window {
                got.push(q.extract_max().unwrap().0);
            }
            for top in 0..k as u64 {
                let expect = n - 1 - top;
                assert!(
                    got.contains(&expect),
                    "batch={batch} k={k}: top-{} element {expect} not in first {window} \
                     extractions: {got:?}",
                    top + 1
                );
            }
        }
    }
}

/// With batch <= targetLen and a quiescent prefilled queue, every element
/// served from one pool generation ranks above almost everything below
/// the root's set — pool quality sanity at scale.
#[test]
fn pool_elements_are_high_quality() {
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(48).target_len(72));
    let n = 200_000u64;
    for i in 0..n {
        q.insert(i, i);
    }
    // Take 1000 elements; their mean rank should sit deep in the top few
    // percent of the key space.
    let mut sum = 0u64;
    for _ in 0..1000 {
        sum += q.extract_max().unwrap().0;
    }
    let mean = sum / 1000;
    assert!(
        mean > n - n / 20,
        "mean extracted key {mean} should be within the top 5% of {n}"
    );
}

/// §3.7's thread-insensitivity claim in ranks rather than hit rate:
/// rank error is a property of the structure (batch, targetLen, mound
/// shape) alone, so sweeping extractor threads {2, 8} at a fixed batch
/// must not move the observed error. Measured with the shadow-multiset
/// [`workloads::oracle::RankOracle`] shared with the det suite.
/// Calibration on this workload (batch 16, targetLen 32, 20k prefill,
/// 1/2/4/8 threads): mean rank ~490 ± 2% and max rank ~5–6k at *every*
/// thread count — the margins below are generous multiples of that
/// noise, damped over several runs. (At this scale a non-max root-set
/// element's global rank is not O(batch) — the O(batch) guarantee is
/// the top-k window of `k_batch_window_contains_top_k` — so the
/// per-extraction statistic tested here is *thread-independence*, plus
/// an absolute mean-quality sanity cap.)
#[test]
fn rank_error_bound_does_not_grow_with_threads() {
    use std::sync::Arc;
    use workloads::oracle::RankOracle;

    const BATCH: usize = 16;
    const TARGET_LEN: usize = 32;
    const PREFILL: usize = 20_000;
    const RUNS: usize = 3;

    // Worst max-rank and worst mean-rank over RUNS repeats.
    let measure = |threads: usize| -> (usize, f64) {
        let mut max_rank = 0usize;
        let mut mean_rank = 0.0f64;
        for run in 0..RUNS {
            let q: Zmsq<u64> =
                Zmsq::with_config(ZmsqConfig::default().batch(BATCH).target_len(TARGET_LEN));
            let oracle = Arc::new(RankOracle::new());
            let mut x = 0xA5A5_0001u64 ^ ((run as u64) << 8);
            for _ in 0..PREFILL {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                oracle.note_insert(x);
                q.insert(x, x);
            }
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let q = &q;
                    let oracle = Arc::clone(&oracle);
                    s.spawn(move || {
                        while let Some((k, _)) = q.extract_max() {
                            oracle.note_extract(k);
                        }
                    });
                }
            });
            assert_eq!(oracle.remaining(), 0, "queue drained but shadow is not");
            let st = oracle.stats();
            max_rank = max_rank.max(st.max_rank);
            mean_rank = mean_rank.max(st.mean_rank);
        }
        (max_rank, mean_rank)
    };

    let (max2, mean2) = measure(2);
    let (max8, mean8) = measure(8);
    assert!(
        mean8 <= mean2 * 1.5 + BATCH as f64,
        "mean rank grew with threads: 2T={mean2:.1} 8T={mean8:.1}"
    );
    assert!(
        max8 <= max2 * 2 + 2 * TARGET_LEN,
        "max rank grew with threads: 2T={max2} 8T={max8}"
    );
    // Absolute quality floor: mean served rank stays in the top few
    // percent of the key space at either thread count.
    let cap = (PREFILL / 20) as f64;
    assert!(mean2 <= cap, "2-thread mean rank {mean2:.1} above {cap}");
    assert!(mean8 <= cap, "8-thread mean rank {mean8:.1} above {cap}");
}

/// Accuracy does not depend on *how many threads* extract — only on
/// batch (§3.7 / Table 1 claim). Same workload, 1 vs 4 extractor
/// threads, accuracy within noise.
#[test]
fn accuracy_insensitive_to_thread_count() {
    use workloads::accuracy::measure_accuracy;
    use workloads::keys::distinct_keys;

    let rate = |threads: usize| {
        let mut acc = 0.0;
        const RUNS: usize = 5;
        for run in 0..RUNS {
            let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(16).target_len(64));
            let keys = distinct_keys(8192, 77 + run as u64);
            acc += measure_accuracy(&q, &keys, 819, threads).hit_rate();
        }
        acc / RUNS as f64
    };
    let single = rate(1);
    let multi = rate(4);
    assert!(
        (single - multi).abs() < 0.15,
        "accuracy moved too much with threads: 1T={single:.3} 4T={multi:.3}"
    );
    assert!(single > 0.5, "baseline accuracy too low: {single:.3}");
}
