//! Memory-safety accounting across reclamation modes (§3.5).
//!
//! Rust rules out use-after-free at compile time for safe code, but the
//! queue is full of `unsafe` — these tests pin down the *leak* side of
//! the contract with drop-counting values, and exercise the hazard
//! domain under the exact access pattern the pool produces.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use zmsq::{Reclamation, Zmsq, ZmsqConfig};

struct Counted(Arc<AtomicI64>);
impl Counted {
    fn new(live: &Arc<AtomicI64>) -> Self {
        live.fetch_add(1, Ordering::SeqCst);
        Self(Arc::clone(live))
    }
}
impl Drop for Counted {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn churn(mode: Reclamation, live: &Arc<AtomicI64>) {
    let q: Zmsq<Counted> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(8)
            .target_len(12)
            .reclamation(mode),
    );
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let q = &q;
            s.spawn(move || {
                let mut x = t + 1;
                for i in 0..5_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 1000, Counted::new(live));
                    if i % 2 == 0 {
                        drop(q.extract_max());
                    }
                }
            });
        }
    });
    // Queue dropped here with remaining elements inside tree + pool.
}

#[test]
fn hazard_mode_drops_every_value() {
    let live = Arc::new(AtomicI64::new(0));
    churn(Reclamation::Hazard, &live);
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "hazard mode must eventually drop every element value"
    );
}

#[test]
fn consumer_wait_mode_drops_every_value() {
    let live = Arc::new(AtomicI64::new(0));
    churn(Reclamation::ConsumerWait, &live);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn leak_mode_leaks_only_buffers_not_values() {
    // Leak mode leaks pool *buffers*; element values still transfer to
    // consumers (or sit in leaked exhausted buffers, which hold no live
    // values because a buffer is only replaced once fully claimed).
    // Values still inside the tree and the *current* buffer are dropped
    // with the queue.
    let live = Arc::new(AtomicI64::new(0));
    churn(Reclamation::Leak, &live);
    assert_eq!(
        live.load(Ordering::SeqCst),
        0,
        "leaked buffers must not strand element values"
    );
}

#[test]
fn leak_counter_reports_buffers() {
    let q: Zmsq<u64> = Zmsq::with_config(
        ZmsqConfig::default()
            .batch(4)
            .target_len(8)
            .reclamation(Reclamation::Leak),
    );
    for i in 0..2_000u64 {
        q.insert(i, i);
    }
    while q.extract_max().is_some() {}
    assert!(
        q.leaked_buffers() > 10,
        "leak mode should have swapped many pools"
    );

    let q2: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(8));
    for i in 0..100u64 {
        q2.insert(i, i);
    }
    assert_eq!(q2.leaked_buffers(), 0, "hazard mode never leaks");
}

#[test]
fn smr_domain_reclaims_under_pool_like_pattern() {
    // Reproduce the pool's exact SMR shape directly against the domain:
    // a single publisher swaps buffers while readers protect-and-read.
    use smr::Domain;
    use std::sync::atomic::AtomicPtr;

    let domain = Domain::new();
    let live = Arc::new(AtomicI64::new(0));
    let slot: Arc<AtomicPtr<Counted>> =
        Arc::new(AtomicPtr::new(Box::into_raw(Box::new(Counted::new(&live)))));
    let stop = Arc::new(AtomicI64::new(0));

    std::thread::scope(|s| {
        for _ in 0..3 {
            let domain = domain.clone();
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut hp = domain.hazard();
                while stop.load(Ordering::Acquire) == 0 {
                    let p = hp.protect(&slot);
                    if !p.is_null() {
                        // SAFETY: protected by hp.
                        let _ = unsafe { &(*p).0 };
                    }
                    hp.clear();
                }
            });
        }
        for _ in 0..3_000 {
            let fresh = Box::into_raw(Box::new(Counted::new(&live)));
            let old = slot.swap(fresh, Ordering::AcqRel);
            // SAFETY: unlinked, single publisher.
            unsafe { domain.retire(old) };
        }
        stop.store(1, Ordering::Release);
    });

    let last = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
    unsafe { domain.retire(last) };
    while domain.try_reclaim() != 0 {}
    assert_eq!(live.load(Ordering::SeqCst), 0, "all generations reclaimed");
    assert_eq!(domain.retired_count(), 3_001);
    assert_eq!(domain.freed_count(), 3_001);
}
