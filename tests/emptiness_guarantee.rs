//! ZMSQ's headline guarantee: **extraction from a nonempty queue never
//! fails** (§1 feature (i), §3.7 "extractMax() never fails to return a
//! value when the queue is nonempty").
//!
//! Test shape: a fixed budget of extractions equal to the number of
//! inserted elements is claimed by consumer threads *after* the matching
//! insert completed, so at every claimed extraction the queue logically
//! holds at least one element — a single `None` is a violation. The
//! SprayList, by contrast, fails this readily (demonstrated as a
//! contrast test, tolerated there).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use baselines::SprayList;
use pq_traits::ConcurrentPriorityQueue;
use zmsq::{Reclamation, Zmsq, ZmsqConfig};

/// Producers bump a credit counter after each insert; consumers claim a
/// credit before extracting. A claimed credit proves the queue held an
/// element at claim time (inserts-so-far > extracts-started-so-far), so
/// ZMSQ must return `Some` on the very first call.
fn run_zmsq(cfg: ZmsqConfig) {
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 4;
    const TOTAL: i64 = 40_000;
    let q: Zmsq<u64> = Zmsq::with_config(cfg);
    let credits = AtomicI64::new(0);
    let produced = AtomicI64::new(0);
    let spurious = AtomicU64::new(0);

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let q = &q;
            let credits = &credits;
            let produced = &produced;
            s.spawn(move || {
                let share = TOTAL / PRODUCERS as i64;
                let mut x = 0xACE0 + p as u64;
                for _ in 0..share {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 65_536, x);
                    // Credit *after* the insert completes (element visible).
                    credits.fetch_add(1, Ordering::SeqCst);
                    produced.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let q = &q;
            let credits = &credits;
            let produced = &produced;
            let spurious = &spurious;
            s.spawn(move || loop {
                // Claim a credit: queue length >= 1 is now guaranteed
                // until we take our element.
                if credits
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                        (c > 0).then_some(c - 1)
                    })
                    .is_ok()
                {
                    if q.extract_max().is_none() {
                        spurious.fetch_add(1, Ordering::Relaxed);
                        // Re-deposit so the run still drains fully.
                        credits.fetch_add(1, Ordering::SeqCst);
                    }
                } else if produced.load(Ordering::Relaxed) >= TOTAL
                    && credits.load(Ordering::SeqCst) <= 0
                {
                    return;
                } else {
                    std::hint::spin_loop();
                }
            });
        }
    });

    assert_eq!(
        spurious.into_inner(),
        0,
        "ZMSQ returned None while provably nonempty"
    );
    assert_eq!(q.extract_max(), None, "everything claimed");
}

#[test]
fn zmsq_never_fails_nonempty_hazard() {
    run_zmsq(ZmsqConfig::default().batch(16).target_len(24));
}

#[test]
fn zmsq_never_fails_nonempty_consumer_wait() {
    run_zmsq(
        ZmsqConfig::default()
            .batch(16)
            .target_len(24)
            .reclamation(Reclamation::ConsumerWait),
    );
}

#[test]
fn zmsq_never_fails_nonempty_strict() {
    run_zmsq(ZmsqConfig::strict());
}

#[test]
fn zmsq_never_fails_nonempty_tiny_batch() {
    // batch=1 maximizes pool-exhaustion churn — the hardest case for the
    // "pool empty + root empty => queue empty" reasoning.
    run_zmsq(ZmsqConfig::default().batch(1).target_len(4));
}

/// Contrast: the SprayList *does* spuriously fail (§3.7, §4.5.2) — this
/// documents the deficiency ZMSQ fixes. We don't assert it must happen
/// (it's probabilistic), only that the queue is allowed to and that
/// retrying recovers every element.
#[test]
fn spraylist_spurious_failures_recoverable() {
    let q: SprayList<u64> = SprayList::new(32);
    for i in 0..5_000u64 {
        q.insert(i, i);
    }
    let mut got = 0u64;
    let mut nones = 0u64;
    while got < 5_000 {
        match q.extract_max() {
            Some(_) => got += 1,
            None => {
                nones += 1;
                assert!(nones < 10_000_000, "spraylist lost elements outright");
            }
        }
    }
    assert_eq!(q.extract_max(), None);
}
