//! End-to-end SSSP correctness: every queue (strict or relaxed) must
//! drive the parallel driver to exactly the sequential distances, on
//! every generator family. This is the §4.6 workload as a correctness
//! gate rather than a benchmark.

use baselines::{CoarseHeap, Mound, MultiQueue, SprayList, StrictSkiplistPq};
use zmsq::{Zmsq, ZmsqConfig};
use zmsq_graph::{gen, parallel_sssp, sequential_sssp, CsrGraph};

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("erdos-renyi", gen::erdos_renyi(2_000, 16_000, 50, 1)),
        ("barabasi-albert", gen::barabasi_albert(2_000, 6, 50, 2)),
        ("rmat", gen::rmat(11, 16_000, (0.57, 0.19, 0.19), 50, 3)),
    ]
}

fn check<Q: pq_traits::ConcurrentPriorityQueue<u32> + Sync>(
    q: &Q,
    name: &str,
    graph: &CsrGraph,
    reference: &[u64],
    threads: usize,
) {
    let source = graph.max_degree_node();
    let r = parallel_sssp(graph, source, q, threads);
    assert_eq!(r.dist, reference, "{name}: wrong distances");
    assert!(r.processed > 0);
}

#[test]
fn zmsq_sssp_exact() {
    for (gname, g) in graphs() {
        let reference = sequential_sssp(&g, g.max_degree_node());
        for threads in [1, 4] {
            let q: Zmsq<u32> = Zmsq::with_config(ZmsqConfig::sssp_tuned());
            check(&q, &format!("zmsq/{gname}"), &g, &reference, threads);
            let q: Zmsq<u32> = Zmsq::with_config(ZmsqConfig::strict());
            check(&q, &format!("zmsq-strict/{gname}"), &g, &reference, threads);
        }
    }
}

#[test]
fn baselines_sssp_exact() {
    for (gname, g) in graphs() {
        let reference = sequential_sssp(&g, g.max_degree_node());
        let threads = 3;
        check(
            &Mound::new(),
            &format!("mound/{gname}"),
            &g,
            &reference,
            threads,
        );
        check(
            &SprayList::new(threads),
            &format!("spraylist/{gname}"),
            &g,
            &reference,
            threads,
        );
        check(
            &MultiQueue::new(threads, 2),
            &format!("multiqueue/{gname}"),
            &g,
            &reference,
            threads,
        );
        check(
            &CoarseHeap::new(),
            &format!("coarse-heap/{gname}"),
            &g,
            &reference,
            threads,
        );
        check(
            &StrictSkiplistPq::new(),
            &format!("skiplist/{gname}"),
            &g,
            &reference,
            threads,
        );
    }
}

#[test]
fn relaxation_increases_waste_but_not_wrongness() {
    // A strict queue's waste is only duplicate heap entries; a heavily
    // relaxed queue re-expands more. Both stay exact.
    let g = gen::barabasi_albert(5_000, 8, 100, 9);
    let source = g.max_degree_node();
    let reference = sequential_sssp(&g, source);

    let strict: Zmsq<u32> = Zmsq::with_config(ZmsqConfig::strict());
    let rs = parallel_sssp(&g, source, &strict, 1);
    assert_eq!(rs.dist, reference);

    let relaxed: Zmsq<u32> = Zmsq::with_config(ZmsqConfig::default().batch(96).target_len(96));
    let rr = parallel_sssp(&g, source, &relaxed, 1);
    assert_eq!(rr.dist, reference);

    assert!(
        rr.processed + rr.wasted >= rs.processed + rs.wasted,
        "relaxed should not do fewer pops than strict ({} vs {})",
        rr.processed + rr.wasted,
        rs.processed + rs.wasted
    );
}
