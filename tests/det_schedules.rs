//! Deterministic schedule exploration of the real queue (`--features
//! det-sched`): ports of the core stress-matrix and blocking-liveness
//! interleavings under the `det` scheduler, with the relaxation-quality
//! oracles from `workloads::oracle`.
//!
//! Fast mode: every non-ignored test runs a fixed seed and a small
//! schedule budget so the whole file stays well under 30 s. Override
//! with `DET_SEED` / `DET_SCHEDULES`; replay one failing schedule with
//! `DET_SCHEDULE=<k>` (the failure report prints the exact recipe).

#![cfg(feature = "det-sched")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use det::Config;
use workloads::oracle::{QcChecker, RankOracle};
use zmsq::{
    ArraySet, InsertError, ListSet, NodeSet, ShardedConfig, ShardedZmsq, ShedPolicy, TatasLock,
    Zmsq, ZmsqConfig,
};

/// Unique element token: producer id in the high bits, sequence in the low.
fn token(producer: u64, i: u64) -> u64 {
    (producer << 32) | i
}

/// Producers and consumers over a relaxed queue; every element must be
/// extracted exactly once with its key intact (quiescent consistency),
/// across every explored interleaving. Port of the stress-matrix
/// conservation check.
#[test]
fn det_conservation_under_interleaving() {
    for batch in [1usize, 8] {
        let cfg = Config::from_env(0xC07E5D + batch as u64).schedules(16);
        det::explore(&cfg, move || {
            const PRODUCERS: u64 = 2;
            const CONSUMERS: u64 = 2;
            const PER: u64 = 5;
            let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
                ZmsqConfig::default().batch(batch).target_len(8),
            ));
            let qc = Arc::new(QcChecker::new());
            let taken = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for p in 0..PRODUCERS {
                let (q, qc) = (Arc::clone(&q), Arc::clone(&qc));
                handles.push(det::spawn(move || {
                    let mut log = qc.handle();
                    for i in 0..PER {
                        // Duplicate keys across producers on purpose.
                        // Pre-op insert records, post-op extract records
                        // (see ThreadLog docs for why).
                        let t = token(p, i);
                        log.on_insert(i % 3, t);
                        q.insert(i % 3, t);
                    }
                    qc.absorb(log);
                }));
            }
            for _ in 0..CONSUMERS {
                let (q, qc, taken) = (Arc::clone(&q), Arc::clone(&qc), Arc::clone(&taken));
                handles.push(det::spawn(move || {
                    let mut log = qc.handle();
                    while taken.load(Ordering::SeqCst) < PRODUCERS * PER {
                        if let Some((k, t)) = q.extract_max() {
                            log.on_extract(k, t);
                            taken.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    qc.absorb(log);
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(q.extract_max(), None, "drained");
            if let Err(e) = qc.check(true) {
                panic!("quiescent-consistency violation (batch {batch}): {e}");
            }
        });
    }
}

/// Rank-error oracle under det: with a prefilled queue and an
/// extraction-only phase, each `extract_max` may skip at most O(batch)
/// strictly greater keys. Under the serialized scheduler the oracle's
/// shadow update is the linearization point, so the bound is tight up to
/// the claim-window overlap between the two consumers.
#[test]
fn det_rank_error_is_bounded_by_batch() {
    for batch in [1usize, 8, 64] {
        let cfg = Config::from_env(0x4A9C + batch as u64).schedules(8);
        det::explore(&cfg, move || {
            const KEYS: u64 = 96;
            let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
                ZmsqConfig::default().batch(batch).target_len(batch.max(4)),
            ));
            let oracle = Arc::new(RankOracle::new());
            for k in 0..KEYS {
                q.insert(k, k);
                oracle.note_insert(k);
            }
            let taken = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let (q, oracle, taken) = (Arc::clone(&q), Arc::clone(&oracle), Arc::clone(&taken));
                handles.push(det::spawn(move || {
                    let mut worst = 0usize;
                    while taken.load(Ordering::SeqCst) < KEYS {
                        if let Some((k, _)) = q.extract_max() {
                            worst = worst.max(oracle.note_extract(k));
                            taken.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    worst
                }));
            }
            for h in handles {
                h.join();
            }
            let stats = oracle.stats();
            assert_eq!(stats.extracts, KEYS);
            // O(batch) structural bound. Refills draw the root set's top
            // `batch`, and the root set's non-max elements are ordered
            // only against their own subtrees — so the constant carries
            // the root-set capacity (2 * target_len, which this test
            // scales with batch) on top of the batch itself; +4 covers
            // the two consumers' claim-window overlap. The bound must
            // NOT scale with thread count
            // (tests/strict_and_accuracy.rs sweeps that axis).
            let bound = batch + 2 * batch.max(4) + 4;
            assert!(
                stats.max_rank <= bound,
                "batch {batch}: max rank error {} exceeds O(batch) bound {bound}",
                stats.max_rank
            );
        });
    }
}

/// Strict mode (batch = 0) has rank error exactly zero on every schedule.
#[test]
fn det_strict_mode_rank_error_is_zero() {
    let cfg = Config::from_env(0x57A1C7).schedules(8);
    det::explore(&cfg, || {
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(ZmsqConfig::strict()));
        let oracle = Arc::new(RankOracle::new());
        for k in 0..24u64 {
            q.insert(k, k);
            oracle.note_insert(k);
        }
        let taken = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (q, oracle, taken) = (Arc::clone(&q), Arc::clone(&oracle), Arc::clone(&taken));
                det::spawn(move || {
                    while taken.load(Ordering::SeqCst) < 24 {
                        if let Some((k, _)) = q.extract_max() {
                            assert_eq!(oracle.note_extract(k), 0, "strict mode");
                            taken.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
    });
}

/// The queue's built-in `obs::RankEstimator` at shift 0 (sample every
/// key) against the exact [`RankOracle`], across every explored
/// schedule and the same batch sweep as the rank-bound test.
///
/// With 96 distinct keys the 512-slot reservoir never overflows, so
/// the conservation counters are exact. The rank comparison rides on a
/// monotonicity argument: in an extraction-only phase the live
/// population only shrinks, the estimator's count is taken *inside*
/// `extract_max` and the oracle's just after it returns, so per
/// extraction the estimate dominates the oracle's exact rank — and
/// both obey the structural O(batch) bound.
#[test]
fn det_estimator_tracks_rank_oracle() {
    for batch in [1usize, 8, 64] {
        let cfg = Config::from_env(0xE57A + batch as u64).schedules(8);
        det::explore(&cfg, move || {
            const KEYS: u64 = 96;
            let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
                ZmsqConfig::default()
                    .batch(batch)
                    .target_len(batch.max(4))
                    .rank_estimator(0),
            ));
            let oracle = Arc::new(RankOracle::new());
            for k in 0..KEYS {
                q.insert(k, k);
                oracle.note_insert(k);
            }
            let taken = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (q, oracle, taken) =
                        (Arc::clone(&q), Arc::clone(&oracle), Arc::clone(&taken));
                    det::spawn(move || {
                        while taken.load(Ordering::SeqCst) < KEYS {
                            if let Some((k, _)) = q.extract_max() {
                                oracle.note_extract(k);
                                taken.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            let est = q.rank_estimator().expect("estimator configured on");
            let (si, st, dr, se, ma, mi, ..) = est.counters();
            assert_eq!((si, st, dr), (KEYS, KEYS, 0), "96 keys fit the reservoir");
            assert_eq!(se, KEYS, "shift 0 samples every extraction");
            assert_eq!(ma + mi, se, "every sampled extract matched or missed");
            assert_eq!(mi, 0, "distinct keys always find their slot");
            assert_eq!(est.live(), 0, "drained run leaves no live samples");
            // p99 comparison. The estimator quantizes through its
            // log-linear histogram, so push the oracle's exact value
            // through the same bucketing (quantiles commute with the
            // monotone bucket-floor mapping) for the lower bound; the
            // upper bound is the rank-bound test's structural ceiling.
            let oracle_p99 = oracle.rank_quantile(0.99).unwrap() as u64;
            let est_p99 = est.rank_quantile(0.99);
            let quantized = obs::Histogram::new();
            quantized.record(oracle_p99);
            assert!(
                est_p99 >= quantized.quantile(1.0),
                "batch {batch}: estimator p99 {est_p99} undercounts oracle p99 {oracle_p99}"
            );
            let bound = (batch + 2 * batch.max(4) + 8) as u64;
            assert!(
                est_p99 <= bound,
                "batch {batch}: estimator p99 {est_p99} exceeds structural bound {bound}"
            );
        });
    }
}

/// Sharded conservation: producers scatter through `insert_batch`,
/// consumers mix `extract_max` and `extract_batch`, across every
/// explored interleaving of the per-shard pool windows. Exercises the
/// two-choice winner/loser steal and the full sweep under preemption.
#[test]
fn det_sharded_conservation_under_interleaving() {
    let cfg = Config::from_env(0x5A4DED).schedules(12);
    det::explore(&cfg, || {
        const PRODUCERS: u64 = 2;
        const CONSUMERS: u64 = 2;
        const PER: u64 = 6;
        let q: Arc<ShardedZmsq<u64>> = Arc::new(ShardedZmsq::new(
            2,
            ZmsqConfig::default().batch(2).target_len(6),
        ));
        let qc = Arc::new(QcChecker::new());
        let taken = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let (q, qc) = (Arc::clone(&q), Arc::clone(&qc));
            handles.push(det::spawn(move || {
                let mut log = qc.handle();
                let mut batch = Vec::new();
                for i in 0..PER {
                    let t = token(p, i);
                    log.on_insert(i % 3, t);
                    batch.push((i % 3, t));
                }
                // Scatter path: round-robin from this vthread's home shard.
                q.insert_batch(&mut batch);
                qc.absorb(log);
            }));
        }
        for c in 0..CONSUMERS {
            let (q, qc, taken) = (Arc::clone(&q), Arc::clone(&qc), Arc::clone(&taken));
            handles.push(det::spawn(move || {
                let mut log = qc.handle();
                let mut out = Vec::new();
                while taken.load(Ordering::SeqCst) < PRODUCERS * PER {
                    if c == 0 {
                        // Gather path: cross-shard batched extraction.
                        out.clear();
                        q.extract_batch(&mut out, 3);
                        for &(k, t) in &out {
                            log.on_extract(k, t);
                            taken.fetch_add(1, Ordering::SeqCst);
                        }
                    } else if let Some((k, t)) = q.extract_max() {
                        log.on_extract(k, t);
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                }
                qc.absorb(log);
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(q.extract_max(), None, "drained");
        if let Err(e) = qc.check(true) {
            panic!("sharded quiescent-consistency violation: {e}");
        }
    });
}

/// The sharded emptiness guarantee under det: one element lands in one
/// of four shards; no matter which shards two-choice sampling picks, the
/// sweep must find it on every schedule — for both the scalar and the
/// batched extraction paths.
#[test]
fn det_sharded_sweep_finds_lone_element() {
    let cfg = Config::from_env(0x10E1E7).schedules(24);
    det::explore(&cfg, || {
        let q: Arc<ShardedZmsq<u64>> = Arc::new(ShardedZmsq::new(
            4,
            ZmsqConfig::default().batch(2).target_len(4),
        ));
        let q2 = Arc::clone(&q);
        det::spawn(move || q2.insert(7, 77)).join();
        // The insert has completed: stale hints may point anywhere, but
        // extraction must not report empty.
        assert_eq!(q.extract_max(), Some((7, 77)), "sweep missed the element");

        let q3 = Arc::clone(&q);
        det::spawn(move || q3.insert(9, 99)).join();
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 4), 1, "batched sweep missed");
        assert_eq!(out, vec![(9, 99)]);
    });
}

/// Port of `blocking_liveness::single_item_handoffs_wake_parked_consumer`:
/// tight one-element handoffs with the consumer parked in between. A lost
/// wakeup surfaces as a deterministic deadlock report, not a hung test.
/// Spurious wakeups are enabled to exercise the re-check loops.
#[test]
fn det_blocking_handoff_never_loses_wakeups() {
    let cfg = Config::from_env(0xB10C).schedules(24).spurious_wakes(true);
    det::explore(&cfg, || {
        const ITEMS: u64 = 4;
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default().batch(2).target_len(4).blocking(true),
        ));
        let got = Arc::new(AtomicU64::new(0));
        let (q2, got2) = (Arc::clone(&q), Arc::clone(&got));
        let consumer = det::spawn(move || {
            let mut n = 0u64;
            while q2.extract_max_blocking().is_some() {
                n += 1;
                got2.fetch_add(1, Ordering::SeqCst);
            }
            n
        });
        for i in 0..ITEMS {
            q.insert(i, i);
        }
        while got.load(Ordering::SeqCst) < ITEMS {
            det::yield_point("test.wait-drain");
        }
        q.close();
        assert_eq!(consumer.join(), ITEMS);
    });
}

/// Port of `blocking_liveness::close_releases_parked_consumers`: close on
/// an empty queue must release every parked consumer on every schedule.
#[test]
fn det_close_releases_parked_consumers() {
    let cfg = Config::from_env(0xC105E).schedules(24).spurious_wakes(true);
    det::explore(&cfg, || {
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default().batch(4).target_len(8).blocking(true),
        ));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                det::spawn(move || q.extract_max_blocking())
            })
            .collect();
        // No coordination on purpose: close races registration, spinning
        // and parked states — all must terminate with None.
        q.close();
        for h in handles {
            assert_eq!(h.join(), None, "woken by close with empty queue");
        }
    });
}

/// Timed extraction on an empty queue expires in *virtual* time: one
/// virtual hour per schedule, trivial real time for the whole batch.
#[test]
fn det_timed_extraction_uses_virtual_time() {
    let t0 = Instant::now();
    let cfg = Config::from_env(0x71ED).schedules(8);
    det::explore(&cfg, || {
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default().batch(2).target_len(4).blocking(true),
        ));
        assert_eq!(q.extract_max_timeout(Duration::from_secs(3600)), None);
        // Delivered when an element exists: no park, no clock advance.
        q.insert(9, 9);
        assert_eq!(
            q.extract_max_timeout(Duration::from_secs(3600)),
            Some((9, 9))
        );
    });
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "8 virtual hours took {:?} real",
        t0.elapsed()
    );
}

/// Mini port of the stress matrix: set representation x batch, with
/// invariant validation after every schedule.
#[test]
fn det_mini_stress_matrix() {
    fn run<S: NodeSet<u64> + 'static>(batch: usize, seed: u64) {
        let cfg = Config::from_env(seed).schedules(12);
        det::explore(&cfg, move || {
            let q: Arc<Zmsq<u64, S, TatasLock>> = Arc::new(Zmsq::with_config(
                ZmsqConfig::default().batch(batch).target_len(6),
            ));
            let sum_in = Arc::new(AtomicU64::new(0));
            let sum_out = Arc::new(AtomicU64::new(0));
            let extracted = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2u64)
                .map(|t| {
                    let (q, sum_in, sum_out, extracted) = (
                        Arc::clone(&q),
                        Arc::clone(&sum_in),
                        Arc::clone(&sum_out),
                        Arc::clone(&extracted),
                    );
                    det::spawn(move || {
                        for i in 0..4u64 {
                            let v = token(t, i) | 1;
                            q.insert((t * 31 + i * 7) % 16, v);
                            sum_in.fetch_add(v, Ordering::Relaxed);
                            if i % 2 == 1 {
                                if let Some((_, v)) = q.extract_max() {
                                    extracted.fetch_add(1, Ordering::Relaxed);
                                    sum_out.fetch_add(v, Ordering::Relaxed);
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            while let Some((_, v)) = q.extract_max() {
                extracted.fetch_add(1, Ordering::Relaxed);
                sum_out.fetch_add(v, Ordering::Relaxed);
            }
            assert_eq!(extracted.load(Ordering::Relaxed), 8, "element count");
            assert_eq!(
                sum_in.load(Ordering::Relaxed),
                sum_out.load(Ordering::Relaxed),
                "checksum"
            );
            let mut q =
                Arc::try_unwrap(q).unwrap_or_else(|_| panic!("all vthreads joined; sole owner"));
            q.validate_invariants().unwrap();
        });
    }
    run::<ListSet<u64>>(0, 0x11571);
    run::<ListSet<u64>>(8, 0x11572);
    run::<ArraySet<u64>>(0, 0xA5571);
    run::<ArraySet<u64>>(8, 0xA5572);
}

/// The acceptance property on a real-queue body: a failing schedule
/// replays byte-identically from its printed seed. The body plants a
/// classic lost update whose race window is opened by the queue's own
/// yield points (no synthetic `yield_point` between load and store).
#[test]
fn det_zmsq_failure_replays_byte_identically() {
    fn racy_body() {
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default().batch(2).target_len(4),
        ));
        let c = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2u64)
            .map(|t| {
                let (q, c) = (Arc::clone(&q), Arc::clone(&c));
                det::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    // The insert's internal decision points are the only
                    // preemption window for the read-modify-write race.
                    q.insert(t, t);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update through queue ops");
    }
    let cfg = Config::new(0x2E91A).schedules(64).shrink_budget(16);
    let a = det::explore_result(&cfg, racy_body).unwrap_err();
    let b = det::explore_result(&cfg, racy_body).unwrap_err();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.trace, b.trace);
    assert_eq!(
        format!("{a}"),
        format!("{b}"),
        "byte-identical failure report"
    );
    // The DET_SCHEDULE replay workflow: just that schedule, same trace.
    let replay = cfg.clone().only(a.schedule).shrink_budget(0);
    let r = det::explore_result(&replay, racy_body).unwrap_err();
    assert_eq!(r.trace, a.trace);
}

/// Producer liveness under backpressure: producers blocked on a full
/// `ShedPolicy::Block` queue must make progress on every explored
/// schedule (including spurious wakes) once a consumer drains — a lost
/// producer wakeup surfaces as a deterministic deadlock report, not a
/// hung test. Conservation and the occupancy invariant close the loop.
#[test]
fn det_bounded_block_producers_never_deadlock() {
    let cfg = Config::from_env(0xB0DED).schedules(16).spurious_wakes(true);
    det::explore(&cfg, || {
        const PRODUCERS: u64 = 2;
        const PER: u64 = 4;
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default()
                .batch(2)
                .target_len(4)
                .capacity(2)
                .shed_policy(ShedPolicy::Block),
        ));
        let sum_in = Arc::new(AtomicU64::new(0));
        let sum_out = Arc::new(AtomicU64::new(0));
        let taken = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let (q, sum_in) = (Arc::clone(&q), Arc::clone(&sum_in));
            handles.push(det::spawn(move || {
                for i in 0..PER {
                    let t = token(p, i);
                    // Infallible insert: parks whenever the 2-slot
                    // capacity is exhausted.
                    q.insert(i % 3, t);
                    sum_in.fetch_add(t, Ordering::SeqCst);
                }
            }));
        }
        {
            let (q, sum_out, taken) = (Arc::clone(&q), Arc::clone(&sum_out), Arc::clone(&taken));
            handles.push(det::spawn(move || {
                while taken.load(Ordering::SeqCst) < PRODUCERS * PER {
                    if let Some((_, t)) = q.extract_max() {
                        sum_out.fetch_add(t, Ordering::SeqCst);
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(q.extract_max(), None, "drained");
        assert_eq!(q.occupancy(), 0, "occupancy must return to zero");
        assert_eq!(
            sum_in.load(Ordering::SeqCst),
            sum_out.load(Ordering::SeqCst),
            "conservation under backpressure"
        );
    });
}

/// Close racing blocked producers: on every schedule, `close()` must
/// release producers parked on a full Block-policy queue. The infallible
/// `insert` force-admits rather than dropping (it has no error channel),
/// so every element is still present after the close; fallible inserts
/// observe `InsertError::Closed` from then on.
#[test]
fn det_close_force_admits_blocked_producers() {
    let cfg = Config::from_env(0xC10B0).schedules(24).spurious_wakes(true);
    det::explore(&cfg, || {
        const PRODUCERS: u64 = 2;
        const PER: u64 = 2;
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default()
                .batch(2)
                .target_len(4)
                .capacity(1)
                .shed_policy(ShedPolicy::Block),
        ));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                det::spawn(move || {
                    for i in 0..PER {
                        q.insert(i, token(p, i));
                    }
                })
            })
            .collect();
        // No coordination on purpose: close races registration, spinning
        // and parked producers — all must terminate.
        q.close();
        for h in handles {
            h.join();
        }
        assert!(
            matches!(q.try_insert(9, 9), Err(InsertError::Closed(9))),
            "fallible insert after close"
        );
        let mut drained = 0u64;
        while q.extract_max().is_some() {
            drained += 1;
        }
        assert_eq!(
            drained,
            PRODUCERS * PER,
            "infallible inserts must never drop elements across close"
        );
    });
}

/// `insert_timeout` on a full Block-policy queue expires in *virtual*
/// time, and admits without parking once room exists.
#[test]
fn det_insert_timeout_uses_virtual_time() {
    let t0 = Instant::now();
    let cfg = Config::from_env(0x71EDB).schedules(8);
    det::explore(&cfg, || {
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default()
                .batch(2)
                .target_len(4)
                .capacity(1)
                .shed_policy(ShedPolicy::Block),
        ));
        q.insert(1, 1);
        match q.insert_timeout(2, 2, Duration::from_secs(3600)) {
            Err(InsertError::Timeout(v)) => assert_eq!(v, 2, "element handed back"),
            other => panic!("expected Timeout on a full queue, got {other:?}"),
        }
        // Room appears: admitted immediately, no park, no clock advance.
        assert_eq!(q.extract_max(), Some((1, 1)));
        assert!(q.insert_timeout(3, 3, Duration::from_secs(3600)).is_ok());
    });
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "8 virtual hours took {:?} real",
        t0.elapsed()
    );
}

/// A two-shard tuned queue for the buffered-window det tests: small
/// pool windows so shard preemption points are dense, with the
/// stickiness / buffer depths chosen per test to isolate one flush
/// trigger.
fn tuned_det_q(stickiness: usize, insert_buffer: usize, delete_buffer: usize) -> ShardedZmsq<u64> {
    ShardedZmsq::with_tuning(
        2,
        ZmsqConfig::default().batch(2).target_len(6),
        ShardedConfig::new()
            .stickiness(stickiness)
            .insert_buffer(insert_buffer)
            .delete_buffer(delete_buffer),
    )
}

/// Buffered producers and consumers over a tuned queue; every element
/// must be extracted exactly once with its key intact, across every
/// explored interleaving. `PER` is odd on purpose: each producer exits
/// with an element still staged in its insert buffer, so conservation
/// additionally proves the consumers' flush-before-report reclaims
/// foreign buffers (and consumers' prefetched-but-unserved deletions
/// are likewise reclaimed via `unprefetch`).
fn run_det_buffered_conservation(q: Arc<ShardedZmsq<u64>>) {
    const PRODUCERS: u64 = 2;
    const CONSUMERS: u64 = 2;
    const PER: u64 = 5;
    let qc = Arc::new(QcChecker::new());
    let taken = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let (q, qc) = (Arc::clone(&q), Arc::clone(&qc));
        handles.push(det::spawn(move || {
            let mut log = qc.handle();
            for i in 0..PER {
                let t = token(p, i);
                log.on_insert(i % 3, t);
                q.insert(i % 3, t);
            }
            qc.absorb(log);
        }));
    }
    for _ in 0..CONSUMERS {
        let (q, qc, taken) = (Arc::clone(&q), Arc::clone(&qc), Arc::clone(&taken));
        handles.push(det::spawn(move || {
            let mut log = qc.handle();
            while taken.load(Ordering::SeqCst) < PRODUCERS * PER {
                if let Some((k, t)) = q.extract_max() {
                    log.on_extract(k, t);
                    taken.fetch_add(1, Ordering::SeqCst);
                }
            }
            qc.absorb(log);
        }));
    }
    for h in handles {
        h.join();
    }
    assert_eq!(q.extract_max(), None, "drained");
    assert_eq!(q.len_hint(), 0, "no element left staged or prefetched");
    if let Err(e) = qc.check(true) {
        panic!("buffered quiescent-consistency violation: {e}");
    }
}

/// Flush-on-overflow window: stickiness off and insert buffer depth 2,
/// so the *only* in-run publish trigger is the buffer reaching its
/// depth. Conservation across every explored interleaving of the
/// overflow flush with concurrent extraction.
#[test]
fn det_buffered_flush_on_overflow_conserves() {
    let cfg = Config::from_env(0xB0FF10).schedules(16);
    det::explore(&cfg, || {
        run_det_buffered_conservation(Arc::new(tuned_det_q(0, 2, 2)));
    });
}

/// Flush-on-resample window: stickiness 2 with an insert buffer deeper
/// than any producer's whole run, so the *only* in-run publish trigger
/// is the sticky run expiring (re-sample flushes the buffer before the
/// target shard moves).
#[test]
fn det_buffered_flush_on_resample_conserves() {
    let cfg = Config::from_env(0xF1054).schedules(16);
    det::explore(&cfg, || {
        run_det_buffered_conservation(Arc::new(tuned_det_q(2, 8, 1)));
    });
}

/// Flush-on-close window: producers stage everything (stickiness off,
/// buffer deeper than the run — no overflow, no resample), so `close()`
/// is the only publish trigger. Its contract: staged inserts reach the
/// shards *before* the shards close, observable as per-shard occupancy
/// and as a complete drain.
#[test]
fn det_close_flush_publishes_buffers() {
    let cfg = Config::from_env(0xC7055).schedules(16);
    det::explore(&cfg, || {
        const PRODUCERS: u64 = 2;
        const PER: u64 = 4;
        let q = Arc::new(tuned_det_q(0, 16, 1));
        let qc = Arc::new(QcChecker::new());
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let (q, qc) = (Arc::clone(&q), Arc::clone(&qc));
                det::spawn(move || {
                    let mut log = qc.handle();
                    for i in 0..PER {
                        let t = token(p, i);
                        log.on_insert(i % 3, t);
                        q.insert(i % 3, t);
                    }
                    qc.absorb(log);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        q.close();
        // The close-flush published every staged insert into the shards
        // themselves (not merely somewhere reachable): a blocking drain
        // loop woken by close must see them without further flushes.
        let in_shards: usize = (0..2).map(|i| q.shard(i).len_hint()).sum();
        assert_eq!(
            in_shards,
            (PRODUCERS * PER) as usize,
            "close() stranded staged inserts in thread-local buffers"
        );
        let mut log = qc.handle();
        while let Some((k, t)) = q.extract_max() {
            log.on_extract(k, t);
        }
        qc.absorb(log);
        if let Err(e) = qc.check(true) {
            panic!("close-flush quiescent-consistency violation: {e}");
        }
    });
}

/// Mutation check: with the close-flush deleted (the
/// `shard.skip-close-flush` failpoint armed `Always`), the close-window
/// det test's occupancy assertion must fail — staged inserts stay
/// stranded in thread-local buffers on every schedule, deterministically.
/// `#[ignore]` by default — CI runs it explicitly (`--ignored`) with
/// `--features "det-sched fault-inject"`.
#[cfg(feature = "fault-inject")]
#[test]
#[ignore = "mutation check; run explicitly in CI with --ignored"]
fn det_mutation_skipped_close_flush_is_caught() {
    let _x = fault::exclusive();
    fault::reset();
    fault::configure(
        "shard.skip-close-flush",
        fault::Policy::new(fault::Trigger::Always),
    );
    let cfg = Config::from_env(0xBADC705).schedules(16);
    let result = det::explore_result(&cfg, || {
        const PRODUCERS: u64 = 2;
        const PER: u64 = 4;
        let q = Arc::new(tuned_det_q(0, 16, 1));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                det::spawn(move || {
                    for i in 0..PER {
                        q.insert(i % 3, token(p, i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        q.close();
        let in_shards: usize = (0..2).map(|i| q.shard(i).len_hint()).sum();
        assert_eq!(
            in_shards,
            (PRODUCERS * PER) as usize,
            "close() stranded staged inserts in thread-local buffers"
        );
    });
    fault::reset();
    let failure = result
        .expect_err("deleting the close-flush must strand every staged insert, deterministically");
    eprintln!("mutation caught:\n{failure}");
}

/// Mutation check: with the pool's lagging-consumer wait compiled out
/// (the `pool.skip-consumer-wait` failpoint armed `Always`), the det
/// harness must catch the reintroduced overwrite race within a bounded
/// number of schedules. `#[ignore]` by default — CI runs it explicitly
/// (`--ignored`) with `--features "det-sched fault-inject"`.
#[cfg(feature = "fault-inject")]
#[test]
#[ignore = "mutation check; run explicitly in CI with --ignored"]
fn det_mutation_skipped_consumer_wait_is_caught() {
    let _x = fault::exclusive();
    fault::reset();
    fault::configure(
        "pool.skip-consumer-wait",
        fault::Policy::new(fault::Trigger::Always),
    );
    let cfg = Config::from_env(0x5EEDBAD).schedules(10_000);
    let result = det::explore_result(&cfg, || {
        const ITEMS: u64 = 6;
        let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
            ZmsqConfig::default()
                .batch(2)
                .target_len(4)
                .reclamation(zmsq::Reclamation::ConsumerWait),
        ));
        let qc = Arc::new(QcChecker::new());
        let taken = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        {
            let (q, qc) = (Arc::clone(&q), Arc::clone(&qc));
            handles.push(det::spawn(move || {
                let mut log = qc.handle();
                for i in 0..ITEMS {
                    log.on_insert(i, i);
                    q.insert(i, i);
                }
                qc.absorb(log);
            }));
        }
        for _ in 0..2 {
            let (q, qc, taken) = (Arc::clone(&q), Arc::clone(&qc), Arc::clone(&taken));
            handles.push(det::spawn(move || {
                let mut log = qc.handle();
                while taken.load(Ordering::SeqCst) < ITEMS {
                    if let Some((k, t)) = q.extract_max() {
                        log.on_extract(k, t);
                        taken.fetch_add(1, Ordering::SeqCst);
                    }
                }
                qc.absorb(log);
            }));
        }
        for h in handles {
            h.join();
        }
        if let Err(e) = qc.check(true) {
            panic!("mutation surfaced as oracle violation: {e}");
        }
    });
    fault::reset();
    let failure =
        result.expect_err("the wait_for_consumers mutation must be caught within 10,000 schedules");
    // The shrunk failing schedule is what CI uploads on failure; here it
    // proves the report machinery works end to end.
    eprintln!("mutation caught:\n{failure}");
}

/// The slab free-list's ABA window under exhaustive interleaving: the
/// `slab.free-pop` det point sits exactly between a popper reading
/// `slot.next` and its head CAS — the classic Treiber window where, on a
/// plain (untagged) head, a concurrent pop/free/realloc cycle would make
/// the stale CAS succeed and thread the list through a live slot. The
/// tagged head must instead fail that CAS, so across every explored
/// schedule each allocated index is held by exactly one owner and the
/// conservation counters balance.
#[test]
fn det_slab_free_pop_aba_exclusive_ownership() {
    use std::collections::HashSet;
    use std::sync::Mutex;
    use zmsq::Slab;

    let cfg = Config::from_env(0x51AB_ABA).schedules(16);
    det::explore(&cfg, || {
        const THREADS: u64 = 3;
        const ROUNDS: u64 = 4;
        let slab: Arc<Slab<u64>> = Arc::new(Slab::new());
        // Seed the recycler: allocate then free a few slots so the ready
        // list is non-trivial and every thread's alloc goes through the
        // contended pop path rather than bump allocation.
        let seeded: Vec<u32> = (0..4).map(|i| slab.alloc(i, i)).collect();
        for idx in seeded {
            slab.free(idx);
        }
        let held: Arc<Mutex<HashSet<u32>>> = Arc::new(Mutex::new(HashSet::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (slab, held) = (Arc::clone(&slab), Arc::clone(&held));
                det::spawn(move || {
                    for i in 0..ROUNDS {
                        let tok = token(t, i);
                        let idx = slab.alloc(tok, tok);
                        // Exclusive ownership: if the ABA race handed the
                        // same index to two threads, this insert fails.
                        assert!(
                            held.lock().unwrap().insert(idx),
                            "slot {idx} handed to two owners"
                        );
                        // The slot must still carry OUR value when we give
                        // it back (a double-owner would have overwritten it).
                        let (prio, val) = slab.take(idx);
                        assert_eq!((prio, val), (tok, tok), "slot {idx} torn");
                        held.lock().unwrap().remove(&idx);
                        slab.free(idx);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let s = slab.stats();
        assert_eq!(s.allocs, s.frees, "every alloc returned");
        assert_eq!(s.live, 0, "no slot leaked across the explored schedule");
        assert!(held.lock().unwrap().is_empty());
    });
}

/// Free-pop racing *retirement*: one thread churns alloc/free (pushing
/// retired slots through quarantine), another holds an EBR pin across
/// part of the schedule. On every interleaving a slot freed while the
/// reader is pinned must not be handed out until the pin drops —
/// recycling a slot a pinned reader may still traverse is exactly the
/// use-after-free the epoch stamp exists to prevent.
#[test]
fn det_slab_quarantine_respects_pins() {
    use zmsq::Slab;

    let cfg = Config::from_env(0x51AB_E6).schedules(16);
    det::explore(&cfg, || {
        let slab: Arc<Slab<u64>> = Arc::new(Slab::new());
        let idx = slab.alloc(7, 7);
        let (_, v) = slab.take(idx);
        assert_eq!(v, 7);
        let pinned = Arc::new(AtomicU64::new(0));
        let released = Arc::new(AtomicU64::new(0));
        let reader = {
            let (pinned, released) = (Arc::clone(&pinned), Arc::clone(&released));
            det::spawn(move || {
                let guard = smr::ebr::pin();
                pinned.store(1, Ordering::SeqCst);
                det::det_point!("test.pinned-window");
                drop(guard);
                released.store(1, Ordering::SeqCst);
            })
        };
        let writer = {
            let (slab, pinned, released) = (
                Arc::clone(&slab),
                Arc::clone(&pinned),
                Arc::clone(&released),
            );
            det::spawn(move || {
                // Only a pin taken *before* retirement constrains the
                // recycler; wait for the reader's pin to be live so the
                // free below is what the epoch stamp must fence.
                while pinned.load(Ordering::SeqCst) == 0 {
                    det::det_point!("test.await-pin");
                }
                slab.free(idx);
                // Drive allocs until the freed slot comes back; it may
                // only do so after the reader's pin is gone.
                let mut fresh = Vec::new();
                for i in 0..64u64 {
                    let got = slab.alloc(i, i);
                    if got == idx {
                        assert_eq!(
                            released.load(Ordering::SeqCst),
                            1,
                            "slot recycled while a pre-retirement pin was live"
                        );
                        return;
                    }
                    fresh.push(got);
                }
                // Pin still live for the whole schedule: the slot staying
                // quarantined is the correct outcome too.
            })
        };
        reader.join();
        writer.join();
    });
}
