//! Concurrent stress across the configuration matrix: every combination
//! of set representation, lock type/strategy, reclamation mode and batch
//! size survives a mixed workload with conservation and invariants
//! intact.

use std::sync::atomic::{AtomicU64, Ordering};

use zmsq::{
    ArraySet, ListSet, LockStrategy, NodeSet, OsLock, RawTryLock, Reclamation, TasLock, TatasLock,
    Zmsq, ZmsqConfig,
};

fn stress<S, L>(cfg: ZmsqConfig, label: &str)
where
    S: NodeSet<u64> + 'static,
    L: RawTryLock + 'static,
{
    const THREADS: u64 = 4;
    const PER: u64 = 6_000;
    let mut q: Zmsq<u64, S, L> = Zmsq::with_config(cfg);
    let extracted = AtomicU64::new(0);
    let sum_in = AtomicU64::new(0);
    let sum_out = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let (extracted, sum_in, sum_out) = (&extracted, &sum_in, &sum_out);
            s.spawn(move || {
                let mut x = 0xBEEF ^ (t << 17);
                for i in 0..PER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let v = x | 1;
                    q.insert(x % 10_000, v);
                    sum_in.fetch_add(v, Ordering::Relaxed);
                    if i % 2 == 1 {
                        if let Some((_, v)) = q.extract_max() {
                            extracted.fetch_add(1, Ordering::Relaxed);
                            sum_out.fetch_add(v, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Drain and verify conservation by sum.
    while let Some((_, v)) = q.extract_max() {
        extracted.fetch_add(1, Ordering::Relaxed);
        sum_out.fetch_add(v, Ordering::Relaxed);
    }
    assert_eq!(
        extracted.into_inner(),
        THREADS * PER,
        "{label}: element count"
    );
    assert_eq!(
        sum_in.into_inner(),
        sum_out.into_inner(),
        "{label}: checksum"
    );
    q.validate_invariants()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
}

#[test]
fn matrix_list_tatas() {
    for (batch, tl) in [(0, 8), (1, 2), (8, 12), (48, 72)] {
        stress::<ListSet<u64>, TatasLock>(
            ZmsqConfig::default().batch(batch).target_len(tl),
            &format!("list/tatas b={batch} t={tl}"),
        );
    }
}

#[test]
fn matrix_array_tatas() {
    for (batch, tl) in [(0, 8), (8, 12), (48, 72)] {
        stress::<ArraySet<u64>, TatasLock>(
            ZmsqConfig::default().batch(batch).target_len(tl),
            &format!("array/tatas b={batch} t={tl}"),
        );
    }
}

#[test]
fn matrix_locks() {
    stress::<ListSet<u64>, TasLock>(ZmsqConfig::default().batch(16).target_len(24), "list/tas");
    stress::<ListSet<u64>, OsLock>(
        ZmsqConfig::default()
            .batch(16)
            .target_len(24)
            .lock_strategy(LockStrategy::Blocking),
        "list/mutex-blocking",
    );
    stress::<ArraySet<u64>, OsLock>(
        ZmsqConfig::default().batch(16).target_len(24),
        "array/mutex-tryrestart",
    );
}

#[test]
fn matrix_reclamation() {
    for mode in [
        Reclamation::Hazard,
        Reclamation::ConsumerWait,
        Reclamation::Leak,
    ] {
        stress::<ListSet<u64>, TatasLock>(
            ZmsqConfig::default()
                .batch(8)
                .target_len(16)
                .reclamation(mode),
            &format!("list/tatas {mode:?}"),
        );
        stress::<ArraySet<u64>, TatasLock>(
            ZmsqConfig::default()
                .batch(8)
                .target_len(16)
                .reclamation(mode),
            &format!("array/tatas {mode:?}"),
        );
    }
}

#[test]
fn matrix_pathological_sizes() {
    // target_len = 1: maximal splitting. batch clamped to 2*target_len.
    stress::<ListSet<u64>, TatasLock>(
        ZmsqConfig::default().batch(64).target_len(1),
        "list/tiny-target",
    );
    // Huge target_len: the tree rarely deepens.
    stress::<ListSet<u64>, TatasLock>(
        ZmsqConfig::default().batch(16).target_len(512),
        "list/huge-target",
    );
}

#[test]
fn adversarial_key_patterns() {
    use workloads::keys::{KeyDist, KeyStream};
    // Decreasing keys: the mound's worst case (§3.7); increasing keys:
    // everything lands at the root and splits downward.
    for dist in [
        KeyDist::Decreasing { start: u64::MAX },
        KeyDist::Increasing,
        KeyDist::UniformBits { bits: 3 },
    ] {
        let mut q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(16).target_len(16));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let q = &q;
                let dist = dist.clone();
                s.spawn(move || {
                    let mut ks = KeyStream::new(dist, t);
                    for i in 0..5_000 {
                        q.insert(ks.next_key(), i);
                        if i % 2 == 0 {
                            q.extract_max();
                        }
                    }
                });
            }
        });
        q.validate_invariants().unwrap();
        q.drain_count();
        assert_eq!(q.extract_max(), None);
    }
}
