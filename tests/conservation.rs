//! Element conservation under concurrency, for every queue in the repo.
//!
//! The fundamental safety property of any concurrent queue: across any
//! interleaving, every inserted element is extracted exactly once (no
//! loss, no duplication). Verified with value checksums, not just counts.

use std::sync::atomic::{AtomicU64, Ordering};

use pq_traits::ConcurrentPriorityQueue;

const ALL_QUEUES: &[&str] = &[
    "zmsq",
    "zmsq-array",
    "zmsq-leak",
    "zmsq-wait",
    "zmsq-strict",
    "mound",
    "spraylist",
    "multiqueue",
    "coarse-heap",
    "skiplist-strict",
    "fifo",
];

fn make(kind: &str, threads: usize) -> Box<dyn ConcurrentPriorityQueue<u64> + Sync + Send> {
    // Mirror of bench::queues::make_queue without depending on the bench
    // crate (integration tests should exercise the public crates only).
    use baselines::*;
    use zmsq::{ArraySet, Reclamation, TatasLock, Zmsq, ZmsqConfig};
    let small = ZmsqConfig::default().batch(16).target_len(24);
    match kind {
        "zmsq" => Box::new(Zmsq::<u64>::with_config(small)),
        "zmsq-array" => Box::new(Zmsq::<u64, ArraySet<u64>, TatasLock>::with_config(small)),
        "zmsq-leak" => Box::new(Zmsq::<u64>::with_config(
            small.reclamation(Reclamation::Leak),
        )),
        "zmsq-wait" => Box::new(Zmsq::<u64>::with_config(
            small.reclamation(Reclamation::ConsumerWait),
        )),
        "zmsq-strict" => Box::new(Zmsq::<u64>::with_config(ZmsqConfig::strict())),
        "mound" => Box::new(Mound::<u64>::new()),
        "spraylist" => Box::new(SprayList::<u64>::new(threads)),
        "multiqueue" => Box::new(MultiQueue::<u64>::new(threads, 2)),
        "coarse-heap" => Box::new(CoarseHeap::<u64>::new()),
        "skiplist-strict" => Box::new(StrictSkiplistPq::<u64>::new()),
        "fifo" => Box::new(FifoQueue::<u64>::new()),
        other => panic!("unknown kind {other}"),
    }
}

/// Producers insert tagged values; consumers extract concurrently; the
/// XOR and sum of extracted values must match what was inserted.
fn conservation_under_concurrency(kind: &str) {
    const THREADS: u64 = 4;
    const PER: u64 = 8_000;
    let q = make(kind, THREADS as usize);

    let extracted_xor = AtomicU64::new(0);
    let extracted_sum = AtomicU64::new(0);
    let extracted_n = AtomicU64::new(0);

    let mut expect_xor = 0u64;
    let mut expect_sum = 0u64;
    for t in 0..THREADS {
        for i in 0..PER {
            let v = t * PER + i + 1;
            expect_xor ^= v;
            expect_sum = expect_sum.wrapping_add(v);
        }
    }

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let (xor, sum, n) = (&extracted_xor, &extracted_sum, &extracted_n);
            s.spawn(move || {
                let mut x = 0x5DEECE66D ^ t;
                for i in 0..PER {
                    let v = t * PER + i + 1;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    q.insert(x % 100_000, v);
                    // Interleave extraction attempts half the time.
                    if i % 2 == 0 {
                        if let Some((_, v)) = q.extract_max() {
                            xor.fetch_xor(v, Ordering::Relaxed);
                            sum.fetch_add(v, Ordering::Relaxed);
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Drain remainder. SprayList/k-LSM may spuriously fail, so bound the
    // retries by overall progress rather than per call.
    let mut stall = 0;
    while extracted_n.load(Ordering::Relaxed) < THREADS * PER {
        match q.extract_max() {
            Some((_, v)) => {
                stall = 0;
                extracted_xor.fetch_xor(v, Ordering::Relaxed);
                extracted_sum.fetch_add(v, Ordering::Relaxed);
                extracted_n.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                stall += 1;
                assert!(stall < 1_000_000, "{kind}: drain stalled — lost elements?");
                std::hint::spin_loop();
            }
        }
    }
    assert_eq!(q.extract_max(), None, "{kind}: extra elements appeared");
    assert_eq!(extracted_n.into_inner(), THREADS * PER, "{kind}: count");
    assert_eq!(
        extracted_xor.into_inner(),
        expect_xor,
        "{kind}: xor checksum"
    );
    assert_eq!(
        extracted_sum.into_inner(),
        expect_sum,
        "{kind}: sum checksum"
    );
}

#[test]
fn conservation_all_queues() {
    for kind in ALL_QUEUES {
        conservation_under_concurrency(kind);
    }
}

#[test]
fn conservation_zmsq_heavy() {
    // Heavier, ZMSQ-specific run with the recommended config.
    use zmsq::{Zmsq, ZmsqConfig};
    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::recommended());
    const THREADS: u64 = 8;
    const PER: u64 = 20_000;
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let q = &q;
            let got = &got;
            s.spawn(move || {
                for i in 0..PER {
                    q.insert((t * PER + i) % 4096, t * PER + i);
                    if i % 3 == 0 && q.extract_max().is_some() {
                        got.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let rest = q.drain_count() as u64;
    assert_eq!(got.into_inner() + rest, THREADS * PER);
}
