//! Blocking-layer liveness (§3.6): parked consumers always wake for new
//! elements, and `close()` releases everyone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use zmsq::{Zmsq, ZmsqConfig};

fn blocking_queue(batch: usize) -> Zmsq<u64> {
    Zmsq::with_config(
        ZmsqConfig::default()
            .batch(batch)
            .target_len(batch.max(8) * 2)
            .blocking(true),
    )
}

/// One element at a time, consumer parked in between — the tightest
/// wake-up loop. A single lost wake-up deadlocks the test (caught by the
/// harness timeout, but we also bound with a watchdog).
#[test]
fn single_item_handoffs_wake_parked_consumer() {
    const ROUNDS: u64 = 2_000;
    let q = blocking_queue(4);
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        let q2 = &q;
        let got = &got;
        let consumer = s.spawn(move || {
            let mut n = 0u64;
            while q2.extract_max_blocking().is_some() {
                n += 1;
                got.fetch_add(1, Ordering::SeqCst);
            }
            n
        });
        for i in 0..ROUNDS {
            q.insert(i % 128, i);
            // Let the consumer actually park sometimes.
            if i % 64 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        while got.load(Ordering::SeqCst) < ROUNDS {
            std::thread::yield_now();
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), ROUNDS);
    });
}

/// Many consumers, bursty producers: everything is consumed and every
/// consumer exits after close.
#[test]
fn bursty_producers_many_consumers() {
    const CONSUMERS: usize = 6;
    const ITEMS: u64 = 30_000;
    let q = blocking_queue(32);
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..CONSUMERS {
            let q = &q;
            let got = &got;
            s.spawn(move || {
                while q.extract_max_blocking().is_some() {
                    got.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        let q2 = &q;
        let got2 = &got;
        s.spawn(move || {
            for i in 0..ITEMS {
                q2.insert(i % 4096, i);
                if i % 1000 == 999 {
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
            while got2.load(Ordering::SeqCst) < ITEMS {
                std::thread::yield_now();
            }
            q2.close();
        });
    });
    assert_eq!(got.into_inner(), ITEMS);
}

/// close() on an empty queue releases consumers that were already parked.
#[test]
fn close_releases_parked_consumers() {
    let q = blocking_queue(8);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = &q;
            handles.push(s.spawn(move || q.extract_max_blocking()));
        }
        // Give them time to park.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!q.is_closed());
        q.close();
        assert!(q.is_closed());
        for h in handles {
            assert_eq!(h.join().unwrap(), None, "woken by close with empty queue");
        }
    });
}

/// After close, blocking extraction still drains whatever remains before
/// reporting None.
#[test]
fn close_drains_remaining_elements() {
    let q = blocking_queue(8);
    for i in 0..100u64 {
        q.insert(i, i);
    }
    q.close();
    let mut n = 0;
    while q.extract_max_blocking().is_some() {
        n += 1;
    }
    assert_eq!(n, 100);
}

/// Timed extraction: expires on an empty queue, delivers when an element
/// arrives before the deadline.
#[test]
fn timed_extraction_semantics() {
    use std::time::Instant;
    let q = blocking_queue(8);

    // Expires empty.
    let t0 = Instant::now();
    assert_eq!(q.extract_max_timeout(Duration::from_millis(40)), None);
    assert!(t0.elapsed() >= Duration::from_millis(30));

    // Delivered mid-wait.
    std::thread::scope(|s| {
        let q2 = &q;
        let h = s.spawn(move || q2.extract_max_timeout(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        q.insert(7, 7);
        assert_eq!(h.join().unwrap(), Some((7, 7)));
    });

    // Immediate when nonempty.
    q.insert(9, 9);
    assert_eq!(
        q.extract_max_timeout(Duration::from_millis(1)),
        Some((9, 9))
    );

    // Blocking disabled: degrades to one non-blocking attempt.
    let plain: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default());
    assert_eq!(plain.extract_max_timeout(Duration::from_millis(50)), None);
}

/// Non-blocking extraction on a blocking-enabled queue still works (the
/// two APIs interoperate).
#[test]
fn mixed_blocking_and_nonblocking_consumers() {
    const ITEMS: u64 = 10_000;
    let q = blocking_queue(16);
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        let (q1, got1) = (&q, &got);
        s.spawn(move || {
            while q1.extract_max_blocking().is_some() {
                got1.fetch_add(1, Ordering::SeqCst);
            }
        });
        let (q2, got2) = (&q, &got);
        s.spawn(move || loop {
            match q2.extract_max() {
                Some(_) => {
                    got2.fetch_add(1, Ordering::SeqCst);
                }
                None => {
                    if q2.is_closed() {
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        });
        let (q3, got3) = (&q, &got);
        s.spawn(move || {
            for i in 0..ITEMS {
                q3.insert(i % 512, i);
            }
            while got3.load(Ordering::SeqCst) < ITEMS {
                std::thread::yield_now();
            }
            q3.close();
        });
    });
    assert_eq!(got.into_inner(), ITEMS);
}
