//! Property-based differential tests: ZMSQ against a reference model
//! under arbitrary operation sequences.

use std::collections::BinaryHeap;

use fault::DetRng;
use zmsq::{ArraySet, ListSet, Reclamation, TatasLock, Zmsq, ZmsqConfig};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Extract,
}

/// Seeded op sequence: 3 insert : 2 extract, 1..400 ops, keys below
/// `max_key`.
fn random_ops(rng: &mut DetRng, max_key: u64) -> Vec<Op> {
    let len = rng.random_range(1usize..400);
    (0..len)
        .map(|_| {
            if rng.random_range(0u32..5) < 3 {
                Op::Insert(rng.random_range(0..max_key))
            } else {
                Op::Extract
            }
        })
        .collect()
}

/// 64 seeded cases; prints the failing seed/case/ops for exact replay.
fn for_each_case(seed: u64, max_key: u64, mut f: impl FnMut(&[Op])) {
    let mut rng = DetRng::seed_from_u64(seed);
    for case in 0..64 {
        let ops = random_ops(&mut rng, max_key);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ops)));
        if let Err(e) = r {
            panic!("seed {seed:#x} case {case} ops {ops:?}: {e:?}");
        }
    }
}

/// Strict mode is a drop-in for BinaryHeap: identical results, op by op.
fn strict_matches_heap<S: zmsq::NodeSet<u64>>(ops: &[Op], target_len: usize) {
    let q: Zmsq<u64, S, TatasLock> = Zmsq::with_config(ZmsqConfig::strict().target_len(target_len));
    let mut model: BinaryHeap<u64> = BinaryHeap::new();
    for op in ops {
        match op {
            Op::Insert(k) => {
                q.insert(*k, *k);
                model.push(*k);
            }
            Op::Extract => {
                assert_eq!(q.extract_max().map(|p| p.0), model.pop());
            }
        }
    }
    // Full drain must agree too.
    loop {
        let (a, b) = (q.extract_max().map(|p| p.0), model.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}

/// Relaxed mode: a multiset bisimulation — contents always equal as
/// multisets, emptiness observations exact, and extracted keys are
/// always within the current top `batch + 1` ranks of the model.
fn relaxed_respects_bound(ops: &[Op], batch: usize, target_len: usize) {
    let mut q: Zmsq<u64> =
        Zmsq::with_config(ZmsqConfig::default().batch(batch).target_len(target_len));
    let mut model: Vec<u64> = Vec::new(); // kept sorted ascending
    for op in ops {
        match op {
            Op::Insert(k) => {
                q.insert(*k, *k);
                let pos = model.partition_point(|&x| x <= *k);
                model.insert(pos, *k);
            }
            Op::Extract => match q.extract_max() {
                None => assert!(
                    model.is_empty(),
                    "queue claimed empty with {} modeled elements",
                    model.len()
                ),
                Some((k, _)) => {
                    let pos = model
                        .iter()
                        .rposition(|&x| x == k)
                        .unwrap_or_else(|| panic!("extracted key {k} not in model"));
                    let rank = model.len() - pos; // 1 = maximum
                                                  // Quiescent single-threaded bound: served from the
                                                  // pool (filled with the best batch elements at fill
                                                  // time) or the root max. Elements inserted after a
                                                  // fill can push the pool's entries down by at most
                                                  // the number of subsequent inserts; allow that slack.
                    assert!(
                        rank <= batch + 1 + ops.len(),
                        "rank {rank} way beyond relaxation bound"
                    );
                    model.remove(pos);
                }
            },
        }
    }
    assert_eq!(q.drain_count(), model.len(), "final drain count");
    q.validate_invariants().unwrap();
}

#[test]
fn strict_list_matches_binaryheap() {
    for_each_case(0xD1F_0001, 1000, |ops| {
        strict_matches_heap::<ListSet<u64>>(ops, 8)
    });
}

#[test]
fn strict_array_matches_binaryheap() {
    for_each_case(0xD1F_0002, 1000, |ops| {
        strict_matches_heap::<ArraySet<u64>>(ops, 8)
    });
}

#[test]
fn strict_with_tiny_sets() {
    // target_len = 1 forces constant splitting — the stress case for
    // the split/swap machinery.
    for_each_case(0xD1F_0003, 50, |ops| {
        strict_matches_heap::<ListSet<u64>>(ops, 1)
    });
}

#[test]
fn relaxed_small_batch() {
    for_each_case(0xD1F_0004, 1000, |ops| relaxed_respects_bound(ops, 2, 4));
}

#[test]
fn relaxed_large_batch() {
    for_each_case(0xD1F_0005, 1000, |ops| relaxed_respects_bound(ops, 32, 48));
}

#[test]
fn relaxed_duplicate_heavy() {
    // Key space of 5: nearly everything is a duplicate.
    for_each_case(0xD1F_0006, 5, |ops| relaxed_respects_bound(ops, 4, 8));
}

#[test]
fn invariants_hold_for_any_config() {
    let mut cfg_rng = DetRng::seed_from_u64(0xD1F_0007);
    for_each_case(0xD1F_0008, 200, |ops| {
        let batch = cfg_rng.random_range(0usize..16);
        let target_len = cfg_rng.random_range(1usize..20);
        let mut q: Zmsq<u64> =
            Zmsq::with_config(ZmsqConfig::default().batch(batch).target_len(target_len));
        let mut inserted = 0u64;
        let mut extracted = 0u64;
        for op in ops {
            match op {
                Op::Insert(k) => {
                    q.insert(*k, *k);
                    inserted += 1;
                }
                Op::Extract => {
                    if q.extract_max().is_some() {
                        extracted += 1;
                    }
                }
            }
        }
        assert!(
            q.validate_invariants().is_ok(),
            "batch={batch} target_len={target_len}"
        );
        assert_eq!(q.drain_count() as u64, inserted - extracted);
    });
}

#[test]
fn leak_mode_equivalent_behaviour() {
    // Leak and Hazard modes must be observably identical in
    // single-threaded runs.
    for_each_case(0xD1F_0009, 500, |ops| {
        let qa: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(8));
        let qb: Zmsq<u64> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(4)
                .target_len(8)
                .reclamation(Reclamation::Leak),
        );
        for op in ops {
            match op {
                Op::Insert(k) => {
                    qa.insert(*k, *k);
                    qb.insert(*k, *k);
                }
                Op::Extract => {
                    // Both queues use thread-local RNG, so exact element
                    // equality isn't guaranteed — but emptiness must agree
                    // (it is structural, not random).
                    let (a, b) = (qa.extract_max(), qb.extract_max());
                    assert_eq!(a.is_some(), b.is_some());
                }
            }
        }
        assert_eq!(qa.drain_count(), qb.drain_count());
    });
}
