//! ListSet vs ArraySet micro-costs (criterion) — the representation
//! trade-off behind the "(array)" curves (§4, §4.5.1).

use bench::harness as criterion;
use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use zmsq::{ArraySet, ListSet, NodeSet};

fn fill<S: NodeSet<u64>>(n: u64) -> S {
    let mut s = S::default();
    let mut x = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.insert(x % 10_000, x);
    }
    s
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_insert_remove_max");
    for size in [16u64, 72, 144] {
        group.bench_with_input(BenchmarkId::new("list", size), &size, |b, &n| {
            let mut s: ListSet<u64> = fill(n);
            let mut x = 7u64;
            b.iter(|| {
                x = x.wrapping_mul(48271) % 10_000;
                s.insert(black_box(x), x);
                black_box(s.remove_max());
            });
        });
        group.bench_with_input(BenchmarkId::new("array", size), &size, |b, &n| {
            let mut s: ArraySet<u64> = fill(n);
            let mut x = 7u64;
            b.iter(|| {
                x = x.wrapping_mul(48271) % 10_000;
                s.insert(black_box(x), x);
                black_box(s.remove_max());
            });
        });
    }
    group.finish();
}

fn bench_drain_top(c: &mut Criterion) {
    // The pool-refill primitive: take the `batch` largest (§3.3).
    let mut group = c.benchmark_group("set_drain_top_48");
    group.bench_function("list", |b| {
        b.iter_batched(
            || fill::<ListSet<u64>>(144),
            |mut s| {
                let mut out = Vec::with_capacity(48);
                s.drain_top(48, &mut out);
                black_box(out)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("array", |b| {
        b.iter_batched(
            || fill::<ArraySet<u64>>(144),
            |mut s| {
                let mut out = Vec::with_capacity(48);
                s.drain_top(48, &mut out);
                black_box(out)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_split_lower_half_144");
    group.bench_function("list", |b| {
        b.iter_batched(
            || fill::<ListSet<u64>>(144),
            |mut s| black_box(s.split_lower_half()),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("array", |b| {
        b.iter_batched(
            || fill::<ArraySet<u64>>(144),
            |mut s| black_box(s.split_lower_half()),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_insert_remove, bench_drain_top, bench_split
}
criterion_main!(benches);
