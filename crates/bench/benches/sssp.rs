//! SSSP kernel costs (criterion) — small-scale versions of Figs. 7/8.

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use bench::queues::{make_queue, make_zmsq};
use zmsq_graph::{gen, parallel_sssp, sequential_sssp};

fn bench_sssp(c: &mut Criterion) {
    let graph = gen::barabasi_albert(20_000, 8, 100, 13);
    let source = graph.max_degree_node();
    // Sanity once, outside the measurement.
    let reference = sequential_sssp(&graph, source);

    let mut group = c.benchmark_group("sssp_20k_nodes");
    group.sample_size(10);

    group.bench_function("sequential_dijkstra", |b| {
        b.iter(|| black_box(sequential_sssp(&graph, source)));
    });

    for kind in ["zmsq", "zmsq-array", "mound", "spraylist", "coarse-heap"] {
        group.bench_with_input(BenchmarkId::new("parallel_t2", kind), kind, |b, kind| {
            b.iter(|| {
                let q = match kind {
                    "zmsq" => make_zmsq::<u32>(42, 64, false, zmsq::Reclamation::Hazard),
                    "zmsq-array" => make_zmsq::<u32>(42, 64, true, zmsq::Reclamation::Hazard),
                    other => make_queue::<u32>(other, 2),
                };
                let r = parallel_sssp(&graph, source, &q, 2);
                assert_eq!(r.dist, reference);
                black_box(r.processed)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_sssp
}
criterion_main!(benches);
