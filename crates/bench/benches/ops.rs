//! Single-op latency across queues (criterion).
//!
//! Complements the figure harnesses: where those sweep threads at fixed
//! workloads, these measure the sequential cost of `insert` and
//! `extract_max` per queue — the "single thread performance" comparisons
//! of §4.5.1 (e.g. ZMSQ (array) fastest by virtue of allocation-free
//! inserts).

use bench::harness as criterion;
use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use bench::queues::make_queue;
use pq_traits::ConcurrentPriorityQueue;

const QUEUES: &[&str] = &[
    "zmsq",
    "zmsq-array",
    "zmsq-deque",
    "zmsq-leak",
    "zmsq-strict",
    "mound",
    "spraylist",
    "multiqueue",
    "coarse-heap",
];

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    for kind in QUEUES {
        group.bench_with_input(BenchmarkId::from_parameter(kind), kind, |b, kind| {
            let q = make_queue::<u64>(kind, 1);
            let mut x = 0x9E3779B97F4A7C15u64;
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.insert(black_box(x & 0xFFFFF), x);
            });
        });
    }
    group.finish();
}

fn bench_extract(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_prefilled");
    group.sample_size(10);
    for kind in QUEUES {
        group.bench_with_input(BenchmarkId::from_parameter(kind), kind, |b, kind| {
            b.iter_batched(
                || {
                    let q = make_queue::<u64>(kind, 1);
                    let mut x = 0xDEADBEEFu64;
                    for _ in 0..10_000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        q.insert(x & 0xFFFFF, x);
                    }
                    q
                },
                |q| {
                    for _ in 0..10_000 {
                        black_box(q.extract_max());
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_mixed_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_extract_pair");
    for kind in QUEUES {
        group.bench_with_input(BenchmarkId::from_parameter(kind), kind, |b, kind| {
            let q = make_queue::<u64>(kind, 1);
            let mut x = 0xC0FFEEu64;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.insert(x & 0xFFFFF, x);
            }
            b.iter(|| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                q.insert(black_box(x & 0xFFFFF), x);
                black_box(q.extract_max());
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_insert, bench_extract, bench_mixed_pair
}
criterion_main!(benches);
