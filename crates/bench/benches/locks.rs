//! Lock primitive costs (criterion) — the substrate of Fig. 2 (§4.1).

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;

use zmsq_sync::{OsLock, RawTryLock, TasLock, TatasLock};

fn bench_uncontended<L: RawTryLock + 'static>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("lock_uncontended/{name}"), |b| {
        let l = L::default();
        b.iter(|| {
            l.lock();
            black_box(&l);
            l.unlock();
        });
    });
    c.bench_function(&format!("trylock_uncontended/{name}"), |b| {
        let l = L::default();
        b.iter(|| {
            assert!(l.try_lock());
            l.unlock();
        });
    });
    c.bench_function(&format!("trylock_held/{name}"), |b| {
        // The §4.1 fast-fail path: try_lock against a held lock.
        let l = L::default();
        l.lock();
        b.iter(|| {
            black_box(l.try_lock());
        });
        l.unlock();
    });
}

fn bench_contended<L: RawTryLock + 'static>(c: &mut Criterion, name: &str) {
    c.bench_function(&format!("lock_contended_2bg/{name}"), |b| {
        // Two background threads hammer the lock while we measure.
        let lock = Arc::new(L::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut bg = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            bg.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    lock.lock();
                    std::hint::spin_loop();
                    lock.unlock();
                }
            }));
        }
        b.iter(|| {
            lock.lock();
            black_box(&lock);
            lock.unlock();
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in bg {
            h.join().unwrap();
        }
    });
}

fn benches(c: &mut Criterion) {
    bench_uncontended::<TasLock>(c, "tas");
    bench_uncontended::<TatasLock>(c, "tatas");
    bench_uncontended::<OsLock>(c, "mutex");
    bench_contended::<TasLock>(c, "tas");
    bench_contended::<TatasLock>(c, "tatas");
    bench_contended::<OsLock>(c, "mutex");
}

criterion_group! {
    name = lock_benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = benches
}
criterion_main!(lock_benches);
