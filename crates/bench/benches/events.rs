//! Blocking-substrate costs (criterion) — the §3.6 claim that "in the
//! common case, each call is a single fetch-and-increment".

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::atomic::{AtomicU32, Ordering};

use zmsq_sync::{futex_wake, EventBuffer};

fn bench_signal_no_sleepers(c: &mut Criterion) {
    // The hot path: every insert signals; almost never is anyone asleep.
    c.bench_function("event_signal_no_sleepers", |b| {
        let ev = EventBuffer::new();
        b.iter(|| {
            ev.signal();
            black_box(&ev);
        });
    });
}

fn bench_wait_ready(c: &mut Criterion) {
    // Consumer-side fast path: predicate already true.
    c.bench_function("event_wait_ready", |b| {
        let ev = EventBuffer::new();
        b.iter(|| black_box(ev.wait_until(|| true)));
    });
}

fn bench_futex_wake_empty(c: &mut Criterion) {
    // Raw syscall cost of waking with no waiters.
    c.bench_function("futex_wake_no_waiters", |b| {
        let atom = AtomicU32::new(0);
        b.iter(|| black_box(futex_wake(&atom, 1)));
    });
}

fn bench_signal_with_sleeper(c: &mut Criterion) {
    // Slow path: one parked consumer per signal (measures the CAS +
    // FUTEX_WAKE round trip; the consumer immediately re-parks).
    c.bench_function("event_signal_one_sleeper", |b| {
        let ev = EventBuffer::new();
        let stop = AtomicU32::new(0);
        std::thread::scope(|s| {
            let (ev2, stop2) = (&ev, &stop);
            let h = s.spawn(move || {
                while stop2.load(Ordering::Acquire) == 0 {
                    ev2.wait_until(|| stop2.load(Ordering::Acquire) != 0);
                }
            });
            // Give the consumer time to park.
            std::thread::sleep(std::time::Duration::from_millis(5));
            b.iter(|| ev.signal());
            stop.store(1, Ordering::Release);
            ev.close();
            h.join().unwrap();
        });
        ev.reopen();
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_signal_no_sleepers,
        bench_wait_ready,
        bench_futex_wake_empty,
        bench_signal_with_sleeper
}
criterion_main!(benches);
