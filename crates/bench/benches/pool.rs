//! Pool amortization ablation (criterion).
//!
//! §3.3/§4.2: `batch` bounds how many extractions one root critical
//! section can serve. Measured here as extraction cost vs. batch size
//! (batch = 0 is the strict mound path — every extraction pays the
//! root), and as the reclamation-mode cost on the claim fast path
//! (Hazard vs ConsumerWait vs Leak, §3.5).

use bench::harness as criterion;
use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use std::hint::black_box;

use zmsq::{Reclamation, Zmsq, ZmsqConfig};

fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_vs_batch");
    group.sample_size(10);
    for batch in [0usize, 4, 16, 48, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter_batched(
                || {
                    let q: Zmsq<u64> =
                        Zmsq::with_config(ZmsqConfig::default().batch(batch).target_len(72));
                    let mut x = 99u64;
                    for _ in 0..20_000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        q.insert(x >> 44, x);
                    }
                    q
                },
                |q| {
                    for _ in 0..10_000 {
                        black_box(q.extract_max());
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_reclamation_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_vs_reclamation");
    group.sample_size(10);
    for (name, mode) in [
        ("hazard", Reclamation::Hazard),
        ("consumer-wait", Reclamation::ConsumerWait),
        ("leak", Reclamation::Leak),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter_batched(
                || {
                    let q: Zmsq<u64> = Zmsq::with_config(
                        ZmsqConfig::default()
                            .batch(48)
                            .target_len(72)
                            .reclamation(mode),
                    );
                    let mut x = 7u64;
                    for _ in 0..20_000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        q.insert(x >> 44, x);
                    }
                    q
                },
                |q| {
                    for _ in 0..10_000 {
                        black_box(q.extract_max());
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench_batch_sweep, bench_reclamation_modes
}
criterion_main!(benches);
