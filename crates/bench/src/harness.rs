//! A self-contained micro-benchmark harness with a criterion-shaped API.
//!
//! The bench files under `benches/` were written against the criterion
//! surface (`Criterion`, `benchmark_group`, `Bencher::iter`/
//! `iter_batched`, `criterion_group!`/`criterion_main!`). This module
//! reimplements exactly the subset they use — warm-up, fixed sample
//! count, batched setup, per-iteration mean reporting — with no
//! external dependencies, so `cargo bench` works offline. Import it as
//! `use bench::harness as criterion;` for drop-in path compatibility.
//!
//! Statistics are deliberately simple (median and min/max of per-sample
//! means); the figure-level harnesses in `src/bin/` own the rigorous
//! methodology, these benches are for relative regression tracking.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; this harness always re-runs setup per batch).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state: large batches.
    SmallInput,
    /// Expensive per-iteration state: one routine call per setup.
    LargeInput,
    /// Setup before every single routine call.
    PerIteration,
}

/// Benchmark identifier inside a group, e.g. `insert/zmsq-array`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<function>/<parameter>` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(format!("{parameter}"))
    }
}

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    /// Target duration of one measured sample.
    sample_time: Duration,
    /// Collected per-sample mean ns/iter.
    samples: Vec<f64>,
    /// Number of measured samples.
    sample_count: usize,
    /// Warm-up budget before the first sample.
    warm_up: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly; the reported unit is one call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: run until the budget elapses, calibrating the
        // per-sample iteration count as we go.
        let mut iters_per_sample = 1u64;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let dt = t.elapsed();
            if dt < self.sample_time / 2 {
                iters_per_sample = iters_per_sample.saturating_mul(2);
            }
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let dt = t.elapsed();
            self.samples
                .push(dt.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Measure `routine(setup())`, excluding `setup` from the timing.
    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        // Setup cost can dwarf the routine, so time each routine call
        // individually (one batch per call).
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        for _ in 0..self.sample_count {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Top-level harness state: configuration plus result output.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
}

impl Criterion {
    /// Criterion-compatible inherent constructor (the real crate's
    /// `Criterion::default()`).
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            samples: 10,
        }
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(2);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let line = run_one(self, name, f);
        println!("{line}");
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group (and, because the
    /// configuration is shared, subsequent groups on this `Criterion`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.samples = n.max(2);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Benchmark identified by a plain name within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let line = run_one(self.criterion, &full, f);
        println!("{line}");
        self
    }

    /// Benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        let line = run_one(self.criterion, &full, |b| f(b, input));
        println!("{line}");
        self
    }

    /// End the group (report flushing is per-benchmark; this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(criterion: &Criterion, name: &str, mut f: impl FnMut(&mut Bencher)) -> String {
    let mut b = Bencher {
        sample_time: criterion.measurement / criterion.samples as u32,
        samples: Vec::with_capacity(criterion.samples),
        sample_count: criterion.samples,
        warm_up: criterion.warm_up,
    };
    f(&mut b);
    if std::env::var_os("OBS_METRICS_JSON").is_some() {
        record_samples(name, &b.samples);
    }
    if b.samples.is_empty() {
        return format!("{name:<48} (no samples)");
    }
    b.samples.sort_by(|a, x| a.total_cmp(x));
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    format!(
        "{name:<48} time: [{} {} {}]",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi)
    )
}

/// Record per-sample mean latencies (ns/iter) into the global `obs`
/// registry under `bench.<name>_ns`.
fn record_samples(name: &str, samples: &[f64]) {
    let h = obs::global().histogram(&format!("bench.{name}_ns"));
    for &s in samples {
        h.record(s.max(0.0) as u64);
    }
}

/// Write the global `obs` registry — every benchmark's sample histogram
/// — plus the always-on substrate counters to the path named by the
/// `OBS_METRICS_JSON` environment variable. Invoked by
/// [`crate::criterion_main!`] after all groups finish; a no-op when the
/// variable is unset.
pub fn flush_metrics() {
    let Some(path) = std::env::var_os("OBS_METRICS_JSON") else {
        return;
    };
    let out = crate::metrics::MetricsOut::at(std::path::PathBuf::from(path));
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = out.write(obs::global().snapshot(), "bench-harness", &args.join(" ")) {
        eprintln!("metrics: write failed: {e}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Build a benchmark group function from a configuration expression and
/// a list of target functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the listed groups (criterion-compatible).
/// After the groups finish, the harness flushes the global `obs`
/// registry to `$OBS_METRICS_JSON` when that variable names a path.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::harness::flush_metrics();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
            .sample_size(4);
        let mut group = c.benchmark_group("harness-test");
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut setups = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64, 2, 3]
                },
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 3, "setup ran {setups} times");
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("list", 64).0, "list/64");
        assert_eq!(BenchmarkId::from_parameter("zmsq").0, "zmsq");
    }

    #[test]
    fn record_samples_lands_in_global_registry() {
        record_samples("harness-test/attach", &[100.0, 2_000.0, -1.0]);
        let s = obs::global().snapshot();
        let h = s
            .hist("bench.harness-test/attach_ns")
            .expect("histogram registered");
        assert_eq!(h.count, 3); // the negative sample clamps to 0
        assert!(h.max >= 2_000);
    }

    #[test]
    fn flush_metrics_without_env_is_a_noop() {
        // Must not panic or write anything when OBS_METRICS_JSON is unset
        // (the test runner never sets it).
        flush_metrics();
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
    }
}
