//! Queue factory shared by the harness binaries.

use baselines::{CoarseHeap, FifoQueue, KLsm, Mound, MultiQueue, SprayList, StrictSkiplistPq};
use pq_traits::ConcurrentPriorityQueue;
use zmsq::{ArraySet, DequeSet, ListSet, Reclamation, SlabSet, TatasLock, Zmsq, ZmsqConfig};

/// A boxed queue usable by every generic driver.
pub type BoxedQueue<V> = Box<dyn ConcurrentPriorityQueue<V> + Sync + Send>;

/// Construct a ZMSQ with explicit tuning (the Fig. 3 / Fig. 8 sweeps).
pub fn make_zmsq<V: Send + 'static>(
    batch: usize,
    target_len: usize,
    array_set: bool,
    reclamation: Reclamation,
) -> BoxedQueue<V> {
    make_zmsq_set(
        batch,
        target_len,
        if array_set { "array" } else { "list" },
        reclamation,
    )
}

/// Construct a tuned ZMSQ with an explicit set representation
/// (`"list"`, `"array"`, `"deque"`, or `"slab"`).
pub fn make_zmsq_set<V: Send + 'static>(
    batch: usize,
    target_len: usize,
    set: &str,
    reclamation: Reclamation,
) -> BoxedQueue<V> {
    let cfg = ZmsqConfig::default()
        .batch(batch)
        .target_len(target_len)
        .reclamation(reclamation);
    match set {
        "array" => Box::new(Zmsq::<V, ArraySet<V>, TatasLock>::with_config(cfg)),
        "deque" => Box::new(Zmsq::<V, DequeSet<V>, TatasLock>::with_config(cfg)),
        "slab" => Box::new(Zmsq::<V, SlabSet<V>, TatasLock>::with_config(cfg)),
        _ => Box::new(Zmsq::<V, ListSet<V>, TatasLock>::with_config(cfg)),
    }
}

/// Construct a queue by name. `threads` parameterizes the thread-count-
/// sensitive queues (SprayList spray width, MultiQueue heap count).
///
/// Known names: `zmsq`, `zmsq-array`, `zmsq-deque`, `zmsq-slab`,
/// `zmsq-slab-bounded`, `zmsq-leak`, `zmsq-wait`, `zmsq-strict`,
/// `zmsq-sharded`, `zmsq-sharded-adaptive`, `mound`, `spraylist`,
/// `multiqueue`, `klsm`, `coarse-heap`, `skiplist-strict`, `fifo`.
///
/// `zmsq-slab-bounded` is the `Zmsq::bounded` composition (slab sets +
/// capacity admission with the pre-published arena) at a fixed 2^18 =
/// 262,144 elements — above every harness's default prefill, so the
/// bench workloads never hit the admission ceiling and the arm isolates
/// the allocation-free steady state (`ops_latency --assert-alloc-free`).
pub fn make_queue<V: Send + 'static>(kind: &str, threads: usize) -> BoxedQueue<V> {
    let default = ZmsqConfig::default(); // batch=48, targetLen=72 (§4.2)
    match kind {
        "zmsq" => Box::new(Zmsq::<V>::with_config(default)),
        "zmsq-array" => Box::new(Zmsq::<V, ArraySet<V>, TatasLock>::with_config(default)),
        "zmsq-deque" => Box::new(Zmsq::<V, DequeSet<V>, TatasLock>::with_config(default)),
        "zmsq-slab" => Box::new(Zmsq::<V, SlabSet<V>, TatasLock>::with_config(default)),
        "zmsq-slab-bounded" => Box::new(Zmsq::<V, SlabSet<V>, TatasLock>::with_config(
            default.capacity(1 << 18),
        )),
        "zmsq-leak" => Box::new(Zmsq::<V>::with_config(
            default.reclamation(Reclamation::Leak),
        )),
        "zmsq-wait" => Box::new(Zmsq::<V>::with_config(
            default.reclamation(Reclamation::ConsumerWait),
        )),
        "zmsq-strict" => Box::new(Zmsq::<V>::with_config(ZmsqConfig::strict())),
        "zmsq-sharded" => Box::new(zmsq::ShardedZmsq::<V>::new(threads.max(2) / 2, default)),
        "zmsq-sharded-adaptive" => Box::new(zmsq::ShardedZmsq::<V>::new(
            threads.max(2) / 2,
            default.batch(16).adaptive_batch(4, 64),
        )),
        "mound" => Box::new(Mound::<V>::new()),
        "spraylist" => Box::new(SprayList::<V>::new(threads)),
        "multiqueue" => Box::new(MultiQueue::<V>::new(threads, 2)),
        "klsm" => Box::new(KLsm::<V>::new(256)),
        "coarse-heap" => Box::new(CoarseHeap::<V>::new()),
        "skiplist-strict" => Box::new(StrictSkiplistPq::<V>::new()),
        "fifo" => Box::new(FifoQueue::<V>::new()),
        other => panic!("unknown queue kind {other:?}"),
    }
}

/// Construct one of the shootout's tunable bases with explicit
/// stickiness / buffer depths (0 = knob off). Known bases:
/// `zmsq-sharded`, `zmsq-sharded-adaptive`, `multiqueue`. Every queue
/// comes with its live rank estimator armed (sampling shift 6, the
/// `ZmsqConfig` default) so the sweep can read `quality.est_rank`
/// without an oracle in the hot path.
pub fn make_tuned_queue<V: Send + 'static>(
    base: &str,
    threads: usize,
    stickiness: usize,
    insert_buffer: usize,
    delete_buffer: usize,
) -> BoxedQueue<V> {
    let tuning = zmsq::ShardedConfig::new()
        .stickiness(stickiness)
        .insert_buffer(insert_buffer)
        .delete_buffer(delete_buffer);
    let default = ZmsqConfig::default();
    match base {
        "zmsq-sharded" => Box::new(zmsq::ShardedZmsq::<V>::with_tuning(
            threads.max(2) / 2,
            default,
            tuning,
        )),
        "zmsq-sharded-adaptive" => Box::new(zmsq::ShardedZmsq::<V>::with_tuning(
            threads.max(2) / 2,
            default.batch(16).adaptive_batch(4, 64),
            tuning,
        )),
        "multiqueue" => Box::new(
            MultiQueue::<V>::with_tuning(threads, 2, stickiness, insert_buffer, delete_buffer)
                .rank_estimator(6),
        ),
        other => panic!("unknown tunable base {other:?}"),
    }
}

/// The shootout's tunable bases (each accepts stickiness and buffer
/// depths through [`make_tuned_queue`]).
pub const SHOOTOUT_BASES: &[&str] = &["zmsq-sharded", "zmsq-sharded-adaptive", "multiqueue"];

/// The paper's Fig. 5 lineup.
pub const FIG5_QUEUES: &[&str] = &[
    "zmsq",
    "zmsq-array",
    "zmsq-deque",
    "zmsq-leak",
    "mound",
    "spraylist",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_roundtrips() {
        for kind in [
            "zmsq",
            "zmsq-array",
            "zmsq-deque",
            "zmsq-slab",
            "zmsq-slab-bounded",
            "zmsq-leak",
            "zmsq-wait",
            "zmsq-strict",
            "zmsq-sharded",
            "zmsq-sharded-adaptive",
            "mound",
            "spraylist",
            "multiqueue",
            "klsm",
            "coarse-heap",
            "skiplist-strict",
            "fifo",
        ] {
            let q: BoxedQueue<u64> = make_queue(kind, 4);
            q.insert(5, 50);
            q.insert(9, 90);
            let mut got = Vec::new();
            while let Some((k, _)) = q.extract_max() {
                got.push(k);
            }
            got.sort_unstable();
            assert_eq!(got, vec![5, 9], "{kind} lost elements");
            assert!(!q.name().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown queue kind")]
    fn unknown_kind_panics() {
        let _ = make_queue::<u64>("nope", 1);
    }

    #[test]
    fn tuned_bases_construct_and_roundtrip() {
        for base in SHOOTOUT_BASES {
            for (c, ins, del) in [(0, 0, 0), (1, 8, 8), (16, 64, 64)] {
                let q: BoxedQueue<u64> = make_tuned_queue(base, 4, c, ins, del);
                for i in 0..200u64 {
                    q.insert(i, i);
                }
                q.flush();
                let mut got = 0;
                while q.extract_max().is_some() {
                    got += 1;
                }
                assert_eq!(got, 200, "{base} c{c} i{ins} d{del} lost elements");
                assert!(
                    q.metrics().is_some(),
                    "{base} must expose metrics for the rank axis"
                );
            }
        }
    }

    #[test]
    fn tuned_zmsq_applies_config() {
        let q = make_zmsq::<u64>(8, 16, false, Reclamation::Leak);
        for i in 0..100 {
            q.insert(i, i);
        }
        assert_eq!(q.name(), "zmsq-list-leak");
        let mut n = 0;
        while q.extract_max().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
    }
}
