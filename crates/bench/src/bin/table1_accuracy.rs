//! Table 1 — accuracy of ZMSQ vs the SprayList and a FIFO (§4.3).
//!
//! Protocol: initialize with N distinct random keys, execute E
//! extractMax() operations, report how many returned keys rank in the
//! true top E. Table 1a: N = 1K, E ∈ {10%, 50%}. Table 1b: N = 64K,
//! E ∈ {0.1%, 1%, 10%}. ZMSQ sweeps `batch` (targetLen = 64 — accuracy
//! depends only on batch when batch <= targetLen); SprayList sweeps its
//! thread parameter, since that is what its spray width depends on.
//!
//! Usage: table1_accuracy [--size 1024|65536|both] [--runs N] [--quick]

use bench::cli::Args;
use bench::queues::{make_queue, make_zmsq};
use workloads::accuracy::measure_accuracy;
use workloads::keys::distinct_keys;
use zmsq::Reclamation;

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let runs: usize = args.get_num("runs", if quick { 3 } else { 15 });
    let size_arg = args.get("size", "both");
    let sizes: Vec<usize> = match size_arg.as_str() {
        "both" => vec![1024, 65_536],
        s => vec![s.parse().expect("numeric --size")],
    };

    let zmsq_batches = [1usize, 4, 8, 16, 32, 64];
    let spray_threads = [1usize, 2, 4, 8, 16, 32, 64];

    bench::csv_header(&[
        "table",
        "queue",
        "param",
        "queue_size",
        "extracts",
        "hit_rate",
        "spurious_fails",
    ]);
    for &n in &sizes {
        let table = if n <= 1024 { "1a" } else { "1b" };
        let extract_counts: Vec<usize> = if n <= 1024 {
            vec![n / 10, n / 2] // 10%, 50%
        } else {
            vec![n / 1000, n / 100, n / 10] // 0.1%, 1%, 10%
        };
        for &e in &extract_counts {
            // ZMSQ batch sweep.
            for &batch in &zmsq_batches {
                let mut hits = 0.0;
                let mut spurious = 0u64;
                for run in 0..runs {
                    let keys = distinct_keys(n, 1000 + run as u64);
                    let q = make_zmsq::<u64>(batch, 64, false, Reclamation::Hazard);
                    let r = measure_accuracy(&q, &keys, e, 1);
                    hits += r.hit_rate();
                    spurious += r.spurious_failures;
                }
                println!(
                    "{table},zmsq,batch={batch},{n},{e},{:.4},{spurious}",
                    hits / runs as f64
                );
            }
            // SprayList thread sweep (accuracy depends on T, not on the
            // actual extractor parallelism — §4.3 varies T the same way).
            for &t in &spray_threads {
                let mut hits = 0.0;
                let mut spurious = 0u64;
                for run in 0..runs {
                    let keys = distinct_keys(n, 2000 + run as u64);
                    let q = make_queue::<u64>("spraylist", t);
                    let r = measure_accuracy(&q, &keys, e, 1);
                    hits += r.hit_rate();
                    spurious += r.spurious_failures;
                }
                println!(
                    "{table},spraylist,threads={t},{n},{e},{:.4},{spurious}",
                    hits / runs as f64
                );
            }
            // Extension columns: the relaxed queues the paper only
            // discusses (MultiQueue accuracy depends on its heap count,
            // k-LSM's on k), plus the FIFO floor.
            for &t in &[4usize, 16, 64] {
                let mut hits = 0.0;
                let mut spurious = 0u64;
                for run in 0..runs {
                    let keys = distinct_keys(n, 4000 + run as u64);
                    let q = make_queue::<u64>("multiqueue", t);
                    let r = measure_accuracy(&q, &keys, e, 1);
                    hits += r.hit_rate();
                    spurious += r.spurious_failures;
                }
                println!(
                    "{table},multiqueue,threads={t},{n},{e},{:.4},{spurious}",
                    hits / runs as f64
                );
            }
            {
                let mut hits = 0.0;
                let mut spurious = 0u64;
                for run in 0..runs {
                    let keys = distinct_keys(n, 5000 + run as u64);
                    let q = make_queue::<u64>("klsm", 1);
                    let r = measure_accuracy(&q, &keys, e, 1);
                    hits += r.hit_rate();
                    spurious += r.spurious_failures;
                }
                println!(
                    "{table},klsm,k=256,{n},{e},{:.4},{spurious}",
                    hits / runs as f64
                );
            }
            // FIFO floor.
            let mut hits = 0.0;
            for run in 0..runs {
                let keys = distinct_keys(n, 3000 + run as u64);
                let q = make_queue::<u64>("fifo", 1);
                hits += measure_accuracy(&q, &keys, e, 1).hit_rate();
            }
            println!("{table},fifo,-,{n},{e},{:.4},0", hits / runs as f64);
        }
    }
}
