//! Figure 6 — producer/consumer ratios (§4.5.2).
//!
//! Dedicated producers and consumers transfer 1M items through an
//! initially empty queue; the ratio varies. Blocking is disabled
//! (SprayList has none), so all consumers spin — what Fig. 6 measures is
//! how reliably `extract_max` hands out elements: SprayList consumers
//! "make multiple extractMax() calls just to get one element", visible
//! here in the `misses` column.
//!
//! Usage: fig6_prodcons [--items N] [--ratios 1:1,1:2,2:1,1:4,4:1,1:8]
//!                      [--queues zmsq,mound,spraylist] [--quick]

use bench::cli::Args;
use bench::queues::make_queue;
use workloads::keys::KeyDist;
use workloads::prodcons::{run_prodcons_spin, ProdConsConfig};

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let items: u64 = args.get_num("items", if quick { 50_000 } else { 1_000_000 });
    let ratios_arg = args.get("ratios", "1:1,2:1,1:2,4:1,1:4,8:1,1:8");
    let queues_arg = args.get("queues", "zmsq,mound,spraylist");

    let ratios: Vec<(usize, usize)> = ratios_arg
        .split(',')
        .map(|r| {
            let (p, c) = r.trim().split_once(':').expect("ratio like 2:1");
            (p.parse().unwrap(), c.parse().unwrap())
        })
        .collect();

    bench::csv_header(&[
        "queue",
        "producers",
        "consumers",
        "items",
        "wall_ms",
        "throughput_mops",
        "mean_handoff_ns",
        "extract_misses",
    ]);
    for &(p, c) in &ratios {
        for kind in queues_arg.split(',') {
            let kind = kind.trim();
            let q = make_queue::<u64>(kind, p + c);
            let cfg = ProdConsConfig {
                producers: p,
                consumers: c,
                total_items: items,
                keys: KeyDist::UniformBits { bits: 20 },
                seed: 0xF166,
            };
            let r = run_prodcons_spin(&q, &cfg);
            assert_eq!(r.received, items, "{kind} lost items");
            println!(
                "{},{p},{c},{items},{:.1},{:.3},{:.0},{}",
                q.name(),
                r.elapsed.as_secs_f64() * 1e3,
                items as f64 / r.elapsed.as_secs_f64() / 1e6,
                r.mean_handoff_ns,
                r.misses
            );
        }
    }
}
