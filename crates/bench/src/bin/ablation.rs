//! Ablation of ZMSQ's §3.2 insertion-quality mechanisms.
//!
//! DESIGN.md calls out two quality mechanisms layered on the mound:
//! forced non-max insertion and the parent-min swap. This harness
//! disables each in turn and reports what they buy, on three metrics:
//!
//! * **set density** — mean/σ of non-leaf set sizes after a mixed
//!   workload (§3.2's stability metric; the mound degenerates to ~1);
//! * **accuracy** — Table-1-style top-rank hit rate;
//! * **throughput** — 50/50 mixed ops/sec.
//!
//! Usage: ablation [--ops N] [--threads T] [--quick]

use bench::cli::Args;
use workloads::accuracy::measure_accuracy;
use workloads::keys::{distinct_keys, KeyDist};
use workloads::mixed::{run_mixed, MixedConfig};
use zmsq::{QualityOpts, Zmsq, ZmsqConfig};

fn variant(name: &str) -> (String, ZmsqConfig) {
    let base = ZmsqConfig::default().batch(32).target_len(32);
    let q = match name {
        "full" => QualityOpts::default(),
        "no-forced" => QualityOpts {
            forced_insert: false,
            ..Default::default()
        },
        "no-minswap" => QualityOpts {
            parent_min_swap: false,
            ..Default::default()
        },
        "neither" => QualityOpts {
            forced_insert: false,
            parent_min_swap: false,
        },
        _ => unreachable!(),
    };
    (name.to_string(), base.quality(q))
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 200_000 } else { 2_000_000 });
    let threads: usize = args.get_num("threads", 2);

    bench::csv_header(&[
        "variant",
        "set_mean",
        "set_std",
        "nonempty_nodes",
        "accuracy_10pct",
        "mixed_mops",
        "forced_inserts",
        "min_swaps",
    ]);
    for name in ["full", "no-forced", "no-minswap", "neither"] {
        let (label, cfg) = variant(name);

        // Density after a mixed workload (the §3.2 protocol, scaled).
        let mut q: Zmsq<u64> = Zmsq::with_config(cfg.clone());
        let mut keys = workloads::keys::KeyStream::new(
            KeyDist::Normal {
                mean: 5e8,
                std_dev: 5e7,
            },
            7,
        );
        let prefill = ops / 8;
        for _ in 0..prefill {
            let k = keys.next_key();
            q.insert(k, k);
        }
        for _ in 0..ops / 4 {
            let k = keys.next_key();
            q.insert(k, k);
            q.extract_max();
        }
        let density = q.set_size_stats();
        let stats = q.stats();

        // Accuracy (Table 1 protocol, 10% of 8K).
        let qa: Zmsq<u64> = Zmsq::with_config(cfg.clone());
        let acc_keys = distinct_keys(8192, 99);
        let acc = measure_accuracy(&qa, &acc_keys, 819, 1);

        // Mixed throughput.
        let qt: Zmsq<u64> = Zmsq::with_config(cfg);
        let r = run_mixed(
            &qt,
            &MixedConfig {
                total_ops: ops,
                threads,
                insert_pct: 50,
                prefill,
                keys: KeyDist::UniformBits { bits: 20 },
                seed: 3,
            },
        );

        println!(
            "{label},{:.2},{:.2},{},{:.4},{:.3},{},{}",
            density.mean,
            density.std_dev,
            density.nonempty_nodes,
            acc.hit_rate(),
            r.ops_per_sec() / 1e6,
            stats.forced_inserts,
            stats.min_swap_inserts,
        );
    }
}
