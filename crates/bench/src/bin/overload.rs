//! Overload-resilience bench: open-loop arrival above service rate
//! against a capacity-bounded queue, one phase per [`ShedPolicy`].
//!
//! Producers insert as fast as they can; consumers are throttled with a
//! fixed per-extract service spin, so offered load sits well above the
//! service rate and the queue saturates at its capacity bound. Each
//! phase reports what the policy did with the excess — parked producers
//! (`Block`), refused arrivals (`Reject`), or evicted low-priority
//! elements (`ShedLowest`) — plus the insert-side latency distribution
//! (for `Block` this includes park time: the backpressure the producer
//! actually feels) and the conservation identity
//! `admitted == extracted + evicted` checked after a full drain.
//!
//! A [`obs::Watchdog`] runs across every phase with an extraction
//! progress probe and an occupancy gauge; its snapshot (the
//! `watchdog.*` gauges) is merged into the `--metrics` JSON alongside
//! the per-policy `queue.shed.*` counters, `queue.pressure.*` gauges
//! and an occupancy time [`obs::Series`].
//!
//! With `--serve [addr]` (default `127.0.0.1:9898`) a zero-dep HTTP
//! listener exposes the phase currently running at `/metrics`
//! (Prometheus text), `/snapshot.json` and `/healthz`; the occupancy
//! sampler is additionally retained in fixed-memory 2s/1m/1h tiers so
//! scrapes see recent history. `--serve-hold-ms N` keeps the listener
//! up N ms after the last phase.
//!
//! ```text
//! overload [--producers N] [--consumers N] [--capacity N] [--ops N]
//!          [--service-ns N] [--policies block,reject,shed]
//!          [--quick] [--assert] [--metrics [path]]
//!          [--serve [addr]] [--serve-hold-ms N]
//! ```
//!
//! CSV columns: policy, producers, consumers, capacity, secs, arrivals,
//! admitted, extracted, rejected, evicted, shed_ratio, p50_insert_ns,
//! p99_insert_ns, max_occupancy.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::cli::Args;
use bench::metrics::MetricsOut;
use pq_traits::ConcurrentPriorityQueue;
use zmsq::{ShedPolicy, Zmsq, ZmsqConfig};

/// Spin for roughly `ns` nanoseconds of useful-work stand-in. Busy
/// waiting (not sleeping) so the service rate stays meaningful on
/// machines where short sleeps round up to a timer tick.
fn service_spin(ns: u64) {
    let t0 = Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

struct PhaseResult {
    policy: &'static str,
    secs: f64,
    arrivals: u64,
    admitted: u64,
    extracted: u64,
    rejected: u64,
    evicted: u64,
    shed_ratio: f64,
    p50_ns: u64,
    p99_ns: u64,
    max_occupancy: i64,
    snapshot: obs::Snapshot,
    series: Option<obs::Series>,
    watchdog: obs::Snapshot,
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    policy: ShedPolicy,
    policy_name: &'static str,
    producers: usize,
    consumers: usize,
    capacity: usize,
    ops_per_producer: u64,
    service_ns: u64,
    with_series: bool,
    serving: bool,
) -> PhaseResult {
    let q: Arc<Zmsq<u64>> = Arc::new(Zmsq::with_config(
        ZmsqConfig::default().capacity(capacity).shed_policy(policy),
    ));
    let insert_lat = Arc::new(obs::Histogram::new());
    if serving {
        // Live view of the phase in flight, namespaced exactly like the
        // final `--metrics` document (`overload.<policy>.<metric>`).
        let (qs, lat) = (Arc::clone(&q), Arc::clone(&insert_lat));
        let prefix = format!("overload.{policy_name}.");
        bench::metrics::set_live_source(move || {
            let mut s = obs::Snapshot::new();
            if let Some(qm) = ConcurrentPriorityQueue::metrics(&*qs) {
                s.merge_prefixed(&prefix, qm);
            }
            s.push_hist(&format!("{prefix}insert_latency_ns"), &lat);
            s
        });
    }
    let extracted = Arc::new(AtomicU64::new(0));
    let producing = Arc::new(AtomicBool::new(true));
    let max_occupancy = Arc::new(AtomicU64::new(0));

    // Stall watchdog over the phase: extraction is the progress counter,
    // "busy" means there is work (occupancy) or a parked producer — an
    // idle queue is not a stall. The occupancy gauge doubles as the
    // pressure readout (last + peak in the snapshot).
    let wd = {
        let (q_p, q_b, q_g) = (Arc::clone(&q), Arc::clone(&q), Arc::clone(&q));
        // 2 ms ticks so even a fast Reject phase (which never parks and
        // drops most arrivals in tens of ms) records a few ticks before
        // the phase drains; 2500 busy ticks = 5 s of stagnation.
        obs::Watchdog::builder(Duration::from_millis(2))
            .stall_after(2500)
            .progress(
                &format!("{policy_name}.extracts"),
                move || q_p.stats().extracts,
                move || q_b.occupancy() > 0 || q_b.producer_waiters() > 0,
            )
            .gauge(&format!("{policy_name}.occupancy"), move || {
                q_g.occupancy() as i64
            })
            .start()
    };
    // Retained (2s/1m/1h tiers) so `--serve` scrapes see occupancy
    // history; the full-resolution series still lands in `--metrics`.
    let sampler = with_series.then(|| {
        let probe_q = Arc::clone(&q);
        obs::Sampler::start_retained(
            &format!("overload.{policy_name}.occupancy"),
            Duration::from_millis(2),
            &["occupancy", "producer_waiters"],
            move || {
                vec![
                    probe_q.occupancy() as f64,
                    probe_q.producer_waiters() as f64,
                ]
            },
        )
    });

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers as u64 {
            let (q, lat, max_occ) = (
                Arc::clone(&q),
                Arc::clone(&insert_lat),
                Arc::clone(&max_occupancy),
            );
            s.spawn(move || {
                let mut x = (p + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..ops_per_producer {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let t = Instant::now();
                    q.insert(x % 1_000_000, x);
                    lat.record_duration(t.elapsed());
                    max_occ.fetch_max(q.occupancy() as u64, Ordering::Relaxed);
                }
            });
        }
        for _ in 0..consumers {
            let (q, extracted, producing) = (
                Arc::clone(&q),
                Arc::clone(&extracted),
                Arc::clone(&producing),
            );
            s.spawn(move || {
                loop {
                    match q.extract_max() {
                        Some(_) => {
                            extracted.fetch_add(1, Ordering::Relaxed);
                            service_spin(service_ns);
                        }
                        // Producers done and queue drained: phase over.
                        None if !producing.load(Ordering::Acquire) => break,
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
        // Flip the flag once every producer thread has returned. A scoped
        // helper thread would deadlock the scope join, so watch the
        // producer count from the consumers' termination flag instead:
        // spawn a monitor that joins nothing but observes the counters.
        let (q, producing) = (Arc::clone(&q), Arc::clone(&producing));
        let arrivals_target = ops_per_producer * producers as u64;
        s.spawn(move || loop {
            let st = q.stats();
            if st.inserts + st.shed_rejected >= arrivals_target {
                producing.store(false, Ordering::Release);
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        });
    });
    let secs = t0.elapsed().as_secs_f64();

    // Consumers exit on (observed-empty && !producing), which can race
    // a just-admitted element becoming visible. Occupancy is the
    // authoritative residue count: drain until it reads zero so the
    // conservation identity below is checked against a truly empty
    // queue.
    let mut extracted_n = extracted.load(Ordering::Relaxed);
    loop {
        match q.extract_max() {
            Some(_) => extracted_n += 1,
            None if q.occupancy() == 0 => break,
            None => std::thread::yield_now(),
        }
    }
    let st = q.stats();
    let arrivals = st.inserts + st.shed_rejected;
    let shed_ratio = if arrivals > 0 {
        (st.shed_rejected + st.shed_evicted) as f64 / arrivals as f64
    } else {
        0.0
    };
    let hist = insert_lat.snapshot();
    let mut snapshot = ConcurrentPriorityQueue::metrics(&*q).expect("zmsq has metrics");
    snapshot.push_hist("insert_latency_ns", &insert_lat);

    PhaseResult {
        policy: policy_name,
        secs,
        arrivals,
        admitted: st.inserts,
        extracted: extracted_n,
        rejected: st.shed_rejected,
        evicted: st.shed_evicted,
        shed_ratio,
        p50_ns: hist.p50,
        p99_ns: hist.p99,
        max_occupancy: max_occupancy.load(Ordering::Relaxed) as i64,
        snapshot,
        series: sampler.map(|(s, _retain)| s.stop()),
        watchdog: wd.stop(),
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let producers: usize = args.get_num("producers", 4);
    let consumers: usize = args.get_num("consumers", 1);
    let capacity: usize = args.get_num("capacity", if quick { 256 } else { 1024 });
    let ops: u64 = args.get_num("ops", if quick { 20_000 } else { 200_000 });
    // Per-extract service time: the dial that puts arrival above service.
    // 2 µs of service against unthrottled producers is a >2x overload on
    // anything that can run two threads.
    let service_ns: u64 = args.get_num("service-ns", 2_000);
    let do_assert = args.get_bool("assert");
    let metrics = MetricsOut::from_args(&args, "overload");
    let server = bench::metrics::serve_from_args(&args, "overload");
    let serving = server.is_some();

    let policy_list = args.get("policies", "block,reject,shed");
    let mut phases: Vec<(ShedPolicy, &'static str)> = Vec::new();
    for p in policy_list.split(',') {
        match p.trim() {
            "block" => phases.push((ShedPolicy::Block, "block")),
            "reject" => phases.push((ShedPolicy::Reject, "reject")),
            "shed" | "shed_lowest" => phases.push((ShedPolicy::ShedLowest, "shed_lowest")),
            other => eprintln!("ignoring unknown policy {other:?}"),
        }
    }

    bench::csv_header(&[
        "policy",
        "producers",
        "consumers",
        "capacity",
        "secs",
        "arrivals",
        "admitted",
        "extracted",
        "rejected",
        "evicted",
        "shed_ratio",
        "p50_insert_ns",
        "p99_insert_ns",
        "max_occupancy",
    ]);

    let mut failures: Vec<String> = Vec::new();
    let mut merged = obs::Snapshot::new();
    let mut all_series: Vec<obs::Series> = Vec::new();

    for (policy, name) in phases {
        let r = run_phase(
            policy,
            name,
            producers,
            consumers,
            capacity,
            ops,
            service_ns,
            metrics.is_some() || serving,
            serving,
        );
        println!(
            "{},{producers},{consumers},{capacity},{:.3},{},{},{},{},{},{:.4},{},{},{}",
            r.policy,
            r.secs,
            r.arrivals,
            r.admitted,
            r.extracted,
            r.rejected,
            r.evicted,
            r.shed_ratio,
            r.p50_ns,
            r.p99_ns,
            r.max_occupancy
        );

        // Conservation: everything admitted either came out or was
        // evicted by ShedLowest; the drain ran to empty before exit.
        if r.admitted != r.extracted + r.evicted {
            failures.push(format!(
                "{}: conservation broken: admitted {} != extracted {} + evicted {}",
                r.policy, r.admitted, r.extracted, r.evicted
            ));
        }
        if r.arrivals != ops * producers as u64 {
            failures.push(format!(
                "{}: arrival accounting broken: {} != {}",
                r.policy,
                r.arrivals,
                ops * producers as u64
            ));
        }
        if do_assert {
            match r.policy {
                // Block never sheds; overload shows up as producer parks.
                "block" => {
                    if r.rejected + r.evicted != 0 {
                        failures.push("block: shed something".into());
                    }
                }
                // The other policies must actually have shed under a 2x
                // overload with a bounded queue.
                _ => {
                    if r.rejected + r.evicted == 0 {
                        failures.push(format!("{}: overload never shed", r.policy));
                    }
                }
            }
            if r.max_occupancy > capacity as i64 {
                // Blocked-insert force-admit on close is the only path
                // above capacity, and close is never called here.
                failures.push(format!(
                    "{}: occupancy {} exceeded capacity {}",
                    r.policy, r.max_occupancy, capacity
                ));
            }
            if r.watchdog.counter("watchdog.ticks").unwrap_or(0) == 0 {
                failures.push(format!("{}: watchdog never ticked", r.policy));
            }
            if r.watchdog.counter("watchdog.stalls").unwrap_or(1) != 0 {
                failures.push(format!("{}: watchdog reported a stall", r.policy));
            }
        }

        // Namespace the per-phase queue snapshot so three phases coexist
        // in one document: `overload.<policy>.<metric>`.
        let prefix = format!("overload.{}.", r.policy);
        merged.merge_prefixed(&prefix, r.snapshot);
        merged.merge_prefixed(&prefix, r.watchdog);
        if let Some(s) = r.series {
            all_series.push(s);
        }
        // Perf-gate summary: offered-load drain rate per policy (how
        // fast the phase pushed its arrivals through admission), the
        // insert-side tails (warn-only `_ns` class in compare_bench),
        // and the estimated rank-error p99.
        merged.push_summary(
            &format!("{prefix}throughput_ops_per_s"),
            r.arrivals as f64 / r.secs,
        );
        merged.push_summary(&format!("{prefix}insert_p50_ns"), r.p50_ns as f64);
        merged.push_summary(&format!("{prefix}insert_p99_ns"), r.p99_ns as f64);
        bench::metrics::push_rank_summary(&mut merged, &prefix);
    }

    if let Some(out) = metrics {
        for s in all_series {
            merged.push_series(s);
        }
        out.write(merged, "overload", &bench::metrics::argv_line())
            .expect("write metrics JSON");
    }
    bench::metrics::export_trace(&args, "overload");

    if let Some(server) = server {
        let hold: u64 = args.get_num("serve-hold-ms", 0);
        if hold > 0 {
            eprintln!("serve: holding listener for {hold} ms after run");
            std::thread::sleep(Duration::from_millis(hold));
        }
        server.stop();
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ASSERTION FAILED: {f}");
        }
        std::process::exit(1);
    }
}
