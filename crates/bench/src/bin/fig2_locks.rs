//! Figure 2 — lock implementations (§4.1).
//!
//! "In Figure 2, we run 1M operations on a ZMSQ configured with
//! batch = 32 and targetLen = 32. In Figure 2a, all operations are
//! inserts, the queue is initially empty, and keys are chosen from a
//! normal distribution. In Figure 2b, there is an even mix of insert()
//! and extractMax() operations, and the queue is initialized with 1M
//! keys. We compare three locks: the C++ std::mutex, a test-and-set
//! (TAS) trylock, and a test-and-test-and-set (TATAS) trylock."
//!
//! Usage:
//!   fig2_locks [--mix insert|half] [--threads 1,2,4,...] [--ops N]
//!              [--quick] [--stats]

use bench::cli::Args;
use workloads::keys::KeyDist;
use workloads::mixed::{run_mixed, MixedConfig};
use zmsq::{LockStrategy, OsLock, RawTryLock, TasLock, TatasLock, Zmsq, ZmsqConfig};

fn run_one<L: RawTryLock + 'static>(
    strategy: LockStrategy,
    mix: &str,
    threads: usize,
    ops: u64,
    stats: bool,
) -> (f64, String) {
    let cfg = ZmsqConfig::default()
        .batch(32)
        .target_len(32)
        .lock_strategy(strategy);
    let q: Zmsq<u64, zmsq::ListSet<u64>, L> = Zmsq::with_config(cfg);
    let (insert_pct, prefill, keys) = match mix {
        "insert" => (
            100,
            0,
            KeyDist::Normal {
                mean: (1u64 << 19) as f64,
                std_dev: (1u64 << 16) as f64,
            },
        ),
        "half" => (
            50,
            ops,
            KeyDist::Normal {
                mean: (1u64 << 19) as f64,
                std_dev: (1u64 << 16) as f64,
            },
        ),
        other => panic!("unknown mix {other:?} (use insert|half)"),
    };
    let wcfg = MixedConfig {
        total_ops: ops,
        threads,
        insert_pct,
        prefill,
        keys,
        seed: 0xF162,
    };
    let r = run_mixed(&q, &wcfg);
    let extra = if stats {
        let s = q.stats();
        format!(
            "{:.4},{},{}",
            s.trylock_fails as f64 / (s.inserts + s.extracts).max(1) as f64,
            s.insert_retries,
            s.splits
        )
    } else {
        String::new()
    };
    (r.ops_per_sec() / 1e6, extra)
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 100_000 } else { 1_000_000 });
    let threads = args.get_list(
        "threads",
        if quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8, 16, 24]
        },
    );
    let mix = args.get("mix", "half");
    let stats = args.get_bool("stats");

    if stats {
        bench::csv_header(&[
            "mix",
            "lock",
            "threads",
            "mops_per_sec",
            "trylock_fail_ratio",
            "insert_retries",
            "splits",
        ]);
    } else {
        bench::csv_header(&["mix", "lock", "threads", "mops_per_sec"]);
    }
    for &t in &threads {
        for lock in ["mutex", "tas", "tatas"] {
            let (mops, extra) = match lock {
                // The std::mutex arm uses blocking acquisition — queuing
                // on the lock is its discipline.
                "mutex" => run_one::<OsLock>(LockStrategy::Blocking, &mix, t, ops, stats),
                "tas" => run_one::<TasLock>(LockStrategy::TryRestart, &mix, t, ops, stats),
                "tatas" => run_one::<TatasLock>(LockStrategy::TryRestart, &mix, t, ops, stats),
                _ => unreachable!(),
            };
            if stats {
                println!("{mix},{lock},{t},{mops:.3},{extra}");
            } else {
                println!("{mix},{lock},{t},{mops:.3}");
            }
        }
    }
}
