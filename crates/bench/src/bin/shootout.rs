//! Rank-error-vs-throughput Pareto shootout (extension experiment).
//!
//! Sweeps the tunable relaxed queues (`zmsq-sharded`,
//! `zmsq-sharded-adaptive`, `multiqueue`) across stickiness run lengths
//! and operation-buffer depths — the two "Engineering MultiQueues"
//! optimizations — and reports, per configuration, throughput (from the
//! harness clock) and rank-error p99 (from the live `quality.est_rank`
//! estimator each queue carries). The cheap rank axis is cross-checked
//! once per run against the exact `RankOracle` on one mid-sweep
//! configuration, so the sweep itself never pays oracle costs.
//!
//! The final CSV marks each configuration on or off the Pareto front
//! (no other configuration has both higher throughput and lower rank
//! p99). With `--metrics [path]` the per-config summary keys
//! (`<base>.c<c>.b<k>/throughput_ops_per_s`, `…/est_rank_p99`) feed
//! `scripts/compare_bench.py` against `results/BENCH_shootout.json`.
//!
//! With `--assert` the run additionally enforces:
//! * conservation per configuration (prefill + inserts == extracted +
//!   drained, after a `flush()`),
//! * the estimator-vs-oracle bound on the cross-checked configuration:
//!   the *shard-scaled* `est_rank` p99 (per-shard estimate × shard
//!   count, see DESIGN.md "Stickiness & operation buffers") within 2x
//!   of the oracle's global p99, ± small-count slack — the same bound
//!   `workloads::quality::tuned_estimator_vs_oracle` validates in
//!   tests, at the same fixed reference scale.
//!
//! Usage: shootout [--ops N] [--prefill N] [--threads T]
//!                 [--bases a,b,c] [--stickiness 0,8,64]
//!                 [--buffers 0,16,64] [--quick] [--assert]
//!                 [--metrics \[path\]]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench::cli::Args;
use bench::metrics::{argv_line, MetricsOut};
use bench::queues::{make_tuned_queue, SHOOTOUT_BASES};
use pq_traits::ConcurrentPriorityQueue;
use workloads::oracle::RankOracle;

/// One swept configuration's outcome.
struct Outcome {
    label: String,
    throughput: f64,
    rank_p99: Option<f64>,
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',')
        .map(|t| t.trim().parse().expect("numeric sweep list"))
        .collect()
}

/// Mixed insert/extract workload over `threads`; returns (throughput,
/// inserted, extracted) — extraction successes only.
fn run_workload(
    q: &Arc<dyn ConcurrentPriorityQueue<u64> + Send + Sync>,
    ops: u64,
    threads: usize,
    oracle: Option<&RankOracle>,
) -> (f64, u64, u64) {
    let inserted = AtomicU64::new(0);
    let extracted = AtomicU64::new(0);
    let per_thread = ops / threads as u64;
    // Only this many operations actually execute (integer division
    // truncates); using the raw `ops` would inflate the reported
    // throughput whenever `ops % threads != 0`.
    let total_ops = per_thread * threads as u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let (q, inserted, extracted) = (q, &inserted, &extracted);
            s.spawn(move || {
                let mut x = 0x9E37_79B9 + t;
                let (mut ins, mut ext) = (0u64, 0u64);
                for i in 0..per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if i % 2 == 0 {
                        let key = x % (1 << 20);
                        if let Some(o) = oracle {
                            o.note_insert(key);
                        }
                        q.insert(key, x);
                        ins += 1;
                    } else {
                        let got = q.extract_max();
                        if let Some((k, _)) = got {
                            if let Some(o) = oracle {
                                o.note_extract(k);
                            }
                            ext += 1;
                        }
                    }
                }
                inserted.fetch_add(ins, Ordering::Relaxed);
                extracted.fetch_add(ext, Ordering::Relaxed);
            });
        }
    });
    let wall = t0.elapsed();
    (
        total_ops as f64 / wall.as_secs_f64(),
        inserted.into_inner(),
        extracted.into_inner(),
    )
}

/// Drain the queue to empty (after `flush()`), returning the count.
fn drain(q: &dyn ConcurrentPriorityQueue<u64>, oracle: Option<&RankOracle>) -> u64 {
    q.flush();
    let mut n = 0;
    while let Some((k, _)) = q.extract_max() {
        if let Some(o) = oracle {
            o.note_extract(k);
        }
        n += 1;
    }
    n
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 60_000 } else { 400_000 });
    let prefill: u64 = args.get_num("prefill", ops / 4);
    let threads: usize = args.get_num("threads", 4);
    let do_assert = args.get_bool("assert");
    let bases_arg = args.get("bases", &SHOOTOUT_BASES.join(","));
    let sticks = parse_list(&args.get("stickiness", "0,8,64"));
    let buffers = parse_list(&args.get("buffers", "0,16,64"));
    let metrics = MetricsOut::from_args(&args, "shootout");
    let mut all = obs::Snapshot::new();

    bench::csv_header(&[
        "base",
        "stickiness",
        "buffer",
        "throughput_ops_per_s",
        "est_rank_p99",
        "pareto",
    ]);

    let mut outcomes: Vec<Outcome> = Vec::new();
    for base in bases_arg.split(',').map(str::trim) {
        for &c in &sticks {
            for &k in &buffers {
                let label = format!("{base}.c{c}.b{k}");
                let q: Arc<dyn ConcurrentPriorityQueue<u64> + Send + Sync> =
                    Arc::from(make_tuned_queue::<u64>(base, threads, c, k, k));
                for i in 0..prefill {
                    q.insert((i * 2654435761) % (1 << 20), i);
                }
                let (tput, inserted, extracted) = run_workload(&q, ops, threads, None);
                let drained = drain(q.as_ref(), None);
                if do_assert {
                    assert_eq!(
                        prefill + inserted,
                        extracted + drained,
                        "{label}: conservation violated"
                    );
                }
                // Rank axis: p99 of the live estimator histogram,
                // accumulated over workload + drain.
                let rank_p99 = q.metrics().and_then(|m| {
                    m.hist("quality.est_rank")
                        .filter(|h| h.count > 0)
                        .map(|h| h.quantile(0.99) as f64)
                });
                if metrics.is_some() {
                    if let Some(qm) = q.metrics() {
                        all.merge_prefixed(&format!("{label}/"), qm);
                    }
                    all.push_summary(&format!("{label}/throughput_ops_per_s"), tput);
                    bench::metrics::push_rank_summary(&mut all, &format!("{label}/"));
                }
                eprintln!(
                    "ran {label}: {tput:.0} ops/s, rank p99 {}",
                    rank_p99.map_or_else(|| "-".into(), |r| format!("{r:.0}"))
                );
                outcomes.push(Outcome {
                    label,
                    throughput: tput,
                    rank_p99,
                });
            }
        }
    }

    // Pareto front: a configuration is dominated when some other one has
    // strictly better throughput AND no worse rank p99 (missing rank =
    // worst). Ties survive.
    let rank_of = |o: &Outcome| o.rank_p99.unwrap_or(f64::MAX);
    let on_front: Vec<bool> = outcomes
        .iter()
        .map(|o| {
            !outcomes.iter().any(|p| {
                p.throughput > o.throughput && rank_of(p) <= rank_of(o)
                    || p.throughput >= o.throughput && rank_of(p) < rank_of(o)
            })
        })
        .collect();
    for (o, &front) in outcomes.iter().zip(&on_front) {
        let (base, rest) = o.label.split_once(".c").expect("label shape");
        let (c, b) = rest.split_once(".b").expect("label shape");
        println!(
            "{base},{c},{b},{:.0},{},{}",
            o.throughput,
            o.rank_p99.map_or_else(|| "-".into(), |r| format!("{r:.0}")),
            if front { "yes" } else { "no" }
        );
    }
    eprintln!(
        "pareto front ({} of {} configs):",
        { on_front.iter().filter(|&&f| f).count() },
        outcomes.len()
    );
    for (o, &front) in outcomes.iter().zip(&on_front) {
        if front {
            eprintln!(
                "  {}  {:.0} ops/s @ rank p99 {}",
                o.label,
                o.throughput,
                o.rank_p99.map_or_else(|| "-".into(), |r| format!("{r:.0}"))
            );
        }
    }

    // Oracle cross-check: one mid-sweep tuned ShardedZmsq configuration,
    // single-pass, exact shadow-multiset ranks vs the live estimator.
    let (oc, ok) = (
        sticks.get(sticks.len() / 2).copied().unwrap_or(8),
        buffers.get(buffers.len() / 2).copied().unwrap_or(16),
    );
    let oracle = RankOracle::new();
    let q: Arc<dyn ConcurrentPriorityQueue<u64> + Send + Sync> =
        Arc::from(make_tuned_queue::<u64>("zmsq-sharded", threads, oc, ok, ok));
    // Fixed reference scale and a single worker, independent of the
    // sweep's `--ops`: the cross-check validates the *estimator*
    // against the exact oracle, and the 2x envelope is not
    // scale-invariant — per-shard sampling lags the global hand-out
    // rank further as the population (and with it the tuned
    // configuration's absolute relaxation) grows, and scheduler noise
    // on an oversubscribed box inflates the oracle side. The sweep
    // above measures the multithreaded behaviour at the requested
    // scale; this deterministic pass measures telemetry fidelity at a
    // calibrated point.
    let (xc_ops, xc_prefill) = (60_000u64, 15_000u64);
    for i in 0..xc_prefill {
        let key = (i * 2654435761) % (1 << 20);
        oracle.note_insert(key);
        q.insert(key, i);
    }
    let _ = run_workload(&q, xc_ops, 1, Some(&oracle));
    let _ = drain(q.as_ref(), Some(&oracle));
    let exact_p99 = oracle.rank_quantile(0.99).unwrap_or(0) as f64;
    let est_p99 = q.metrics().and_then(|m| {
        m.hist("quality.est_rank")
            .filter(|h| h.count > 0)
            .map(|h| h.quantile(0.99) as f64)
    });
    // `quality.est_rank` is a *per-shard* estimate taken where elements
    // cross the shard's publication boundary; the oracle measures the
    // *global* hand-out rank. With elements spread roughly evenly, the
    // global rank of a shard-rank-r element is ≈ r × shards, so the 2x
    // envelope (same shape as `workloads::quality`) applies to the
    // scaled estimate.
    let xc_shards = (threads.max(2) / 2) as f64; // mirrors make_tuned_queue
    eprintln!(
        "oracle cross-check (zmsq-sharded.c{oc}.b{ok}): exact p99 {exact_p99:.0}, estimator p99 {} (x{xc_shards:.0} shards)",
        est_p99.map_or_else(|| "-".into(), |e| format!("{e:.0}"))
    );
    if do_assert {
        let est = est_p99.expect("estimator produced no samples for the cross-check");
        let scaled = est * xc_shards;
        assert!(
            scaled <= exact_p99 * 2.0 + 64.0 && scaled >= exact_p99 / 2.0 - 64.0,
            "estimator p99 {est} x {xc_shards} shards = {scaled} outside 2x envelope of oracle p99 {exact_p99}"
        );
        eprintln!("assert: conservation and oracle envelope held");
    }

    if let Some(out) = metrics {
        all.push_meta("threads", &threads.to_string());
        all.push_meta("ops_per_config", &ops.to_string());
        all.push_meta("prefill", &prefill.to_string());
        all.push_meta("oracle.config", &format!("zmsq-sharded.c{oc}.b{ok}"));
        all.push_meta("oracle.exact_rank_p99", &format!("{exact_p99:.0}"));
        if let Some(est) = est_p99 {
            all.push_meta("oracle.est_rank_p99", &format!("{est:.0}"));
        }
        if let Err(e) = out.write(all, "shootout", &argv_line()) {
            eprintln!("metrics: write failed: {e}");
            std::process::exit(1);
        }
    }
}
