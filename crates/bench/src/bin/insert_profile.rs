//! Insert-path cost attribution (diagnostic used in EXPERIMENTS.md):
//! throughput of 500K inserts with each §3.2 mechanism toggled, plus the
//! DequeSet variant that makes the min-swap cheap.

fn main() {
    use zmsq::{DequeSet, QualityOpts, TatasLock, Zmsq, ZmsqConfig};
    for (label, cfg) in [
        ("48-72 full", ZmsqConfig::default().batch(48).target_len(72)),
        ("16-24 full", ZmsqConfig::default().batch(16).target_len(24)),
        (
            "48-72 no-minswap",
            ZmsqConfig::default()
                .batch(48)
                .target_len(72)
                .quality(QualityOpts {
                    parent_min_swap: false,
                    ..Default::default()
                }),
        ),
        (
            "48-72 neither",
            ZmsqConfig::default()
                .batch(48)
                .target_len(72)
                .quality(QualityOpts {
                    parent_min_swap: false,
                    forced_insert: false,
                }),
        ),
    ] {
        let q: Zmsq<u64> = Zmsq::with_config(cfg);
        run(label, &q);
    }
    let q: Zmsq<u64, DequeSet<u64>, TatasLock> =
        Zmsq::with_config(ZmsqConfig::default().batch(48).target_len(72));
    run("48-72 deque full", &q);
}

fn run<S, L>(label: &str, q: &zmsq::Zmsq<u64, S, L>)
where
    S: zmsq::NodeSet<u64> + 'static,
    L: zmsq::RawTryLock + 'static,
{
    use std::time::Instant;
    {
        let mut x = 0xABCDEFu64;
        let t0 = Instant::now();
        for _ in 0..500_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            q.insert(x & 0xFFFFF, x);
        }
        let el = t0.elapsed();
        let s = q.stats();
        println!(
            "{label}: {:.3} Mops | min_swaps={} forced={} splits={} retries={}",
            0.5 / el.as_secs_f64(),
            s.min_swap_inserts,
            s.forced_inserts,
            s.splits,
            s.insert_retries
        );
    }
}
