//! Single-threaded overhead microbench for the `obs` substrate.
//!
//! The observability layer's contract is that always-on recording is
//! nearly free: one striped-counter `incr` plus one log-linear
//! histogram `record` per queue operation must cost ≤ 5% of the
//! operation itself (ISSUE acceptance criterion). This harness measures
//! a fixed single-threaded insert/extract workload on a default ZMSQ
//! twice — bare, and with the extra counter+histogram recording — and
//! reports the marginal overhead. Medians over interleaved trials damp
//! frequency drift.
//!
//! Usage: obs_overhead [--ops N] [--trials T] [--budget PCT] [--assert]
//!                     [--quick]
//!
//! `--assert` exits nonzero when the marginal overhead exceeds the
//! budget (default 5%); without it the run is report-only.

use std::time::Instant;

use bench::cli::Args;
use zmsq::{Zmsq, ZmsqConfig};

static COUNTER: obs::Counter = obs::Counter::new();
static HIST: obs::Histogram = obs::Histogram::new();

/// Run `ops` insert/extract pairs, returning ns per pair.
fn run_trial(q: &Zmsq<u64>, ops: u64, instrumented: bool) -> f64 {
    let t = Instant::now();
    for i in 0..ops {
        let k = (i.wrapping_mul(2654435761)) % (1 << 20);
        q.insert(k, i);
        std::hint::black_box(q.extract_max());
        if instrumented {
            COUNTER.incr();
            HIST.record(k);
        }
    }
    t.elapsed().as_nanos() as f64 / ops as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 150_000 } else { 1_000_000 });
    let trials: usize = args.get_num("trials", if quick { 5 } else { 9 });
    let budget: f64 = args.get_num("budget", 5.0);

    let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default());
    for i in 0..ops / 4 {
        q.insert((i * 2654435761) % (1 << 20), i);
    }
    // Warm both paths (page in the statics, settle the pool).
    run_trial(&q, ops / 10, false);
    run_trial(&q, ops / 10, true);

    let (mut bare, mut inst) = (Vec::new(), Vec::new());
    for _ in 0..trials {
        bare.push(run_trial(&q, ops, false));
        inst.push(run_trial(&q, ops, true));
    }
    let (bare, inst) = (median(&mut bare), median(&mut inst));
    let overhead_pct = (inst - bare) / bare * 100.0;

    bench::csv_header(&["variant", "ns_per_pair", "overhead_pct"]);
    println!("bare,{bare:.1},0.0");
    println!("counter+hist,{inst:.1},{overhead_pct:.2}");
    std::hint::black_box((COUNTER.get(), HIST.snapshot().count));

    if args.get_bool("assert") && overhead_pct > budget {
        eprintln!(
            "obs overhead {overhead_pct:.2}% exceeds the {budget:.1}% budget \
             (bare {bare:.1} ns/pair, instrumented {inst:.1} ns/pair)"
        );
        std::process::exit(1);
    }
}
