//! Single-threaded overhead microbench for the `obs` substrate.
//!
//! The observability layer's contract is that always-on recording is
//! nearly free. This harness measures a fixed single-threaded
//! insert/extract workload on a default ZMSQ in four arms —
//!
//! * `bare` — estimator and sojourn tracker detached
//!   (`no_rank_estimator().no_sojourn()`), no extra recording: the
//!   baseline.
//! * `counter+hist` — bare plus one striped-counter `incr` and one
//!   log-linear histogram `record` per pair (the original ≤5% budget).
//! * `estimator` — the default-on `RankEstimator` (shift 6: ~1/64 of
//!   inserts sampled into the shadow reservoir, every extract checked
//!   with one multiply+branch). Must also fit the ≤5% budget.
//! * `sojourn` — the default-on `SojournTracker` (shift 6: ~1/64 of
//!   keys stamped at insert, every extract/evict checked with one
//!   multiply+shift before the cold matching path). Same ≤5% budget.
//!
//! — and reports each arm's marginal overhead over `bare`. Medians over
//! interleaved trials damp frequency drift.
//!
//! The span layer has a stronger contract: compiled out entirely
//! without `--features obs-trace`. On such builds this bench asserts
//! `obs::SpanGuard` is zero-sized and has no drop glue, so every
//! `span!` call site in the queue hot paths is provably free.
//!
//! Usage: obs_overhead [--ops N] [--trials T] [--budget PCT] [--assert]
//!                     [--quick]
//!
//! `--assert` exits nonzero when any arm's marginal overhead exceeds
//! the budget (default 5%); without it the run is report-only.

use std::time::Instant;

use bench::cli::Args;
use zmsq::{Zmsq, ZmsqConfig};

static COUNTER: obs::Counter = obs::Counter::new();
static HIST: obs::Histogram = obs::Histogram::new();

/// Run `ops` insert/extract pairs, returning ns per pair.
fn run_trial(q: &Zmsq<u64>, ops: u64, instrumented: bool) -> f64 {
    let t = Instant::now();
    for i in 0..ops {
        let k = (i.wrapping_mul(2654435761)) % (1 << 20);
        q.insert(k, i);
        std::hint::black_box(q.extract_max());
        if instrumented {
            COUNTER.incr();
            HIST.record(k);
        }
    }
    t.elapsed().as_nanos() as f64 / ops as f64
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn prefill(q: &Zmsq<u64>, n: u64) {
    for i in 0..n {
        q.insert((i * 2654435761) % (1 << 20), i);
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 150_000 } else { 1_000_000 });
    let trials: usize = args.get_num("trials", if quick { 5 } else { 9 });
    let budget: f64 = args.get_num("budget", 5.0);

    // The span layer must be a provable no-op when compiled out: a
    // zero-sized guard with no drop glue means the optimizer erases
    // every `span!` scope in the queue hot paths.
    if !obs::TRACE_ENABLED {
        assert_eq!(
            std::mem::size_of::<obs::SpanGuard>(),
            0,
            "SpanGuard must be zero-sized without obs-trace"
        );
        assert!(
            !std::mem::needs_drop::<obs::SpanGuard>(),
            "SpanGuard must have no drop glue without obs-trace"
        );
    } else {
        eprintln!("note: obs-trace build — span recording is compiled in and counted in `bare`");
    }

    let q_bare: Zmsq<u64> =
        Zmsq::with_config(ZmsqConfig::default().no_rank_estimator().no_sojourn());
    let q_est: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().no_sojourn());
    let q_soj: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().no_rank_estimator());
    assert!(
        q_est.rank_estimator().is_some(),
        "default config must carry the rank estimator"
    );
    assert!(
        q_soj.sojourn_tracker().is_some(),
        "default config must carry the sojourn tracker"
    );
    prefill(&q_bare, ops / 4);
    prefill(&q_est, ops / 4);
    prefill(&q_soj, ops / 4);
    // Warm every path (page in the statics, settle the pools).
    run_trial(&q_bare, ops / 10, false);
    run_trial(&q_bare, ops / 10, true);
    run_trial(&q_est, ops / 10, false);
    run_trial(&q_soj, ops / 10, false);

    let (mut bare, mut inst, mut est, mut soj) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for _ in 0..trials {
        bare.push(run_trial(&q_bare, ops, false));
        inst.push(run_trial(&q_bare, ops, true));
        est.push(run_trial(&q_est, ops, false));
        soj.push(run_trial(&q_soj, ops, false));
    }
    let (bare, inst, est, soj) = (
        median(&mut bare),
        median(&mut inst),
        median(&mut est),
        median(&mut soj),
    );
    let inst_pct = (inst - bare) / bare * 100.0;
    let est_pct = (est - bare) / bare * 100.0;
    let soj_pct = (soj - bare) / bare * 100.0;

    // The estimator arm must actually have sampled: at shift 6 over
    // ~1M+ inserts the expected sample count is in the tens of
    // thousands, so zero means the hooks are disconnected.
    let (sampled_inserts, _, _, sampled_extracts, ..) = q_est.rank_estimator().unwrap().counters();
    assert!(
        sampled_inserts > 0 && sampled_extracts > 0,
        "estimator arm never sampled (inserts {sampled_inserts}, extracts {sampled_extracts})"
    );
    // Same for the sojourn arm: zero stamps or matches means the
    // insert/extract hooks are disconnected, not that stamping is fast.
    let (stamped, matched, ..) = q_soj.sojourn_tracker().unwrap().counters();
    assert!(
        stamped > 0 && matched > 0,
        "sojourn arm never stamped (stamped {stamped}, matched {matched})"
    );

    bench::csv_header(&["variant", "ns_per_pair", "overhead_pct"]);
    println!("bare,{bare:.1},0.0");
    println!("counter+hist,{inst:.1},{inst_pct:.2}");
    println!("estimator,{est:.1},{est_pct:.2}");
    println!("sojourn,{soj:.1},{soj_pct:.2}");
    std::hint::black_box((COUNTER.get(), HIST.snapshot().count));

    if args.get_bool("assert") {
        let mut failed = false;
        for (variant, pct, ns) in [
            ("counter+hist", inst_pct, inst),
            ("estimator", est_pct, est),
            ("sojourn", soj_pct, soj),
        ] {
            if pct > budget {
                eprintln!(
                    "{variant} overhead {pct:.2}% exceeds the {budget:.1}% budget \
                     (bare {bare:.1} ns/pair, {variant} {ns:.1} ns/pair)"
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
