//! Diagnostic: landing-rank distribution of the SprayList's spray walk
//! across thread-count settings (used to calibrate the spray constants
//! against Table 1 — see EXPERIMENTS.md).

fn main() {
    use baselines::SprayList;
    use pq_traits::ConcurrentPriorityQueue;
    for t in [2usize, 8, 32, 64] {
        let q: SprayList<u64> = SprayList::new(t);
        for i in 0..1024u64 {
            q.insert(i, i);
        }
        // Sample landing ranks without depletion bias: extract 1, reinsert.
        let mut ranks = Vec::new();
        for _ in 0..2000 {
            if let Some((k, _)) = q.extract_max() {
                ranks.push(1024 - k); // rank 1 = max
                q.insert(k, k);
            }
        }
        ranks.sort_unstable();
        let mean: u64 = ranks.iter().sum::<u64>() / ranks.len() as u64;
        let p50 = ranks[ranks.len() / 2];
        let p90 = ranks[ranks.len() * 9 / 10];
        let max = *ranks.last().unwrap();
        println!(
            "t={t:>3}: samples={} mean_rank={mean} p50={p50} p90={p90} max={max}",
            ranks.len()
        );
    }
}
