//! Per-operation latency distributions (extension experiment).
//!
//! The paper reports throughput and mean handoff latency; a production
//! release also needs tails. This harness records every `insert` and
//! `extract_max` latency into a log-bucketed histogram, per queue, under
//! a mixed workload with a prefilled queue, and prints p50/p99/p99.9.
//!
//! With `--metrics [path]` it additionally records the same latencies
//! into `obs` log-linear histograms, samples each queue's `len_hint`
//! into a time series, and writes one merged
//! `results/ops_latency.metrics.json` covering per-queue histograms,
//! queue-internal counters (`ConcurrentPriorityQueue::metrics`), and
//! the process-wide sync/SMR substrate counters. The document's
//! `summary` block carries the perf-gate keys
//! (`<kind>/throughput_ops_per_s`, `<kind>/insert_p50_ns`, …,
//! `<kind>/est_rank_p99`) that `scripts/compare_bench.py` tracks
//! against `results/BENCH_ops_latency.json`.
//!
//! With `--trace [path]` (and a build carrying `--features obs-trace`)
//! the flight-recorder rings are exported as Chrome `trace_event` JSON
//! for chrome://tracing / Perfetto.
//!
//! With `--serve [addr]` (default `127.0.0.1:9898`; `:0` for an
//! ephemeral port, printed to stderr) a zero-dep HTTP listener exposes
//! the live run at `/metrics` (Prometheus text), `/snapshot.json` and
//! `/healthz` — point `zmsq-top` or `curl` at it while the bench runs.
//! `--serve-hold-ms N` keeps the listener up N ms after the last queue
//! finishes so slow scrapers (CI) still see the final state.
//!
//! With `--assert-alloc-free` the run additionally snapshots each
//! slab-backed kind's `alloc.slab_grows` counter after prefill (the
//! warmup) and fails the process if the measured phase grew the slab —
//! and, for the `zmsq-slab-bounded` arm, if the pre-published arena
//! grew *at all*. This is the repo's proof that the bounded variant's
//! steady state performs zero allocator calls; the per-kind
//! `slab_grows_steady` summary key records the same delta for the
//! perf-gate trend.
//!
//! Usage: ops_latency [--ops N] [--prefill N] [--threads T]
//!                    [--queues a,b,c] [--quick] [--assert-alloc-free]
//!                    [--metrics \[path\]] [--trace \[path\]]
//!                    [--serve \[addr\]] [--serve-hold-ms N]

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::cli::Args;
use bench::metrics::{argv_line, MetricsOut};
use bench::queues::make_queue;
use pq_traits::ConcurrentPriorityQueue;
use workloads::latency::LatencyHistogram;

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 200_000 } else { 1_000_000 });
    let prefill: u64 = args.get_num("prefill", ops / 4);
    let threads: usize = args.get_num("threads", 2);
    let queues_arg = args.get(
        "queues",
        "zmsq,zmsq-array,zmsq-slab,zmsq-slab-bounded,zmsq-strict,mound,spraylist,multiqueue,\
         coarse-heap",
    );
    let assert_alloc_free = args.get_bool("assert-alloc-free");
    let mut alloc_failures: Vec<String> = Vec::new();
    let metrics = MetricsOut::from_args(&args, "ops_latency");
    let server = bench::metrics::serve_from_args(&args, "ops_latency");
    let serving = server.is_some();
    let observing = metrics.is_some() || serving;
    let mut all = obs::Snapshot::new();

    bench::csv_header(&[
        "queue", "op", "count", "mean_ns", "p50_ns", "p99_ns", "p999_ns", "max_ns",
    ]);
    for kind in queues_arg.split(',') {
        let kind = kind.trim();
        let q: Arc<dyn ConcurrentPriorityQueue<u64> + Send + Sync> =
            Arc::from(make_queue::<u64>(kind, threads));
        let ins = LatencyHistogram::new();
        let ext = LatencyHistogram::new();
        let obs_ins = Arc::new(obs::Histogram::new());
        let obs_ext = Arc::new(obs::Histogram::new());
        let record_obs = observing;

        for i in 0..prefill {
            q.insert((i * 2654435761) % (1 << 20), i);
        }
        // Warmup boundary for the alloc-free proof: growth after this
        // point means the hot path touched the allocator.
        let slab_grows = |q: &dyn ConcurrentPriorityQueue<u64>| {
            q.metrics().and_then(|m| m.counter("alloc.slab_grows"))
        };
        let grows_warm = slab_grows(&*q);
        let sampler = observing.then(|| {
            let qs = Arc::clone(&q);
            obs::Sampler::start(
                &format!("{kind}/depth"),
                Duration::from_millis(5),
                &["len_hint"],
                move || vec![qs.len_hint() as f64],
            )
        });
        // Retained relaxation-quality series: p99 of the queue's live
        // `quality.est_rank` histogram, held in the fixed-memory
        // 2s/1m/1h tiers so `/metrics` scrapes see recent history.
        let rank_sampler = observing.then(|| {
            let qs = Arc::clone(&q);
            obs::Sampler::start_retained(
                &format!("{kind}/quality.est_rank"),
                Duration::from_millis(20),
                &["p99"],
                move || {
                    vec![qs
                        .metrics()
                        .and_then(|m| {
                            m.hist("quality.est_rank")
                                .filter(|h| h.count > 0)
                                .map(|h| h.quantile(0.99) as f64)
                        })
                        .unwrap_or(0.0)]
                },
            )
        });
        if serving {
            // Live view of the queue currently under test: its internal
            // metrics (incl. `quality.est_rank` and `queue.sojourn_ns`)
            // plus the in-flight per-op latency histograms, namespaced
            // exactly like the final `--metrics` document.
            let (qs, ins_h, ext_h) = (Arc::clone(&q), Arc::clone(&obs_ins), Arc::clone(&obs_ext));
            let prefix = format!("{kind}/");
            bench::metrics::set_live_source(move || {
                let mut s = obs::Snapshot::new();
                if let Some(qm) = qs.metrics() {
                    s.merge_prefixed(&prefix, qm);
                }
                s.push_hist(&format!("{prefix}insert_ns"), &ins_h);
                s.push_hist(&format!("{prefix}extract_ns"), &ext_h);
                s
            });
        }
        let per_thread = ops / threads as u64;
        let t_wall = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let (q, ins, ext) = (&q, &ins, &ext);
                let (obs_ins, obs_ext) = (&obs_ins, &obs_ext);
                s.spawn(move || {
                    let mut x = 0x9E37 + t;
                    for i in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if i % 2 == 0 {
                            let t0 = Instant::now();
                            q.insert(x % (1 << 20), x);
                            let dt = t0.elapsed();
                            ins.record(dt);
                            if record_obs {
                                obs_ins.record_duration(dt);
                            }
                        } else {
                            let t0 = Instant::now();
                            let got = q.extract_max();
                            let dt = t0.elapsed();
                            ext.record(dt);
                            if record_obs {
                                obs_ext.record_duration(dt);
                            }
                            std::hint::black_box(got);
                        }
                    }
                });
            }
        });
        let wall = t_wall.elapsed();

        let is_slab = kind.contains("slab");
        let grows_steady = match (grows_warm, slab_grows(&*q)) {
            (Some(w), Some(e)) => Some(e.saturating_sub(w)),
            _ => None,
        };
        if assert_alloc_free && is_slab {
            match grows_steady {
                Some(0) => {
                    if kind == "zmsq-slab-bounded" && grows_warm != Some(0) {
                        alloc_failures.push(format!(
                            "{kind}: pre-published arena grew {} time(s) during warmup",
                            grows_warm.unwrap_or(0)
                        ));
                    }
                }
                Some(n) => alloc_failures.push(format!(
                    "{kind}: slab grew {n} time(s) after warmup (hot path hit the allocator)"
                )),
                None => {
                    alloc_failures.push(format!("{kind}: no alloc.slab_grows counter in metrics()"))
                }
            }
        }

        let name = q.name();
        for (op, h) in [("insert", &ins), ("extract", &ext)] {
            println!(
                "{name},{op},{},{:.0},{},{},{},{}",
                h.count(),
                h.mean_ns(),
                h.percentile_ns(0.50),
                h.percentile_ns(0.99),
                h.percentile_ns(0.999),
                h.max_ns()
            );
        }
        // Stop the samplers even when only serving (no `--metrics`):
        // their threads capture the queue and must not outlive the kind.
        let depth_series = sampler.map(|s| s.stop());
        let rank_series = rank_sampler.map(|(s, _retain)| s.stop());
        if metrics.is_some() {
            all.push_hist(&format!("{kind}/insert_ns"), &obs_ins);
            all.push_hist(&format!("{kind}/extract_ns"), &obs_ext);
            if let Some(qm) = q.metrics() {
                all.merge_prefixed(&format!("{kind}/"), qm);
            }
            if let Some(s) = depth_series {
                all.push_series(s);
            }
            if let Some(s) = rank_series {
                all.push_series(s);
            }
            // Perf-gate summary: stable per-kind keys compare_bench.py
            // reads across runs.
            let tput = ops as f64 / wall.as_secs_f64();
            all.push_summary(&format!("{kind}/throughput_ops_per_s"), tput);
            for (op, h) in [("insert", &ins), ("extract", &ext)] {
                all.push_summary(&format!("{kind}/{op}_p50_ns"), h.percentile_ns(0.50) as f64);
                all.push_summary(&format!("{kind}/{op}_p99_ns"), h.percentile_ns(0.99) as f64);
            }
            if let Some(n) = grows_steady.filter(|_| is_slab) {
                all.push_summary(&format!("{kind}/slab_grows_steady"), n as f64);
            }
            bench::metrics::push_rank_summary(&mut all, &format!("{kind}/"));
        }
    }

    if let Some(out) = metrics {
        all.push_meta("threads", &threads.to_string());
        all.push_meta("ops_per_queue", &ops.to_string());
        if let Err(e) = out.write(all, "ops_latency", &argv_line()) {
            eprintln!("metrics: write failed: {e}");
            std::process::exit(1);
        }
    }
    bench::metrics::export_trace(&args, "ops_latency");

    if !alloc_failures.is_empty() {
        for f in &alloc_failures {
            eprintln!("assert-alloc-free: FAIL {f}");
        }
        std::process::exit(1);
    }
    if assert_alloc_free {
        eprintln!("assert-alloc-free: ok (no slab growth after warmup)");
    }

    if let Some(server) = server {
        let hold: u64 = args.get_num("serve-hold-ms", 0);
        if hold > 0 {
            eprintln!("serve: holding listener for {hold} ms after run");
            std::thread::sleep(Duration::from_millis(hold));
        }
        server.stop();
    }
}
