//! Per-operation latency distributions (extension experiment).
//!
//! The paper reports throughput and mean handoff latency; a production
//! release also needs tails. This harness records every `insert` and
//! `extract_max` latency into a log-bucketed histogram, per queue, under
//! a mixed workload with a prefilled queue, and prints p50/p99/p99.9.
//!
//! Usage: ops_latency [--ops N] [--prefill N] [--threads T]
//!                    [--queues a,b,c] [--quick]

use std::time::Instant;

use bench::cli::Args;
use bench::queues::make_queue;
use workloads::latency::LatencyHistogram;

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 200_000 } else { 1_000_000 });
    let prefill: u64 = args.get_num("prefill", ops / 4);
    let threads: usize = args.get_num("threads", 2);
    let queues_arg = args.get(
        "queues",
        "zmsq,zmsq-array,zmsq-strict,mound,spraylist,multiqueue,coarse-heap",
    );

    bench::csv_header(&[
        "queue", "op", "count", "mean_ns", "p50_ns", "p99_ns", "p999_ns", "max_ns",
    ]);
    for kind in queues_arg.split(',') {
        let kind = kind.trim();
        let q = make_queue::<u64>(kind, threads);
        let ins = LatencyHistogram::new();
        let ext = LatencyHistogram::new();

        for i in 0..prefill {
            q.insert((i * 2654435761) % (1 << 20), i);
        }
        let per_thread = ops / threads as u64;
        std::thread::scope(|s| {
            for t in 0..threads as u64 {
                let (q, ins, ext) = (&q, &ins, &ext);
                s.spawn(move || {
                    let mut x = 0x9E37 + t;
                    for i in 0..per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if i % 2 == 0 {
                            let t0 = Instant::now();
                            q.insert(x % (1 << 20), x);
                            ins.record(t0.elapsed());
                        } else {
                            let t0 = Instant::now();
                            let got = q.extract_max();
                            ext.record(t0.elapsed());
                            std::hint::black_box(got);
                        }
                    }
                });
            }
        });

        let name = q.name();
        for (op, h) in [("insert", &ins), ("extract", &ext)] {
            println!(
                "{name},{op},{},{:.0},{},{},{},{}",
                h.count(),
                h.mean_ns(),
                h.percentile_ns(0.50),
                h.percentile_ns(0.99),
                h.percentile_ns(0.999),
                h.max_ns()
            );
        }
    }
}
