//! §3.2 in-text experiment — set-size stability under a mixed workload.
//!
//! "We ran an experiment in which the ZMSQ was initialized with 1M
//! elements and targetLen = 32, and then we performed 8M
//! insert()/extractMax() pairs. After initialization, count varied from
//! 32 to 51 across all non-leaf nodes. Upon completion of the
//! experiment, the average count was 32 for all nodes (standard
//! deviation 2.76)."
//!
//! Also contrasts the mound (§2.2: its average list length decays — "the
//! mound becomes a heap"), measured via its element/node ratio.
//!
//! Usage: sec32_stability [--prefill N] [--pairs N] [--target-len 32]
//!                        [--batch B] [--probe-factor F] [--quick]

use bench::cli::Args;
use workloads::keys::{KeyDist, KeyStream};
use zmsq::{Zmsq, ZmsqConfig};

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let prefill: u64 = args.get_num("prefill", if quick { 100_000 } else { 1_000_000 });
    let pairs: u64 = args.get_num("pairs", if quick { 800_000 } else { 8_000_000 });
    let target_len: usize = args.get_num("target-len", 32);
    let batch: usize = args.get_num("batch", target_len);
    let probe_factor: usize = args.get_num("probe-factor", 1);

    let mut q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig {
        probe_factor,
        ..ZmsqConfig::default().batch(batch).target_len(target_len)
    });
    let mut keys = KeyStream::new(
        KeyDist::Normal {
            mean: 5e8,
            std_dev: 5e7,
        },
        0x5EC32,
    );

    for _ in 0..prefill {
        let k = keys.next_key();
        q.insert(k, k);
    }
    let init = q.set_size_stats();

    bench::csv_header(&["phase", "nonempty_nodes", "mean", "std_dev", "min", "max"]);
    println!(
        "after_init,{},{:.2},{:.2},{},{}",
        init.nonempty_nodes, init.mean, init.std_dev, init.min, init.max
    );

    for _ in 0..pairs {
        let k = keys.next_key();
        q.insert(k, k);
        q.extract_max();
    }
    let fin = q.set_size_stats();
    println!(
        "after_8m_pairs,{},{:.2},{:.2},{},{}",
        fin.nonempty_nodes, fin.mean, fin.std_dev, fin.min, fin.max
    );
    q.validate_invariants()
        .expect("invariants after stability run");
    let st = q.stats();
    eprintln!(
        "# stats: tree_grows={} splits={} forced={} min_swaps={} retries={}",
        st.tree_grows, st.splits, st.forced_inserts, st.min_swap_inserts, st.insert_retries
    );

    eprintln!("# paper: after completion, average count 32 (std dev 2.76) with targetLen=32");
}
