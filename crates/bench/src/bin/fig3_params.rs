//! Figure 3 — how `batch` and `targetLen` interact (§4.2).
//!
//! Two families:
//! * **dynamic (b:t)** — both scale with the thread count; the smaller of
//!   the two equals the thread count and the ratio is fixed (e.g. at 8
//!   threads, dynamic 1:1.5 is batch=8, targetLen=12).
//! * **static (n)** — batch = targetLen = n at every thread count.
//!
//! Plus the mound as the unrelaxed reference. Fig. 3a is 100% inserts,
//! Fig. 3b the 50/50 mix.
//!
//! Usage: fig3_params [--mix insert|half] [--threads ...] [--ops N] [--quick]

use bench::cli::Args;
use bench::queues::{make_queue, make_zmsq};
use workloads::keys::KeyDist;
use workloads::mixed::{run_mixed, MixedConfig};
use zmsq::Reclamation;

/// (label, batch, target_len) for one dynamic ratio at `t` threads: the
/// smaller of the two equals `t`, floored at 8 — below that the split
/// cascade degenerates into unbounded tree digging (the paper itself
/// observes tiny targetLen makes the structure "resemble a heap"; our
/// floor keeps the degenerate region runnable while preserving the
/// dynamic-vs-static comparison).
fn dynamic_cfg(ratio: (usize, usize), t: usize) -> (usize, usize) {
    let (rb, rt) = ratio;
    let base = t.max(8);
    if rb <= rt {
        (base, base * rt / rb)
    } else {
        (base * rb / rt, base)
    }
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 100_000 } else { 1_000_000 });
    let threads = args.get_list(
        "threads",
        if quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8, 16, 24]
        },
    );
    let mix = args.get("mix", "half");
    let (insert_pct, prefill) = match mix.as_str() {
        "insert" => (100u32, 0u64),
        "half" => (50, ops),
        other => panic!("unknown mix {other:?}"),
    };

    // The paper's seven ZMSQ configurations plus the mound.
    let dynamic_ratios: &[(&str, (usize, usize))] = &[
        ("dynamic-1:1.5", (2, 3)),
        ("dynamic-1:1", (1, 1)),
        ("dynamic-1:2", (1, 2)),
        ("dynamic-2:1", (2, 1)),
    ];
    let statics: &[usize] = &[32, 64, 96];

    bench::csv_header(&[
        "mix",
        "config",
        "threads",
        "batch",
        "target_len",
        "mops_per_sec",
    ]);
    for &t in &threads {
        let wcfg = MixedConfig {
            total_ops: ops,
            threads: t,
            insert_pct,
            prefill,
            keys: KeyDist::UniformBits { bits: 20 },
            seed: 0xF163,
        };
        for &(label, ratio) in dynamic_ratios {
            let (b, tl) = dynamic_cfg(ratio, t);
            let q = make_zmsq::<u64>(b, tl, false, Reclamation::Hazard);
            let r = run_mixed(&q, &wcfg);
            println!("{mix},{label},{t},{b},{tl},{:.3}", r.ops_per_sec() / 1e6);
        }
        for &n in statics {
            let q = make_zmsq::<u64>(n, n, false, Reclamation::Hazard);
            let r = run_mixed(&q, &wcfg);
            println!("{mix},static-{n},{t},{n},{n},{:.3}", r.ops_per_sec() / 1e6);
        }
        let mound = make_queue::<u64>("mound", t);
        let r = run_mixed(&mound, &wcfg);
        println!("{mix},mound,{t},0,0,{:.3}", r.ops_per_sec() / 1e6);
    }
}
