//! `zmsq-top` — a top(1)-style live terminal view of a running bench.
//!
//! Polls the `/snapshot.json` endpoint exposed by any harness binary
//! running with `--serve [addr]` (see [`bench::metrics::serve_from_args`])
//! and renders a refreshing dashboard: queue occupancy and pressure,
//! insert/extract throughput (computed as deltas between polls),
//! relaxation quality (`quality.est_rank` p99), shed ratio, sojourn-time
//! p50/p99 (`queue.sojourn_ns`) and the hottest lock sites by
//! accumulated wait time (`sync.wait_ns{site=…}`).
//!
//! Zero dependencies: raw `std::net::TcpStream` HTTP/1.0 GET plus the
//! `obs::json` parser via [`obs::Snapshot::from_json`].
//!
//! ```text
//! zmsq-top [--addr host:port] [--interval-ms N] [--iters N] [--raw]
//! ```
//!
//! `--iters 0` (default) polls until interrupted; `--raw` skips the
//! ANSI clear-screen so output can be piped or captured.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use bench::cli::Args;
use obs::Snapshot;

/// Minimal HTTP/1.0 GET against the introspection listener. Returns the
/// body on a 200, an error string otherwise.
fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    write!(
        stream,
        "GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    let mut buf = String::new();
    stream
        .read_to_string(&mut buf)
        .map_err(|e| format!("read: {e}"))?;
    let split = buf.find("\r\n\r\n").ok_or("malformed HTTP response")?;
    let status = buf.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(format!("HTTP error: {status}"));
    }
    Ok(buf[split + 4..].to_string())
}

/// `1234567` → `"1.23M"` — compact magnitude formatting for rates.
fn fmt_mag(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// Nanoseconds → human-scale duration (`"1.2ms"`).
fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if v >= 1e9 {
        format!("{:.2}s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}us", v / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// All `(name, value)` entries whose dotted name ends with `suffix`
/// (snapshot names carry bench prefixes like `zmsq/` or
/// `overload.block.` that the dashboard must see through).
fn by_suffix<'a, T>(items: &'a [(String, T)], suffix: &str) -> Vec<(&'a str, &'a T)> {
    items
        .iter()
        .filter(|(n, _)| n.ends_with(suffix))
        .map(|(n, v)| (n.as_str(), v))
        .collect()
}

/// Sum of counter deltas for a suffix across prefixes, clamped at 0
/// (a new phase resets the namespace, which would go negative).
fn delta_sum(prev: &Snapshot, cur: &Snapshot, suffix: &str) -> u64 {
    let mut total = 0u64;
    for (name, v) in by_suffix(&cur.counters, suffix) {
        let before = prev
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| *b)
            .unwrap_or(0);
        total += v.saturating_sub(before);
    }
    total
}

/// Render one frame of the dashboard from consecutive snapshots taken
/// `dt` apart. Pure (no I/O) so it is unit-testable.
fn render(prev: &Snapshot, cur: &Snapshot, dt: Duration) -> String {
    let mut out = String::new();
    let bin = cur
        .meta
        .iter()
        .find(|(k, _)| k == "bin")
        .map(|(_, v)| v.as_str())
        .unwrap_or("?");
    let secs = dt.as_secs_f64().max(1e-9);
    out.push_str(&format!(
        "zmsq-top — bin={bin}  interval={:.1}s\n\n",
        dt.as_secs_f64()
    ));

    // Throughput: per-second deltas of the queue op counters.
    let ins = delta_sum(prev, cur, "zmsq.inserts");
    let ext = delta_sum(prev, cur, "zmsq.extracts");
    out.push_str(&format!(
        "  throughput   insert {:>8}/s   extract {:>8}/s\n",
        fmt_mag(ins as f64 / secs),
        fmt_mag(ext as f64 / secs)
    ));

    // Occupancy / backpressure gauges.
    for (name, occ) in by_suffix(&cur.gauges, "queue.pressure.occupancy") {
        let cap = cur
            .gauges
            .iter()
            .find(|(n, _)| *n == name.replace(".occupancy", ".capacity"))
            .map(|(_, v)| *v);
        match cap {
            Some(c) if c > 0 => out.push_str(&format!(
                "  occupancy    {occ}/{c} ({:.0}%)  [{name}]\n",
                100.0 * *occ as f64 / c as f64
            )),
            _ => out.push_str(&format!("  occupancy    {occ}  [{name}]\n")),
        }
    }
    for (name, len) in by_suffix(&cur.gauges, "zmsq.len_hint") {
        out.push_str(&format!("  len_hint     {len}  [{name}]\n"));
    }

    // Shed ratio: dropped arrivals over total arrivals, cumulative.
    let shed = {
        let rejected: u64 = by_suffix(&cur.counters, "queue.shed.rejected")
            .iter()
            .map(|(_, v)| **v)
            .sum();
        let evicted: u64 = by_suffix(&cur.counters, "queue.shed.evicted")
            .iter()
            .map(|(_, v)| **v)
            .sum();
        let admitted: u64 = by_suffix(&cur.counters, "zmsq.inserts")
            .iter()
            .map(|(_, v)| **v)
            .sum();
        let arrivals = admitted + rejected;
        (arrivals > 0).then(|| (rejected + evicted) as f64 / arrivals as f64)
    };
    if let Some(r) = shed {
        out.push_str(&format!("  shed_ratio   {:.4}\n", r));
    }

    // Relaxation quality and sojourn tails.
    for (name, h) in by_suffix(&cur.hists, "quality.est_rank") {
        if h.count > 0 {
            out.push_str(&format!(
                "  est_rank     p50 {:>6}  p99 {:>6}  (n={})  [{name}]\n",
                h.quantile(0.50),
                h.quantile(0.99),
                h.count
            ));
        }
    }
    for (name, h) in by_suffix(&cur.hists, "queue.sojourn_ns") {
        if h.count > 0 {
            out.push_str(&format!(
                "  sojourn      p50 {:>9}  p99 {:>9}  (n={})  [{name}]\n",
                fmt_ns(h.quantile(0.50)),
                fmt_ns(h.quantile(0.99)),
                h.count
            ));
        }
    }

    // Hottest lock sites by accumulated wait time.
    let mut sites: Vec<(&str, u64, u64)> = cur
        .hists
        .iter()
        .filter(|(n, _)| n.contains("sync.wait_ns{site="))
        .map(|(n, h)| {
            let site = n
                .rsplit_once("{site=")
                .map(|(_, s)| s.trim_end_matches('}'))
                .unwrap_or(n);
            (site, h.sum, h.count)
        })
        .filter(|(_, sum, _)| *sum > 0)
        .collect();
    sites.sort_by_key(|s| std::cmp::Reverse(s.1));
    if !sites.is_empty() {
        out.push_str("\n  lock sites (by total wait)\n");
        for (site, sum, count) in sites.iter().take(5) {
            out.push_str(&format!(
                "    {site:<16} waited {:>9} across {count} acquisitions\n",
                fmt_ns(*sum)
            ));
        }
    }
    out
}

fn main() {
    let args = Args::parse();
    let addr = args.get("addr", "127.0.0.1:9898");
    let interval = Duration::from_millis(args.get_num("interval-ms", 1000u64));
    let iters: u64 = args.get_num("iters", 0);
    let raw = args.get_bool("raw");
    let timeout = Duration::from_secs(5);

    let fetch = || -> Result<Snapshot, String> {
        let body = http_get(&addr, "/snapshot.json", timeout)?;
        Snapshot::from_json(&body)
    };

    let mut prev = match fetch() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("zmsq-top: {e}");
            eprintln!("(is a bench running with --serve {addr}?)");
            std::process::exit(1);
        }
    };
    let mut done = 0u64;
    loop {
        std::thread::sleep(interval);
        let cur = match fetch() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("zmsq-top: {e} — bench finished?");
                std::process::exit(0);
            }
        };
        let frame = render(&prev, &cur, interval);
        if raw {
            println!("{frame}");
        } else {
            // Clear screen + home, then the frame.
            print!("\x1b[2J\x1b[H{frame}");
            let _ = std::io::stdout().flush();
        }
        prev = cur;
        done += 1;
        if iters > 0 && done >= iters {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(inserts: u64) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_meta("bin", "unit");
        s.push_counter("zmsq/zmsq.inserts", inserts);
        s.push_counter("zmsq/zmsq.extracts", inserts / 2);
        s.push_counter("zmsq/queue.shed.rejected", inserts / 10);
        s.push_counter("zmsq/queue.shed.evicted", 0);
        s.push_gauge("zmsq/queue.pressure.occupancy", 50);
        s.push_gauge("zmsq/queue.pressure.capacity", 100);
        let h = obs::Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        s.push_hist("zmsq/quality.est_rank", &h);
        s.push_hist("zmsq/queue.sojourn_ns", &h);
        s.push_hist("sync.wait_ns{site=zmsq.root}", &h);
        s
    }

    #[test]
    fn render_shows_throughput_quality_and_sites() {
        let frame = render(&snap(1000), &snap(3000), Duration::from_secs(1));
        assert!(frame.contains("bin=unit"), "{frame}");
        // 2000 inserts / 1000 extracts over 1s.
        assert!(frame.contains("2.0k/s"), "{frame}");
        assert!(frame.contains("1.0k/s"), "{frame}");
        assert!(frame.contains("occupancy    50/100 (50%)"), "{frame}");
        assert!(frame.contains("est_rank"), "{frame}");
        assert!(frame.contains("sojourn"), "{frame}");
        assert!(frame.contains("zmsq.root"), "{frame}");
        // shed ratio = 300 / (3000 + 300)
        assert!(frame.contains("shed_ratio   0.0909"), "{frame}");
    }

    #[test]
    fn render_survives_counter_reset_and_empty_snapshot() {
        // Phase change: counters go backwards — deltas clamp at zero.
        let frame = render(&snap(3000), &snap(1000), Duration::from_secs(1));
        assert!(frame.contains("       0/s"), "{frame}");
        // A bare snapshot renders the header only, without panicking.
        let empty = render(&Snapshot::new(), &Snapshot::new(), Duration::from_secs(1));
        assert!(empty.contains("zmsq-top"), "{empty}");
    }

    #[test]
    fn magnitude_and_duration_formatting() {
        assert_eq!(fmt_mag(2_000.0), "2.0k");
        assert_eq!(fmt_mag(1_230_000.0), "1.23M");
        assert_eq!(fmt_mag(7.0), "7");
        assert_eq!(fmt_ns(900), "900ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
