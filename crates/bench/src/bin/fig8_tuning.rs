//! Figure 8 — tuning ZMSQ on a LiveJournal-scale SSSP (§4.7).
//!
//! Seven (batch, targetLen) configurations, plus the leaky and array
//! variants of the best one (42, 64), plus the SprayList, on a power-law
//! stand-in for the 3.8M-node LiveJournal graph. `--scale` shrinks the
//! graph proportionally (default 0.05 ≈ 190K nodes; use `--scale 1` for
//! the full paper-size run).
//!
//! Usage: fig8_tuning [--scale 0.05] [--threads ...] [--runs N] [--quick]

use bench::cli::Args;
use bench::queues::{make_queue, make_zmsq};
use zmsq::Reclamation;
use zmsq_graph::{gen, parallel_sssp, sequential_sssp};

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let scale: f64 = args.get_num("scale", if quick { 0.005 } else { 0.05 });
    let threads = args.get_list(
        "threads",
        if quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8, 12, 16, 24]
        },
    );
    let runs: usize = args.get_num("runs", 1);

    eprintln!("# generating LiveJournal-like graph at scale {scale}...");
    let graph = gen::paper::livejournal_like(scale, 11);
    eprintln!(
        "# graph: {} nodes, {} edges (avg degree {:.1})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );
    let source = graph.max_degree_node();
    let reference = sequential_sssp(&graph, source);

    // The seven curves of Fig. 8 (a programmer's refinement search around
    // batch≈targetLen ratios), as described in §4.7.
    let configs: &[(usize, usize)] = &[
        (16, 24),
        (24, 36),
        (32, 48),
        (42, 64),
        (48, 72),
        (64, 96),
        (84, 128),
    ];

    bench::csv_header(&["config", "threads", "time_ms", "waste_ratio"]);
    for &t in &threads {
        for &(b, tl) in configs {
            let mut ms = 0.0;
            let mut waste = 0.0;
            for _ in 0..runs {
                let q = make_zmsq::<u32>(b, tl, false, Reclamation::Hazard);
                let r = parallel_sssp(&graph, source, &q, t);
                assert_eq!(r.dist, reference, "zmsq({b},{tl}) wrong distances");
                ms += r.elapsed.as_secs_f64() * 1e3;
                waste += r.waste_ratio();
            }
            println!(
                "zmsq-{b}-{tl},{t},{:.1},{:.4}",
                ms / runs as f64,
                waste / runs as f64
            );
        }
        // The best config's leak and array variants, plus the SprayList.
        for (label, array, reclaim) in [
            ("zmsq-42-64-leak", false, Reclamation::Leak),
            ("zmsq-42-64-array", true, Reclamation::Hazard),
        ] {
            let q = make_zmsq::<u32>(42, 64, array, reclaim);
            let r = parallel_sssp(&graph, source, &q, t);
            assert_eq!(r.dist, reference);
            println!(
                "{label},{t},{:.1},{:.4}",
                r.elapsed.as_secs_f64() * 1e3,
                r.waste_ratio()
            );
        }
        let q = make_queue::<u32>("spraylist", t);
        let r = parallel_sssp(&graph, source, &q, t);
        assert_eq!(r.dist, reference, "spraylist wrong distances");
        println!(
            "spraylist,{t},{:.1},{:.4}",
            r.elapsed.as_secs_f64() * 1e3,
            r.waste_ratio()
        );
    }
}
