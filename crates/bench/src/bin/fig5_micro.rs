//! Figure 5 — micro-benchmarks: ZMSQ (+array/+leak) vs Mound vs
//! SprayList (§4.5.1).
//!
//! 2M operations on an initially empty queue:
//!   * Fig. 5a: 100% inserts (`--mix insert`)
//!   * Fig. 5b: 66% inserts (`--mix two-thirds`)
//!   * Fig. 5c: 50/50 with 20-bit keys (`--mix half`); the in-text 7-bit
//!     variant via `--key-bits 7`.
//!
//! ZMSQ runs the recommended static (48, 72) configuration; pass
//! `--queues` to change the lineup (extras: multiqueue, klsm,
//! coarse-heap, skiplist-strict).
//!
//! Usage: fig5_micro [--mix insert|two-thirds|half] [--threads ...]
//!                   [--ops N] [--key-bits 20] [--queues a,b,c] [--quick]

use bench::cli::Args;
use bench::queues::{make_queue, FIG5_QUEUES};
use workloads::keys::KeyDist;
use workloads::mixed::{run_mixed, MixedConfig};

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let ops: u64 = args.get_num("ops", if quick { 100_000 } else { 2_000_000 });
    let threads = args.get_list(
        "threads",
        if quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8, 16, 24]
        },
    );
    let mix = args.get("mix", "half");
    let key_bits: u32 = args.get_num("key-bits", 20);
    let queues_arg = args.get("queues", "");
    let queues: Vec<String> = if queues_arg.is_empty() {
        FIG5_QUEUES.iter().map(|s| s.to_string()).collect()
    } else {
        queues_arg
            .split(',')
            .map(|s| s.trim().to_string())
            .collect()
    };

    let insert_pct = match mix.as_str() {
        "insert" => 100,
        "two-thirds" => 66,
        "half" => 50,
        other => panic!("unknown mix {other:?}"),
    };

    bench::csv_header(&[
        "mix",
        "queue",
        "threads",
        "key_bits",
        "mops_per_sec",
        "extract_misses",
    ]);
    for &t in &threads {
        for kind in &queues {
            let q = make_queue::<u64>(kind, t);
            let wcfg = MixedConfig {
                total_ops: ops,
                threads: t,
                insert_pct,
                prefill: 0,
                keys: KeyDist::UniformBits { bits: key_bits },
                seed: 0xF165,
            };
            let r = run_mixed(&q, &wcfg);
            println!(
                "{mix},{},{t},{key_bits},{:.3},{}",
                q.name(),
                r.ops_per_sec() / 1e6,
                r.extract_misses
            );
        }
    }
}
