//! Figure 4 — blocking vs. spinning consumers (§4.4).
//!
//! Producer/consumer handoffs on an initially empty ZMSQ (batch = 32),
//! with a fixed producer count and a consumer sweep. Reports the handoff
//! latency (Fig. 4a) and the process CPU time for the full transfer
//! (Fig. 4b) for both consumer disciplines. The paper's headline: spin
//! wins below core saturation, blocking wins (both metrics) beyond it.
//!
//! Usage: fig4_blocking [--producers 4] [--consumers 2,4,...] [--items N] [--quick]

use bench::cli::Args;
use workloads::keys::KeyDist;
use workloads::prodcons::{run_prodcons_blocking, run_prodcons_spin, ProdConsConfig};
use zmsq::{Zmsq, ZmsqConfig};

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let producers: usize = args.get_num("producers", 4);
    let consumers = args.get_list(
        "consumers",
        if quick {
            &[2, 8]
        } else {
            &[2, 4, 8, 16, 32, 64, 128, 256]
        },
    );
    let items: u64 = args.get_num("items", if quick { 50_000 } else { 1_000_000 });

    bench::csv_header(&[
        "mode",
        "producers",
        "consumers",
        "items",
        "mean_handoff_ns",
        "p50_handoff_ns",
        "p99_handoff_ns",
        "cpu_time_ms",
        "wall_ms",
    ]);
    for &c in &consumers {
        let cfg = ProdConsConfig {
            producers,
            consumers: c,
            total_items: items,
            keys: KeyDist::UniformBits { bits: 20 },
            seed: 0xF164,
        };
        // Spinning consumers.
        {
            let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(32).target_len(48));
            let r = run_prodcons_spin(&q, &cfg);
            assert_eq!(r.received, items);
            println!(
                "spin,{producers},{c},{items},{:.0},{},{},{:.1},{:.1}",
                r.mean_handoff_ns,
                r.p50_handoff_ns,
                r.p99_handoff_ns,
                r.cpu_time.as_secs_f64() * 1e3,
                r.elapsed.as_secs_f64() * 1e3
            );
        }
        // Blocking consumers (futex buffer of §3.6).
        {
            let q: Zmsq<u64> = Zmsq::with_config(
                ZmsqConfig::default()
                    .batch(32)
                    .target_len(48)
                    .blocking(true),
            );
            let r = run_prodcons_blocking(&q, &cfg);
            assert_eq!(r.received, items);
            println!(
                "block,{producers},{c},{items},{:.0},{},{},{:.1},{:.1}",
                r.mean_handoff_ns,
                r.p50_handoff_ns,
                r.p99_handoff_ns,
                r.cpu_time.as_secs_f64() * 1e3,
                r.elapsed.as_secs_f64() * 1e3
            );
        }
    }
}
