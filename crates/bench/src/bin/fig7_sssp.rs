//! Figure 7 — single-source shortest paths (§4.6).
//!
//! Concurrent SSSP over power-law stand-ins for the paper's Facebook
//! graphs: "Artist" (50K nodes) and "Politician" (6K nodes) — see
//! DESIGN.md substitution #1. ZMSQ uses the SSSP-tuned (batch=42,
//! targetLen=64) configuration from §4.7. Results are validated against
//! sequential Dijkstra on every run.
//!
//! Usage: fig7_sssp [--graph artist|politician|both] [--threads ...]
//!                  [--queues zmsq,zmsq-array,zmsq-leak,mound,spraylist]
//!                  [--runs N] [--quick]

use bench::cli::Args;
use bench::queues::{make_queue, make_zmsq_set};
use zmsq_graph::{gen, parallel_sssp, sequential_sssp, CsrGraph};

fn queue_for(kind: &str, threads: usize) -> bench::queues::BoxedQueue<u32> {
    match kind {
        // §4.6: "ZMSQ used batch = 42 and targetLen = 64".
        "zmsq" => make_zmsq_set(42, 64, "list", zmsq::Reclamation::Hazard),
        "zmsq-array" => make_zmsq_set(42, 64, "array", zmsq::Reclamation::Hazard),
        "zmsq-deque" => make_zmsq_set(42, 64, "deque", zmsq::Reclamation::Hazard),
        "zmsq-leak" => make_zmsq_set(42, 64, "list", zmsq::Reclamation::Leak),
        other => make_queue(other, threads),
    }
}

fn run_graph(name: &str, graph: &CsrGraph, args: &Args) {
    let quick = args.get_bool("quick");
    let threads = args.get_list(
        "threads",
        if quick {
            &[1, 2, 4]
        } else {
            &[1, 2, 4, 8, 16, 24]
        },
    );
    let queues_arg = args.get("queues", "zmsq,zmsq-array,zmsq-leak,mound,spraylist");
    let runs: usize = args.get_num("runs", if quick { 1 } else { 3 });

    let source = graph.max_degree_node();
    let reference = sequential_sssp(graph, source);

    for &t in &threads {
        for kind in queues_arg.split(',') {
            let kind = kind.trim();
            let mut total_ms = 0.0;
            let mut waste = 0.0;
            for _ in 0..runs {
                let q = queue_for(kind, t);
                let r = parallel_sssp(graph, source, &q, t);
                assert_eq!(r.dist, reference, "{kind} produced wrong distances");
                total_ms += r.elapsed.as_secs_f64() * 1e3;
                waste += r.waste_ratio();
            }
            println!(
                "{name},{kind},{t},{:.1},{:.4}",
                total_ms / runs as f64,
                waste / runs as f64
            );
        }
    }
}

fn main() {
    let args = Args::parse();
    let which = args.get("graph", "both");
    bench::csv_header(&["graph", "queue", "threads", "time_ms", "waste_ratio"]);
    if which == "artist" || which == "both" {
        let g = if args.get_bool("quick") {
            gen::barabasi_albert(10_000, 12, 100, 7)
        } else {
            gen::paper::artist_like(7)
        };
        run_graph("artist", &g, &args);
    }
    if which == "politician" || which == "both" {
        let g = gen::paper::politician_like(7);
        run_graph("politician", &g, &args);
    }
}
