//! §4.3's transient-accuracy observation, measured directly.
//!
//! "This is because of a brief dip... The first few additions to the ZMSQ
//! are at shallow depths, for which we do not apply our accuracy-
//! improving techniques... This is a transient state during
//! initialization, and it passes quickly, so that by the time 10% of the
//! elements have been extracted, elements are usually of high quality."
//!
//! Protocol: fill with N distinct keys, then drain completely in windows
//! of `window` extractions, reporting each window's hit rate against the
//! true top-`window` of the *remaining* multiset. A transient dip shows
//! up as low hit rates in the first windows, recovering later.
//!
//! Usage: accuracy_transient [--size 65536] [--window 655] [--batch 16] [--quick]

use std::collections::BTreeMap;

use bench::cli::Args;
use bench::queues::make_zmsq;
use workloads::keys::distinct_keys;
use zmsq::Reclamation;

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let size: usize = args.get_num("size", if quick { 16_384 } else { 65_536 });
    let window: usize = args.get_num("window", size / 100);
    let batch: usize = args.get_num("batch", 16);

    let keys = distinct_keys(size, 0xACC);
    let q = make_zmsq::<u64>(batch, 64, false, Reclamation::Hazard);
    for &k in &keys {
        q.insert(k, k);
    }

    // Multiset of remaining keys, ordered.
    let mut remaining: BTreeMap<u64, usize> = BTreeMap::new();
    for &k in &keys {
        *remaining.entry(k).or_insert(0) += 1;
    }

    bench::csv_header(&["window_start_pct", "extractions", "hit_rate"]);
    let mut extracted_total = 0usize;
    while extracted_total < size {
        let take = window.min(size - extracted_total);
        // The true top-`take` threshold of what's left.
        let mut cnt = 0usize;
        let mut threshold = 0u64;
        for (&k, &c) in remaining.iter().rev() {
            cnt += c;
            if cnt >= take {
                threshold = k;
                break;
            }
        }
        let mut hits = 0usize;
        for _ in 0..take {
            let (k, _) = q.extract_max().expect("queue has elements");
            if k >= threshold {
                hits += 1;
            }
            match remaining.get_mut(&k) {
                Some(c) if *c > 1 => *c -= 1,
                Some(_) => {
                    remaining.remove(&k);
                }
                None => panic!("phantom key {k}"),
            }
        }
        println!(
            "{:.1},{take},{:.4}",
            100.0 * extracted_total as f64 / size as f64,
            hits as f64 / take as f64
        );
        extracted_total += take;
    }
    eprintln!(
        "# paper §4.3: expect lower hit rates in the earliest windows (the\n\
         # shallow-tree transient), recovering after ~10% of elements drain"
    );
}
