//! Phased smoke bench for the adaptive sharded runtime.
//!
//! Drives a `ShardedZmsq` through alternating contention phases and
//! reports, per `(shards, adaptive)` configuration and phase, the
//! throughput and where the per-shard refill batch ended up:
//!
//! * `mixed50` — all threads, 50/50 insert/extract: the headline
//!   throughput row (4-shard adaptive vs 1-shard fixed is the ISSUE's
//!   acceptance comparison).
//! * `low1` / `low2` — a single thread, 50/50: zero root contention, so
//!   the adaptive controller must walk the batch down to `batch_min`
//!   (deterministic — `--assert` enforces it).
//! * `high` — all threads, extract-heavy (3 extracts per insert): pool
//!   refills race, and on parallel hardware the controller widens the
//!   batch (visible in `batch_end` / `widens`, and in the
//!   `zmsq.batch.current` series when `--metrics` is given).
//!
//! ```text
//! sharded_adapt [--shards 1,4] [--adaptive on|off|both]
//!               [--threads N] [--ops N] [--prefill N]
//!               [--quick] [--assert] [--metrics [path]]
//! ```
//!
//! With `--metrics`, the final configuration's queue snapshot (including
//! the `zmsq.shard.*` gauges) is written as JSON, with one
//! `batch.s<shards>.<on|off>` series per configuration sampling the mean
//! effective batch over time. The `summary` block carries the perf-gate
//! keys (`s<shards>.<on|off>.throughput_ops_per_s` for the mixed50
//! phase, `est_rank_p99` from the last configuration's quality fold)
//! that `scripts/compare_bench.py` tracks against
//! `results/BENCH_sharded_adapt.json`. `--trace [path]` exports a
//! Chrome trace on `obs-trace` builds.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::cli::Args;
use bench::metrics::MetricsOut;
use pq_traits::ConcurrentPriorityQueue;
use zmsq::{ShardedZmsq, ZmsqConfig};

/// One workload phase. `extracts_per_insert = 1` is the 50/50 mix; `3`
/// is the extract-heavy contention phase. Returns elapsed seconds.
fn run_phase(
    q: &ShardedZmsq<u64>,
    threads: usize,
    ops_per_thread: u64,
    extracts_per_insert: u64,
) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            s.spawn(move || {
                let mut x = (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut out = Vec::with_capacity(8);
                for i in 0..ops_per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if i % (extracts_per_insert + 1) == 0 {
                        q.insert(x % 1_000_000, i);
                    } else if i % 97 == 0 {
                        // Exercise the batched claim path too.
                        out.clear();
                        q.extract_batch(&mut out, 8);
                    } else {
                        std::hint::black_box(q.extract_max());
                    }
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

struct PhaseRow {
    phase: &'static str,
    threads: usize,
    ops: u64,
    secs: f64,
    batch_end: usize,
}

fn main() {
    let args = Args::parse();
    let quick = args.get_bool("quick");
    let shards_list = args.get_list("shards", &[1, 4]);
    let adaptive_mode = args.get("adaptive", "both");
    let threads: usize = args.get_num("threads", 4);
    let ops: u64 = args.get_num("ops", if quick { 30_000 } else { 400_000 });
    let prefill: u64 = args.get_num("prefill", ops.max(20_000));
    let do_assert = args.get_bool("assert");
    let metrics = MetricsOut::from_args(&args, "sharded_adapt");

    let adaptive_arms: &[bool] = match adaptive_mode.as_str() {
        "on" | "true" | "1" => &[true],
        "off" | "false" | "0" => &[false],
        _ => &[false, true],
    };

    // Adaptive range: start mid-range so both directions are visible.
    const BATCH_MIN: usize = 4;
    const BATCH_START: usize = 16;
    const BATCH_MAX: usize = 64;

    bench::csv_header(&[
        "queue",
        "shards",
        "adaptive",
        "phase",
        "threads",
        "ops_total",
        "secs",
        "mops",
        "batch_end",
        "widens",
        "narrows",
    ]);

    let mut failures: Vec<String> = Vec::new();
    let mut all_series: Vec<obs::Series> = Vec::new();
    let mut last_snapshot: Option<obs::Snapshot> = None;
    let mut mixed_mops: Vec<(usize, bool, f64)> = Vec::new();

    for &shards in &shards_list {
        for &adaptive in adaptive_arms {
            let cfg = if adaptive {
                ZmsqConfig::default()
                    .batch(BATCH_START)
                    .adaptive_batch(BATCH_MIN, BATCH_MAX)
            } else {
                ZmsqConfig::default().batch(BATCH_START)
            };
            let q: Arc<ShardedZmsq<u64>> = Arc::new(ShardedZmsq::new(shards, cfg));
            let name = ConcurrentPriorityQueue::name(&*q);

            // Prefill through the scatter path so extraction phases
            // start against a populated queue on every shard.
            let mut seed: Vec<(u64, u64)> = (0..prefill).map(|i| (i % 1_000_000, i)).collect();
            q.insert_batch(&mut seed);

            // Sample the mean effective batch while the phases run.
            let sampler = metrics.is_some().then(|| {
                let probe_q = Arc::clone(&q);
                obs::Sampler::start(
                    &format!("batch.s{}.{}", shards, if adaptive { "on" } else { "off" }),
                    Duration::from_millis(2),
                    &["mean_batch"],
                    move || vec![probe_q.mean_batch() as f64],
                )
            });

            let phases = [
                ("mixed50", threads, ops, 1u64),
                ("low1", 1, ops / 2, 1),
                ("high", threads, ops, 3),
                ("low2", 1, ops / 2, 1),
            ];
            let mut rows = Vec::new();
            for (phase, t, per_thread, epi) in phases {
                let secs = run_phase(&q, t, per_thread, epi);
                rows.push(PhaseRow {
                    phase,
                    threads: t,
                    ops: per_thread * t as u64,
                    secs,
                    batch_end: q.mean_batch(),
                });
            }
            if let Some(s) = sampler {
                all_series.push(s.stop());
            }

            let snap = ConcurrentPriorityQueue::metrics(&*q).expect("sharded queue has metrics");
            let widens = snap.counter("zmsq.batch.widens").unwrap_or(0);
            let narrows = snap.counter("zmsq.batch.narrows").unwrap_or(0);
            for r in &rows {
                let mops = r.ops as f64 / r.secs / 1e6;
                println!(
                    "{name},{shards},{},{},{},{},{:.3},{mops:.3},{},{widens},{narrows}",
                    adaptive as u8, r.phase, r.threads, r.ops, r.secs, r.batch_end
                );
                if r.phase == "mixed50" {
                    mixed_mops.push((shards, adaptive, mops));
                }
            }

            if do_assert && adaptive {
                // Deterministic: a single-threaded phase has zero root
                // contention, so the controller must have narrowed to
                // batch_min by the end of each low phase.
                for r in rows.iter().filter(|r| r.phase.starts_with("low")) {
                    if r.batch_end != BATCH_MIN {
                        failures.push(format!(
                            "{name}: phase {} ended with batch {} (want batch_min {})",
                            r.phase, r.batch_end, BATCH_MIN
                        ));
                    }
                }
                if narrows == 0 {
                    failures.push(format!("{name}: controller never narrowed"));
                }
            }
            last_snapshot = Some(snap);
        }
    }

    // The ISSUE's throughput comparison, reported for the human reading
    // the CSV (not asserted: a single-core CI runner serializes threads
    // and the sharded arm's win margin vanishes into scheduling noise).
    if let (Some(base), Some(best)) = (
        mixed_mops
            .iter()
            .find(|&&(s, a, _)| s == 1 && !a)
            .or(mixed_mops.iter().find(|&&(s, _, _)| s == 1)),
        mixed_mops
            .iter()
            .filter(|&&(s, _, _)| s > 1)
            .max_by(|a, b| a.2.total_cmp(&b.2)),
    ) {
        eprintln!(
            "mixed50: best multi-shard {:.3} Mops ({} shards, adaptive={}) vs 1-shard {:.3} Mops",
            best.2, best.0, best.1, base.2
        );
    }

    if let Some(out) = metrics {
        let mut snap = last_snapshot.unwrap_or_default();
        for s in all_series {
            snap.push_series(s);
        }
        // Perf-gate summary: the headline mixed-phase throughput per
        // configuration, plus the estimated rank-error p99 of the last
        // configuration's quality fold.
        for (shards, adaptive, mops) in &mixed_mops {
            snap.push_summary(
                &format!(
                    "s{shards}.{}.throughput_ops_per_s",
                    if *adaptive { "on" } else { "off" }
                ),
                mops * 1e6,
            );
        }
        bench::metrics::push_rank_summary(&mut snap, "");
        out.write(snap, "sharded_adapt", &bench::metrics::argv_line())
            .expect("write metrics JSON");
    }
    bench::metrics::export_trace(&args, "sharded_adapt");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("ASSERTION FAILED: {f}");
        }
        std::process::exit(1);
    }
}
