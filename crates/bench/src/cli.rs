//! Minimal flag parser for the harness binaries (no external deps).
//!
//! Syntax: `--key value` or boolean `--flag`. Lists are comma-separated:
//! `--threads 1,2,4,8`.

use std::collections::HashMap;

/// Parsed command-line flags.
pub struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(iter: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(key) = arg.strip_prefix("--") else {
                eprintln!("ignoring positional argument {arg:?}");
                continue;
            };
            let value = match iter.peek() {
                Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                _ => String::from("true"),
            };
            flags.insert(key.to_string(), value);
        }
        Self { flags }
    }

    /// String flag with default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Parsed numeric flag with default.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Optional flag: `None` when absent, `Some(value)` when present —
    /// the bare `--flag` form yields `Some("true")`. Lets a flag like
    /// `--metrics [path]` distinguish "off", "on with default path",
    /// and "on with explicit path".
    pub fn get_opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Boolean flag (present or `--key true`).
    pub fn get_bool(&self, key: &str) -> bool {
        matches!(
            self.flags.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }

    /// Comma-separated list of numbers with default.
    pub fn get_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.flags.get(key) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_key_values() {
        let a = args("--threads 1,2,4 --ops 1000 --quick --mix half");
        assert_eq!(a.get_list("threads", &[9]), vec![1, 2, 4]);
        assert_eq!(a.get_num("ops", 0u64), 1000);
        assert!(a.get_bool("quick"));
        assert_eq!(a.get("mix", "x"), "half");
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.get("mix", "insert"), "insert");
        assert_eq!(a.get_num("ops", 77u64), 77);
        assert!(!a.get_bool("quick"));
        assert_eq!(a.get_list("threads", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn get_opt_distinguishes_bare_from_valued() {
        let a = args("--metrics --ops 10");
        assert_eq!(a.get_opt("metrics"), Some("true"));
        assert_eq!(a.get_opt("ops"), Some("10"));
        assert_eq!(a.get_opt("absent"), None);
        let b = args("--metrics results/run.json");
        assert_eq!(b.get_opt("metrics"), Some("results/run.json"));
    }

    #[test]
    fn malformed_numbers_fall_back() {
        let a = args("--ops banana");
        assert_eq!(a.get_num("ops", 5u64), 5);
    }
}
