//! `--metrics` plumbing: merge queue-level and substrate-level `obs`
//! snapshots and write them as per-run `results/*.metrics.json` files.
//!
//! Harness binaries opt in with `MetricsOut::from_args(&args, "bin")`;
//! the criterion-shaped harness attaches automatically when the
//! `OBS_METRICS_JSON` environment variable names an output path (see
//! [`crate::harness::flush_metrics`]).

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::cli::Args;

/// Destination of one run's metrics JSON document.
pub struct MetricsOut {
    path: PathBuf,
}

impl MetricsOut {
    /// `Some` when `--metrics` was passed. Bare `--metrics` writes to
    /// `results/<bin>.metrics.json`; `--metrics path.json` overrides
    /// the destination.
    pub fn from_args(args: &Args, bin: &str) -> Option<Self> {
        let v = args.get_opt("metrics")?;
        let path = if v == "true" || v == "1" {
            PathBuf::from(format!("results/{bin}.metrics.json"))
        } else {
            PathBuf::from(v)
        };
        Some(Self { path })
    }

    /// Explicit destination.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// Where the document will be written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stamp standard metadata, append the always-on substrate counters,
    /// and write the document, creating parent directories. The path is
    /// printed to **stderr** so stdout stays CSV-clean.
    pub fn write(
        &self,
        mut snap: obs::Snapshot,
        bin: &str,
        args_line: &str,
    ) -> std::io::Result<()> {
        snap.push_meta("bin", bin);
        snap.push_meta("args", args_line);
        snap.merge(substrate_snapshot());
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&self.path, snap.to_json())?;
        eprintln!("metrics: wrote {}", self.path.display());
        Ok(())
    }
}

/// Derive the `<prefix>est_rank_p99` summary entry from the
/// queue-exported `<prefix>quality.est_rank` histogram, when present
/// (i.e. the queue ran a `RankEstimator`). The perf gate
/// (`scripts/compare_bench.py`) tracks this key across runs to catch
/// relaxation-quality regressions, so every bench that records a queue
/// snapshot should call this after `merge_prefixed`.
pub fn push_rank_summary(snap: &mut obs::Snapshot, prefix: &str) {
    let p99 = snap
        .hist(&format!("{prefix}quality.est_rank"))
        .filter(|h| h.count > 0)
        .map(|h| h.quantile(0.99) as f64);
    if let Some(p99) = p99 {
        snap.push_summary(&format!("{prefix}est_rank_p99"), p99);
    }
}

/// `--trace [path]` plumbing: dump the merged flight-recorder rings as
/// Chrome `trace_event` JSON. Bare `--trace` writes to
/// `results/<bin>.trace.json`. Without the `obs-trace` feature the
/// rings are empty, so the flag warns instead of writing a vacuous
/// file.
pub fn export_trace(args: &Args, bin: &str) {
    let Some(v) = args.get_opt("trace") else {
        return;
    };
    let path = if v == "true" || v == "1" {
        format!("results/{bin}.trace.json")
    } else {
        v.to_string()
    };
    if !obs::TRACE_ENABLED {
        eprintln!("trace: built without the obs-trace feature; rebuild with --features obs-trace");
        return;
    }
    match obs::trace::export_chrome_to_file(Path::new(&path)) {
        Ok(()) => eprintln!("trace: wrote {path}"),
        Err(e) => eprintln!("trace: write failed: {e}"),
    }
}

type LiveFn = Arc<dyn Fn() -> obs::Snapshot + Send + Sync>;

/// The bench-specific half of the live snapshot: a closure the harness
/// swaps in as it moves between queues/phases so `--serve` scrapes see
/// the *currently running* workload, not a stale one.
static LIVE_SOURCE: Mutex<Option<LiveFn>> = Mutex::new(None);

/// Register (or replace) the bench-specific live-snapshot source. The
/// closure runs on the exporter's handler thread, so it must only read
/// concurrently-safe state (queue `metrics()`, `Arc`'d histograms, …).
pub fn set_live_source<F: Fn() -> obs::Snapshot + Send + Sync + 'static>(f: F) {
    *LIVE_SOURCE.lock().unwrap() = Some(Arc::new(f));
}

/// Drop the bench-specific source (e.g. between phases, while the
/// queue it captured is being torn down). Scrapes still see the global
/// registry, substrate counters and retained series.
pub fn clear_live_source() {
    *LIVE_SOURCE.lock().unwrap() = None;
}

/// One consistent live snapshot for `/metrics` and `/snapshot.json`:
/// the global `obs` registry, the always-on sync/SMR substrate
/// counters, whatever [`set_live_source`] currently provides, and the
/// fixed-memory retention tiers (`obs::retain`).
pub fn live_snapshot() -> obs::Snapshot {
    let mut s = obs::global().snapshot();
    s.merge(substrate_snapshot());
    let src = LIVE_SOURCE.lock().unwrap().clone();
    if let Some(f) = src {
        s.merge(f());
    }
    obs::retain::collect_into(&mut s);
    s
}

/// `--serve [addr]` plumbing: start the zero-dep introspection
/// listener ([`obs::serve`]) backed by [`live_snapshot`]. Bare
/// `--serve` binds `127.0.0.1:9898`; `--serve 127.0.0.1:0` picks an
/// ephemeral port. The **bound** address is printed to stderr (stdout
/// stays CSV-clean) so scripts can scrape `:0` binds. Keep the
/// returned guard alive for the duration of the run; a failed bind
/// warns and returns `None` rather than aborting the bench.
pub fn serve_from_args(args: &Args, bin: &str) -> Option<obs::MetricsServer> {
    let v = args.get_opt("serve")?;
    let addr = if v == "true" || v == "1" {
        "127.0.0.1:9898"
    } else {
        v
    };
    let bin = bin.to_string();
    match obs::serve(addr, move || {
        let mut s = live_snapshot();
        s.push_meta("bin", &bin);
        s
    }) {
        Ok(server) => {
            eprintln!(
                "serve: listening on http://{}/  (endpoints: /metrics /snapshot.json /healthz)",
                server.local_addr()
            );
            Some(server)
        }
        Err(e) => {
            eprintln!("serve: bind {addr} failed: {e}");
            None
        }
    }
}

/// The always-on process-wide counters of the instrumented crates:
/// futex / event-buffer / trylock (`zmsq-sync`) and hazard-pointer / EBR
/// reclamation (`smr`). Names arrive pre-prefixed (`futex.*`, `event.*`,
/// `trylock.*`, `hp.*`, `ebr.*`).
pub fn substrate_snapshot() -> obs::Snapshot {
    let mut s = obs::Snapshot::new();
    s.merge(zmsq_sync::obs::snapshot());
    s.merge(smr::obs::snapshot());
    s
}

/// The process argv (minus the binary name), for the `args` metadata key.
pub fn argv_line() -> String {
    std::env::args().skip(1).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn from_args_resolves_paths() {
        assert!(MetricsOut::from_args(&args(""), "x").is_none());
        let bare = MetricsOut::from_args(&args("--metrics"), "ops_latency").unwrap();
        assert_eq!(bare.path(), Path::new("results/ops_latency.metrics.json"));
        let explicit = MetricsOut::from_args(&args("--metrics target/t.json"), "x").unwrap();
        assert_eq!(explicit.path(), Path::new("target/t.json"));
    }

    #[test]
    fn push_rank_summary_requires_quality_hist() {
        let mut s = obs::Snapshot::new();
        push_rank_summary(&mut s, "q/");
        assert!(s.summary("q/est_rank_p99").is_none());
        let h = obs::Histogram::new();
        for r in [0u64, 0, 64, 128] {
            h.record(r);
        }
        s.push_hist("q/quality.est_rank", &h);
        push_rank_summary(&mut s, "q/");
        assert!(s.summary("q/est_rank_p99").unwrap() >= 64.0);
    }

    #[test]
    fn substrate_snapshot_exports_sync_and_smr_counters() {
        let s = substrate_snapshot();
        for key in [
            "futex.waits",
            "event.waits",
            "trylock.attempts",
            "hp.retired",
            "ebr.pins",
        ] {
            assert!(s.counter(key).is_some(), "missing substrate counter {key}");
        }
    }

    #[test]
    fn live_snapshot_merges_source_substrate_and_retention() {
        set_live_source(|| {
            let mut s = obs::Snapshot::new();
            s.push_gauge("live.test.gauge", 42);
            s
        });
        let s = live_snapshot();
        assert_eq!(s.gauge("live.test.gauge"), Some(42));
        assert!(s.counter("trylock.attempts").is_some(), "substrate missing");
        clear_live_source();
        assert!(live_snapshot().gauge("live.test.gauge").is_none());
    }

    #[test]
    fn serve_from_args_binds_and_reports_ephemeral_port() {
        assert!(serve_from_args(&args(""), "unit").is_none());
        let server = serve_from_args(&args("--serve 127.0.0.1:0"), "unit").expect("bind");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port must be resolved");
        // The served body must carry the bin meta stamped by the wrapper.
        use std::io::{Read as _, Write as _};
        let mut c = std::net::TcpStream::connect(addr).unwrap();
        write!(c, "GET /snapshot.json HTTP/1.0\r\n\r\n").unwrap();
        let mut body = String::new();
        c.read_to_string(&mut body).unwrap();
        assert!(body.contains("\"bin\""), "{body}");
        server.stop();
    }

    #[test]
    fn write_produces_parseable_json_with_stable_keys() {
        let out = MetricsOut::at("target/bench-metrics-test.json");
        let mut snap = obs::Snapshot::new();
        snap.push_counter("test.ops", 7);
        out.write(snap, "unit-test", "--quick").unwrap();
        let body = std::fs::read_to_string(out.path()).unwrap();
        let v = obs::json::parse(&body).expect("metrics JSON must parse");
        for key in [
            "meta",
            "counters",
            "gauges",
            "ratios",
            "histograms",
            "series",
        ] {
            assert!(v.get(key).is_some(), "missing top-level key {key}");
        }
        assert_eq!(
            v.get("counters").unwrap().get("test.ops").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(
            v.get("meta").unwrap().get("bin"),
            Some(&obs::json::Value::Str("unit-test".into()))
        );
        // Substrate counters ride along on every write.
        assert!(v.get("counters").unwrap().get("futex.waits").is_some());
        let _ = std::fs::remove_file(out.path());
    }
}
