//! Shared infrastructure for the benchmark harness binaries.
//!
//! One binary per paper artifact (see DESIGN.md's per-experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig2_locks` | Fig. 2a/2b — lock implementations |
//! | `fig3_params` | Fig. 3a/3b — batch/targetLen configurations |
//! | `table1_accuracy` | Table 1a/1b — accuracy vs SprayList/FIFO |
//! | `fig4_blocking` | Fig. 4a/4b — blocking vs spinning |
//! | `fig5_micro` | Fig. 5a/b/c — mixed micro-benchmarks |
//! | `fig6_prodcons` | Fig. 6 — producer/consumer ratios |
//! | `fig7_sssp` | Fig. 7a/7b — SSSP on Artist/Politician stand-ins |
//! | `fig8_tuning` | Fig. 8 — SSSP tuning on the LiveJournal stand-in |
//! | `sec32_stability` | §3.2 in-text set-size stability experiment |
//!
//! Every binary prints CSV to stdout (`column -s, -t` makes it a table)
//! and accepts `--quick` for a fast smoke-scale run.

pub mod cli;
pub mod harness;
pub mod metrics;
pub mod queues;

/// Print a CSV header then rows through the given closure.
pub fn csv_header(cols: &[&str]) {
    println!("{}", cols.join(","));
}
