//! Epoch-based reclamation (EBR), from scratch.
//!
//! The hazard-pointer [`crate::Domain`] protects a *bounded* number of
//! pointers per thread — the right shape for ZMSQ itself (§3.5). The
//! lock-free baselines (SprayList's skiplist, k-LSM's run stack) instead
//! traverse unbounded chains of nodes, where per-pointer protection is
//! impractical; they want the coarser epoch scheme: a reader *pins* the
//! current epoch for the duration of an operation, and an object retired
//! at epoch `e` is freed only once every pinned reader is past `e`.
//!
//! The design is the classic three-phase collector (Fraser 2004),
//! simplified for auditability rather than peak throughput:
//!
//! * a global epoch counter, advanced only when every pinned participant
//!   has caught up to it;
//! * an append-only participant list (records are recycled across
//!   threads, like the hazard domain's `HpRecord`s) holding each
//!   thread's pinned epoch, `u64::MAX` meaning "not pinned";
//! * one global garbage list of `(retire_epoch, deferred)` pairs; an
//!   entry is run once the *minimum* pinned epoch is strictly greater
//!   than its retire epoch — a reader pinned at the retire epoch may
//!   still hold the reference, a reader pinned later cannot (retired
//!   objects are unreachable to new readers by contract).
//!
//! Collection is attempted whenever the garbage list crosses a
//! threshold and — deliberately more eager than crossbeam — every time a
//! thread drops its outermost [`Guard`]: single-threaded teardown tests
//! can then observe full reclamation without explicit flush calls.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-global EBR counters (the collector itself is process-global).
/// Exported by [`crate::obs::snapshot`].
pub(crate) static PINS: obs::Counter = obs::Counter::new();
pub(crate) static DEFERS: obs::Counter = obs::Counter::new();
pub(crate) static COLLECTS: obs::Counter = obs::Counter::new();
pub(crate) static EBR_FREED: obs::Counter = obs::Counter::new();

/// Pinned-epoch sentinel: the participant is not inside a critical section.
const NOT_PINNED: u64 = u64::MAX;

/// Start collecting once this many deferred objects are pending.
const COLLECT_THRESHOLD: usize = 64;

type Deferred = Box<dyn FnOnce() + Send>;

/// Per-thread participant record. Never freed (the global collector is
/// `'static`); recycled through the `active` flag when a thread exits.
#[repr(align(128))]
struct Participant {
    /// Epoch this thread is pinned at, or [`NOT_PINNED`].
    epoch: AtomicU64,
    /// Claimed by some live thread.
    active: AtomicBool,
    /// Next record in the append-only list. Immutable once published.
    next: *mut Participant,
    /// Reentrant-pin depth — owner-thread only.
    depth: Cell<usize>,
}

struct Global {
    epoch: AtomicU64,
    participants: AtomicPtr<Participant>,
    garbage: Mutex<Vec<(u64, Deferred)>>,
    /// Mirror of `garbage.len()` so the unpin fast path can skip the lock.
    pending: AtomicUsize,
}

// SAFETY: `Participant.depth` is owner-thread-only by protocol (claimed
// via the `active` CAS); everything else reachable from Global is atomic,
// immutable after publication, or behind the garbage mutex.
unsafe impl Send for Global {}
unsafe impl Sync for Global {}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(0),
        participants: AtomicPtr::new(std::ptr::null_mut()),
        garbage: Mutex::new(Vec::new()),
        pending: AtomicUsize::new(0),
    })
}

impl Global {
    /// Reuse an inactive participant record or allocate and publish one.
    fn claim_participant(&self) -> *mut Participant {
        let mut cur = self.participants.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: participant records are never freed.
            let p = unsafe { &*cur };
            if !p.active.load(Ordering::Relaxed)
                && p.active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return cur;
            }
            cur = p.next;
        }
        let rec = Box::into_raw(Box::new(Participant {
            epoch: AtomicU64::new(NOT_PINNED),
            active: AtomicBool::new(true),
            next: std::ptr::null_mut(),
            depth: Cell::new(0),
        }));
        let mut head = self.participants.load(Ordering::Relaxed);
        loop {
            // SAFETY: `rec` is not yet shared.
            unsafe { (*rec).next = head };
            match self.participants.compare_exchange_weak(
                head,
                rec,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return rec,
                Err(h) => head = h,
            }
        }
    }

    /// Minimum epoch over currently pinned participants, or `None` if no
    /// thread is pinned at all.
    fn min_pinned(&self) -> Option<u64> {
        let mut min = None;
        let mut cur = self.participants.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: never freed.
            let p = unsafe { &*cur };
            // SeqCst pairs with the pin-side publish: a thread pinned
            // before a retire is guaranteed visible to this scan.
            let e = p.epoch.load(Ordering::SeqCst);
            if e != NOT_PINNED {
                min = Some(min.map_or(e, |m: u64| m.min(e)));
            }
            cur = p.next;
        }
        min
    }

    /// Advance the global epoch iff every pinned participant has reached it.
    fn try_advance(&self) {
        let g = self.epoch.load(Ordering::SeqCst);
        let mut cur = self.participants.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: never freed.
            let p = unsafe { &*cur };
            let e = p.epoch.load(Ordering::SeqCst);
            if e != NOT_PINNED && e != g {
                return; // a straggler is still in an older epoch
            }
            cur = p.next;
        }
        let _ = self
            .epoch
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst);
    }
}

thread_local! {
    static TLS_PARTICIPANT: Cell<*mut Participant> = const { Cell::new(std::ptr::null_mut()) };
    /// Releases this thread's participant record on thread exit.
    static TLS_RELEASE: ReleaseOnExit = const { ReleaseOnExit };
}

struct ReleaseOnExit;

impl Drop for ReleaseOnExit {
    fn drop(&mut self) {
        let rec = TLS_PARTICIPANT.with(|c| c.replace(std::ptr::null_mut()));
        if !rec.is_null() {
            // SAFETY: never freed; we are the owner thread relinquishing.
            let p = unsafe { &*rec };
            p.epoch.store(NOT_PINNED, Ordering::SeqCst);
            p.active.store(false, Ordering::Release);
        }
    }
}

fn local_participant() -> *mut Participant {
    TLS_PARTICIPANT.with(|c| {
        let mut rec = c.get();
        if rec.is_null() {
            rec = global().claim_participant();
            c.set(rec);
            TLS_RELEASE.with(|_| {}); // force the release guard to exist
        }
        rec
    })
}

/// An active pin on the current epoch. Reentrant: nested [`pin`] calls on
/// the same thread share the outermost pin. Not `Send`.
pub struct Guard {
    part: *mut Participant,
    _not_send: std::marker::PhantomData<*mut ()>,
}

/// Pin the current epoch: objects retired from now on (anywhere) will not
/// be freed while this guard lives.
pub fn pin() -> Guard {
    let part = local_participant();
    // SAFETY: never freed; depth is owner-thread-only.
    let p = unsafe { &*part };
    let depth = p.depth.get();
    p.depth.set(depth + 1);
    if depth == 0 {
        PINS.incr();
        let e = global().epoch.load(Ordering::SeqCst);
        p.epoch.store(e, Ordering::SeqCst);
        // StoreLoad: the pin must be globally visible before this thread
        // reads any shared pointers, or a collector could miss it.
        fence(Ordering::SeqCst);
    }
    Guard {
        part,
        _not_send: std::marker::PhantomData,
    }
}

impl Guard {
    /// Defer `f` until every epoch pinned *now* has been unpinned.
    ///
    /// # Safety
    ///
    /// The caller guarantees that whatever `f` frees is already
    /// unreachable to readers that pin *after* this call, and that `f`
    /// is sound to run on whichever thread later collects.
    pub unsafe fn defer_unchecked<F: FnOnce() + Send + 'static>(&self, f: F) {
        DEFERS.incr();
        obs::trace_event!(obs::EventKind::Retire, u32::MAX);
        let g = global();
        let epoch = g.epoch.load(Ordering::SeqCst);
        let pending = {
            let mut garbage = g.garbage.lock().unwrap();
            garbage.push((epoch, Box::new(f)));
            g.pending.store(garbage.len(), Ordering::Relaxed);
            garbage.len()
        };
        if pending >= COLLECT_THRESHOLD {
            collect();
        }
    }

    /// Eagerly attempt epoch advancement and run ripe deferred work.
    pub fn flush(&self) {
        collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // SAFETY: never freed; depth is owner-thread-only.
        let p = unsafe { &*self.part };
        let depth = p.depth.get() - 1;
        p.depth.set(depth);
        if depth == 0 {
            p.epoch.store(NOT_PINNED, Ordering::SeqCst);
            // Eager collect on outermost unpin (see module docs). Skip the
            // mutex entirely when there is nothing to do.
            if global().pending.load(Ordering::Relaxed) > 0 {
                collect();
            }
        }
    }
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").finish_non_exhaustive()
    }
}

/// Try to advance the epoch, then run every deferred closure whose retire
/// epoch is strictly below the minimum currently-pinned epoch.
pub fn collect() {
    let g = global();
    g.try_advance();
    let bound = g.min_pinned().unwrap_or(u64::MAX);
    let mut ripe = Vec::new();
    {
        let mut garbage = match g.garbage.try_lock() {
            Ok(guard) => guard,
            // Another thread is already collecting; its pass covers us.
            Err(std::sync::TryLockError::WouldBlock) => return,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        };
        let mut i = 0;
        while i < garbage.len() {
            if garbage[i].0 < bound {
                ripe.push(garbage.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        g.pending.store(garbage.len(), Ordering::Relaxed);
    }
    COLLECTS.incr();
    EBR_FREED.add(ripe.len() as u64);
    obs::trace_event!(obs::EventKind::Reclaim, ripe.len() as u32, u64::MAX);
    // Run outside the lock: a destructor may legitimately defer more work.
    for f in ripe {
        f();
    }
}

/// Number of deferred objects not yet reclaimed (diagnostic).
pub fn pending_count() -> usize {
    global().pending.load(Ordering::Relaxed)
}

/// The current global epoch, for external recyclers that stamp retired
/// resources instead of deferring closures (e.g. `zmsq`'s node slab).
///
/// A resource stamped with `global_epoch()` at retire time may be reused
/// once [`reclaim_bound`] exceeds the stamp — the same `stamp < bound`
/// rule [`collect`] applies to deferred garbage, so the resource is
/// guaranteed unreachable from every pinned critical section.
pub fn global_epoch() -> u64 {
    global().epoch.load(Ordering::SeqCst)
}

/// The reclamation bound: every retire stamp **strictly below** this
/// value is safe to recycle. Attempts to advance the epoch first, so
/// quiescent callers observe a fresh bound; with no thread pinned at all
/// the bound is `u64::MAX` (everything retired so far is reclaimable).
pub fn reclaim_bound() -> u64 {
    let g = global();
    g.try_advance();
    g.min_pinned().unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::{Arc, Mutex as StdMutex};
    use std::time::Duration;

    /// The collector is process-global, so tests that assert exact
    /// reclamation counts must not overlap.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    struct SendPtr(*mut u8, unsafe fn(*mut u8));
    // SAFETY: the pointee is exclusively owned by the deferred closure.
    unsafe impl Send for SendPtr {}

    fn defer_box<T: Send + 'static>(guard: &Guard, b: Box<T>) {
        unsafe fn drop_it<T>(p: *mut u8) {
            // SAFETY: produced by Box::into_raw::<T> below.
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        let p = SendPtr(Box::into_raw(b).cast(), drop_it::<T>);
        // SAFETY: `b` was owned, hence unreachable to all readers. The
        // whole-struct destructure keeps the capture as the Send wrapper.
        unsafe {
            guard.defer_unchecked(move || {
                let SendPtr(ptr, drop_fn) = { p };
                // SAFETY: sole owner of `ptr` (covered by the enclosing
                // unsafe block, which extends lexically into closures).
                drop_fn(ptr)
            })
        };
    }

    struct Tracked(Arc<StdAtomicU64>);
    impl Tracked {
        fn new(live: &Arc<StdAtomicU64>) -> Box<Self> {
            live.fetch_add(1, Ordering::SeqCst);
            Box::new(Self(Arc::clone(live)))
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn unpin_of_sole_thread_collects_everything() {
        let _s = serial();
        let live = Arc::new(StdAtomicU64::new(0));
        let guard = pin();
        for _ in 0..10 {
            defer_box(&guard, Tracked::new(&live));
        }
        // Our own pin is at the retire epoch: nothing may be freed yet.
        collect();
        assert_eq!(live.load(Ordering::SeqCst), 10);
        drop(guard);
        assert_eq!(live.load(Ordering::SeqCst), 0, "eager unpin collect");
    }

    #[test]
    fn nested_pins_share_the_outer_epoch() {
        let _s = serial();
        let live = Arc::new(StdAtomicU64::new(0));
        let outer = pin();
        let inner = pin();
        defer_box(&inner, Tracked::new(&live));
        drop(inner);
        // Outer pin still holds the epoch.
        collect();
        assert_eq!(live.load(Ordering::SeqCst), 1);
        drop(outer);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn remote_pin_blocks_reclamation() {
        let _s = serial();
        let live = Arc::new(StdAtomicU64::new(0));
        let hold = Arc::new(StdAtomicU64::new(0));
        let hold2 = Arc::clone(&hold);
        let pinned = Arc::new(StdAtomicU64::new(0));
        let pinned2 = Arc::clone(&pinned);
        let h = std::thread::spawn(move || {
            let _g = pin();
            pinned2.store(1, Ordering::SeqCst);
            while hold2.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        while pinned.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        {
            let guard = pin();
            defer_box(&guard, Tracked::new(&live));
        }
        collect();
        assert_eq!(
            live.load(Ordering::SeqCst),
            1,
            "remote pin must block frees"
        );
        hold.store(1, Ordering::SeqCst);
        h.join().unwrap();
        // The remote thread's unpin collected on its way out; make sure
        // regardless (its collect may have raced our assertion).
        collect();
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn threshold_triggers_collection_mid_stream() {
        let _s = serial();
        let live = Arc::new(StdAtomicU64::new(0));
        // No pin held between defers: each batch past the threshold frees.
        for _ in 0..(3 * COLLECT_THRESHOLD) {
            let guard = pin();
            defer_box(&guard, Tracked::new(&live));
            drop(guard);
        }
        collect();
        assert_eq!(live.load(Ordering::SeqCst), 0);
        assert_eq!(pending_count(), 0);
    }

    #[test]
    fn stress_swap_and_read() {
        let _s = serial();
        const READERS: usize = 4;
        const WRITES: u64 = 3_000;
        let live = Arc::new(StdAtomicU64::new(0));
        let shared = Arc::new(AtomicPtr::new(Box::into_raw(Tracked::new(&live))));
        let stop = Arc::new(StdAtomicU64::new(0));
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let s = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                while stop.load(Ordering::Acquire) == 0 {
                    let _g = pin();
                    let p = s.load(Ordering::Acquire);
                    if !p.is_null() {
                        // SAFETY: pinned before the load; the writer defers
                        // frees through the same collector.
                        let _ = unsafe { &(*p).0 };
                    }
                }
            }));
        }
        for _ in 0..WRITES {
            let next = Box::into_raw(Tracked::new(&live));
            let guard = pin();
            let old = shared.swap(next, Ordering::AcqRel);
            defer_box(&guard, unsafe { Box::from_raw(old) });
            drop(guard);
        }
        stop.store(1, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }
        let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        {
            let guard = pin();
            defer_box(&guard, unsafe { Box::from_raw(last) });
        }
        collect();
        assert_eq!(live.load(Ordering::SeqCst), 0, "all nodes reclaimed");
    }

    /// The external-recycler contract: a resource stamped while a guard
    /// is pinned must not become reclaimable until the guard drops, and
    /// must become reclaimable (bound > stamp) once it has.
    #[test]
    fn epoch_hooks_gate_external_recycling_on_pins() {
        let _serial = serial();
        let guard = pin();
        let stamp = global_epoch();
        // While we are pinned at (or below) `stamp`, the bound can never
        // exceed it: `stamp < bound` stays false.
        assert!(
            reclaim_bound() <= stamp,
            "bound passed a stamp taken inside a live pin"
        );
        drop(guard);
        // Unpinned: try_advance can now walk the epoch past the stamp.
        // Other tests' transient pins can stall one attempt, so poll.
        let mut bound = reclaim_bound();
        for _ in 0..1_000 {
            if bound > stamp {
                break;
            }
            std::thread::yield_now();
            bound = reclaim_bound();
        }
        assert!(bound > stamp, "bound never passed the stamp after unpin");
    }
}
