//! The hazard-pointer domain.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::SLOTS_PER_RECORD;

/// Process-global hazard-pointer counters, aggregated over every domain
/// (per-domain figures stay on [`Domain::retired_count`] /
/// [`Domain::freed_count`]). Exported by [`crate::obs::snapshot`].
pub(crate) static RETIRED: obs::Counter = obs::Counter::new();
pub(crate) static FREED: obs::Counter = obs::Counter::new();
pub(crate) static SCANS: obs::Counter = obs::Counter::new();
pub(crate) static HAZARDS_SCANNED: obs::Counter = obs::Counter::new();
pub(crate) static PROTECT_RETRIES: obs::Counter = obs::Counter::new();

/// A retired allocation awaiting reclamation.
struct Retired {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: a Retired is only ever handled by the domain's scan machinery;
// the caller of `retire` guaranteed the pointee is Send.
unsafe impl Send for Retired {}

unsafe fn drop_box<T>(p: *mut u8) {
    // SAFETY: `p` was produced by Box::into_raw::<T> in Domain::retire.
    unsafe { drop(Box::from_raw(p.cast::<T>())) }
}

/// Per-thread record: hazard slots published to reclaimers, plus the
/// owner-private free-slot bitmap and retired list.
#[repr(align(128))]
struct HpRecord {
    /// Next record in the domain's append-only intrusive list. Immutable
    /// once the record is published.
    next: *mut HpRecord,
    /// Claimed by some thread. Records are reused, never unlinked.
    active: AtomicBool,
    /// The hazard slots scanned by reclaimers.
    slots: [AtomicPtr<u8>; SLOTS_PER_RECORD],
    /// Bitmap of slots handed out — owner-thread only.
    slot_bitmap: Cell<u32>,
    /// Retired-but-not-yet-freed allocations — owner-thread only.
    retired: UnsafeCell<Vec<Retired>>,
}

impl HpRecord {
    fn new() -> Self {
        Self {
            next: std::ptr::null_mut(),
            active: AtomicBool::new(true),
            slots: Default::default(),
            slot_bitmap: Cell::new(0),
            retired: UnsafeCell::new(Vec::new()),
        }
    }
}

struct DomainCore {
    id: u64,
    head: AtomicPtr<HpRecord>,
    record_count: AtomicUsize,
    /// Diagnostic counters (relaxed): total retires and total frees.
    retired_total: AtomicU64,
    freed_total: AtomicU64,
}

// SAFETY: HpRecord's Cell/UnsafeCell fields are owner-thread-only by
// protocol (a record is claimed by exactly one thread via the `active`
// CAS); the cross-thread-visible fields (`next`, `active`, `slots`) are
// immutable or atomic.
unsafe impl Send for DomainCore {}
unsafe impl Sync for DomainCore {}

impl Drop for DomainCore {
    fn drop(&mut self) {
        // No TLS cache entry or HazardPointer can exist (each holds an Arc
        // to this core), so no hazard can be published: free everything.
        let mut rec = *self.head.get_mut();
        while !rec.is_null() {
            // SAFETY: records are only freed here, and `rec` came from
            // Box::into_raw in `claim_record`.
            let boxed = unsafe { Box::from_raw(rec) };
            let retired = boxed.retired.into_inner();
            for r in retired {
                // SAFETY: retire()'s contract — pointer is unreachable and
                // owned by the domain.
                unsafe { (r.drop_fn)(r.ptr) };
                self.freed_total.fetch_add(1, Ordering::Relaxed);
            }
            rec = boxed.next;
        }
    }
}

thread_local! {
    /// Per-thread cache of claimed records, keyed by domain id. The Arc
    /// keeps each domain core alive until this thread exits.
    static TLS_RECORDS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

struct TlsEntry {
    id: u64,
    /// Never read, but load-bearing: keeps the domain core (and therefore
    /// `record`'s backing allocation) alive until this thread exits.
    #[allow(dead_code)]
    core: Arc<DomainCore>,
    record: *mut HpRecord,
}

impl Drop for TlsEntry {
    fn drop(&mut self) {
        // SAFETY: the record is kept alive by `self.core`; we are its
        // owner-thread relinquishing it. Pending retireds stay in the
        // record and are inherited by the next claimant (or freed when the
        // domain core drops).
        let rec = unsafe { &*self.record };
        for slot in &rec.slots {
            slot.store(std::ptr::null_mut(), Ordering::Release);
        }
        rec.slot_bitmap.set(0);
        rec.active.store(false, Ordering::Release);
    }
}

/// A hazard-pointer domain (cheaply clonable handle).
///
/// Objects retired into a domain are freed once no [`HazardPointer`] of
/// that domain protects them — amortized, during later `retire` calls, an
/// explicit [`Domain::try_reclaim`], or at domain teardown.
#[derive(Clone)]
pub struct Domain {
    core: Arc<DomainCore>,
}

static NEXT_DOMAIN_ID: AtomicU64 = AtomicU64::new(1);

impl Domain {
    /// Create a fresh, independent domain.
    pub fn new() -> Self {
        Self {
            core: Arc::new(DomainCore {
                id: NEXT_DOMAIN_ID.fetch_add(1, Ordering::Relaxed),
                head: AtomicPtr::new(std::ptr::null_mut()),
                record_count: AtomicUsize::new(0),
                retired_total: AtomicU64::new(0),
                freed_total: AtomicU64::new(0),
            }),
        }
    }

    /// The process-wide shared domain. Convenient when many short-lived
    /// structures share reclamation; never torn down.
    pub fn global() -> &'static Domain {
        static GLOBAL: std::sync::OnceLock<Domain> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(Domain::new)
    }

    /// Get (or claim) this thread's record for this domain.
    fn thread_record(&self) -> *mut HpRecord {
        let id = self.core.id;
        TLS_RECORDS.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some(e) = entries.iter().find(|e| e.id == id) {
                return e.record;
            }
            let record = self.claim_record();
            entries.push(TlsEntry {
                id,
                core: Arc::clone(&self.core),
                record,
            });
            record
        })
    }

    /// Reuse an inactive record or allocate and publish a new one.
    fn claim_record(&self) -> *mut HpRecord {
        let mut cur = self.core.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records live as long as the core, which we hold.
            let rec = unsafe { &*cur };
            if !rec.active.load(Ordering::Relaxed)
                && rec
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return cur;
            }
            cur = rec.next;
        }
        // Allocate and push at head.
        let rec = Box::into_raw(Box::new(HpRecord::new()));
        let mut head = self.core.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `rec` is not yet shared; we own it exclusively.
            unsafe { (*rec).next = head };
            match self.core.head.compare_exchange_weak(
                head,
                rec,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.core.record_count.fetch_add(1, Ordering::Relaxed);
        rec
    }

    /// Acquire a hazard slot for the calling thread.
    ///
    /// # Panics
    ///
    /// If the thread already holds [`SLOTS_PER_RECORD`] simultaneous
    /// hazard pointers in this domain.
    pub fn hazard(&self) -> HazardPointer {
        let record = self.thread_record();
        // SAFETY: we are the owner thread of `record`.
        let rec = unsafe { &*record };
        let bitmap = rec.slot_bitmap.get();
        let idx = (!bitmap).trailing_zeros() as usize;
        assert!(
            idx < SLOTS_PER_RECORD,
            "thread exhausted its {SLOTS_PER_RECORD} hazard slots"
        );
        rec.slot_bitmap.set(bitmap | (1 << idx));
        HazardPointer {
            core: Arc::clone(&self.core),
            record,
            idx,
        }
    }

    /// Hand ownership of `ptr` to the domain; it will be dropped (as a
    /// `Box<T>`) once no hazard pointer protects it.
    ///
    /// # Safety
    ///
    /// * `ptr` came from `Box::into_raw` and is not aliased by any owner.
    /// * `ptr` has been made unreachable to *new* readers (no shared
    ///   location still yields it); threads that already protected it are
    ///   exactly what hazard pointers handle.
    /// * `ptr` is not retired twice.
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        det::det_point!("smr.retire");
        let record = self.thread_record();
        // SAFETY: owner-thread access to the retired list.
        let retired = unsafe { &mut *(*record).retired.get() };
        retired.push(Retired {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
        });
        self.core.retired_total.fetch_add(1, Ordering::Relaxed);
        RETIRED.incr();
        obs::trace_event!(obs::EventKind::Retire, self.core.id as u32);
        if retired.len() >= self.scan_threshold() {
            self.scan(record);
        }
    }

    fn scan_threshold(&self) -> usize {
        let capacity = self.core.record_count.load(Ordering::Relaxed) * SLOTS_PER_RECORD;
        (2 * capacity).max(64)
    }

    /// Collect all published hazards and free every retired object (of the
    /// calling thread's record) not protected by one.
    fn scan(&self, record: *mut HpRecord) {
        SCANS.incr();
        let mut hazards: Vec<usize> =
            Vec::with_capacity(self.core.record_count.load(Ordering::Relaxed) * SLOTS_PER_RECORD);
        let mut cur = self.core.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records live as long as the core.
            let rec = unsafe { &*cur };
            for slot in &rec.slots {
                // SeqCst pairs with the SeqCst publish in
                // HazardPointer::protect: any reader that validated its
                // pointer *after* our caller unlinked the object is
                // guaranteed visible here.
                let p = slot.load(Ordering::SeqCst);
                if !p.is_null() {
                    hazards.push(p as usize);
                }
            }
            cur = rec.next;
        }
        hazards.sort_unstable();
        HAZARDS_SCANNED.add(hazards.len() as u64);
        obs::trace_event!(obs::EventKind::HazardScan, hazards.len() as u32);

        // SAFETY: owner-thread access.
        let retired = unsafe { &mut *(*record).retired.get() };
        let before = retired.len();
        retired.retain(|r| {
            if hazards.binary_search(&(r.ptr as usize)).is_ok() {
                true
            } else {
                // SAFETY: not protected by any hazard, unreachable to new
                // readers per retire()'s contract — sole owner frees.
                unsafe { (r.drop_fn)(r.ptr) };
                false
            }
        });
        let freed = (before - retired.len()) as u64;
        self.core.freed_total.fetch_add(freed, Ordering::Relaxed);
        FREED.add(freed);
        obs::trace_event!(obs::EventKind::Reclaim, freed as u32, retired.len() as u64);
    }

    /// Eagerly run a reclamation scan over the calling thread's retired
    /// list. Returns how many objects remain deferred (on this thread).
    pub fn try_reclaim(&self) -> usize {
        let record = self.thread_record();
        self.scan(record);
        // SAFETY: owner-thread access.
        unsafe { (*(*record).retired.get()).len() }
    }

    /// Total objects ever retired into this domain (diagnostic).
    pub fn retired_count(&self) -> u64 {
        self.core.retired_total.load(Ordering::Relaxed)
    }

    /// Total objects freed so far (diagnostic; the remainder is freed by
    /// later scans or domain teardown).
    pub fn freed_count(&self) -> u64 {
        self.core.freed_total.load(Ordering::Relaxed)
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("id", &self.core.id)
            .field("records", &self.core.record_count.load(Ordering::Relaxed))
            .field("retired", &self.retired_count())
            .field("freed", &self.freed_count())
            .finish()
    }
}

/// An acquired hazard slot. Not `Send`: it belongs to the acquiring
/// thread's record.
pub struct HazardPointer {
    core: Arc<DomainCore>,
    record: *mut HpRecord,
    idx: usize,
}

impl HazardPointer {
    #[inline]
    fn slot(&self) -> &AtomicPtr<u8> {
        // SAFETY: the record lives as long as `self.core`.
        unsafe { &(*self.record).slots[self.idx] }
    }

    /// Protect the pointer currently stored in `src`.
    ///
    /// Publishes a candidate, re-reads `src`, and retries until the two
    /// agree; on return the pointee (if non-null) cannot be freed until
    /// this hazard is cleared or dropped. The returned pointer is safe to
    /// dereference as long as the usual shared-reference rules hold.
    #[inline]
    pub fn protect<T>(&mut self, src: &AtomicPtr<T>) -> *mut T {
        let mut p = src.load(Ordering::Relaxed);
        loop {
            // SeqCst store + SeqCst re-load forms the StoreLoad barrier
            // hazard pointers need: our publish is globally visible before
            // we validate, so a reclaimer that unlinked `p` before our
            // validation must see our hazard in its scan.
            self.slot().store(p.cast(), Ordering::SeqCst);
            // The publish/validate window: a reclaimer that unlinked `p`
            // races our re-load — the decision point lets the scheduler
            // interleave a full retire+scan here.
            det::det_point!("smr.protect-validate");
            let q = src.load(Ordering::SeqCst);
            if q == p {
                // Chaos: treat this successful validation as failed and go
                // around again (republish + revalidate). Arm with
                // Prob/EveryNth/Once — Always livelocks by construction.
                fault::fail_point!("smr.protect-retry", {
                    PROTECT_RETRIES.incr();
                    obs::trace_event!(obs::EventKind::ProtectRetry);
                    continue;
                });
                return p;
            }
            PROTECT_RETRIES.incr();
            obs::trace_event!(obs::EventKind::ProtectRetry);
            p = q;
        }
    }

    /// Publish a known pointer without validation. The caller must
    /// re-validate reachability itself before dereferencing.
    #[inline]
    pub fn protect_raw<T>(&mut self, ptr: *mut T) {
        self.slot().store(ptr.cast(), Ordering::SeqCst);
    }

    /// Clear the slot, releasing whatever it protected.
    #[inline]
    pub fn clear(&mut self) {
        self.slot().store(std::ptr::null_mut(), Ordering::Release);
    }
}

impl Drop for HazardPointer {
    fn drop(&mut self) {
        // SAFETY: owner-thread; record outlives via `core`.
        let rec = unsafe { &*self.record };
        rec.slots[self.idx].store(std::ptr::null_mut(), Ordering::Release);
        rec.slot_bitmap
            .set(rec.slot_bitmap.get() & !(1 << self.idx));
        let _ = &self.core; // keep-alive is the Arc itself
    }
}

impl std::fmt::Debug for HazardPointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HazardPointer")
            .field("slot", &self.idx)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
    use std::sync::Arc as StdArc;

    /// Counts live instances so tests can assert exact reclamation.
    struct Tracked {
        live: StdArc<AtomicU64>,
        value: u64,
    }
    impl Tracked {
        fn new(live: &StdArc<AtomicU64>, value: u64) -> Box<Self> {
            live.fetch_add(1, Ordering::SeqCst);
            Box::new(Self {
                live: StdArc::clone(live),
                value,
            })
        }
    }
    impl Drop for Tracked {
        fn drop(&mut self) {
            self.live.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn retire_without_hazard_frees_on_scan() {
        let live = StdArc::new(AtomicU64::new(0));
        let domain = Domain::new();
        for i in 0..10 {
            let b = Tracked::new(&live, i);
            // SAFETY: fresh box, unreachable to anyone.
            unsafe { domain.retire(Box::into_raw(b)) };
        }
        assert_eq!(domain.try_reclaim(), 0);
        assert_eq!(live.load(Ordering::SeqCst), 0);
        assert_eq!(domain.freed_count(), 10);
    }

    #[test]
    fn hazard_blocks_reclamation_until_cleared() {
        let live = StdArc::new(AtomicU64::new(0));
        let domain = Domain::new();
        let b = Tracked::new(&live, 42);
        let shared = AtomicPtr::new(Box::into_raw(b));

        let mut hp = domain.hazard();
        let p = hp.protect(&shared);
        // SAFETY: protected and still reachable.
        assert_eq!(unsafe { (*p).value }, 42);

        // Unlink and retire while protected.
        let old = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
        assert_eq!(old, p);
        // SAFETY: unlinked; we are the retiring owner.
        unsafe { domain.retire(old) };

        assert_eq!(
            domain.try_reclaim(),
            1,
            "protected object must survive scan"
        );
        assert_eq!(live.load(Ordering::SeqCst), 1);
        // SAFETY: hazard still held.
        assert_eq!(unsafe { (*p).value }, 42);

        hp.clear();
        assert_eq!(domain.try_reclaim(), 0);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn hazard_drop_releases_protection() {
        let live = StdArc::new(AtomicU64::new(0));
        let domain = Domain::new();
        let shared = AtomicPtr::new(Box::into_raw(Tracked::new(&live, 1)));
        {
            let mut hp = domain.hazard();
            let p = hp.protect(&shared);
            let old = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
            assert_eq!(old, p);
            unsafe { domain.retire(old) };
            assert_eq!(domain.try_reclaim(), 1);
        }
        assert_eq!(domain.try_reclaim(), 0);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn slots_are_reusable_and_bounded() {
        let domain = Domain::new();
        for _ in 0..100 {
            let hps: Vec<_> = (0..crate::SLOTS_PER_RECORD)
                .map(|_| domain.hazard())
                .collect();
            drop(hps);
        }
        // After drops, all slots are free again:
        let _all: Vec<_> = (0..crate::SLOTS_PER_RECORD)
            .map(|_| domain.hazard())
            .collect();
    }

    #[test]
    #[should_panic(expected = "hazard slots")]
    fn exhausting_slots_panics() {
        let domain = Domain::new();
        let _hps: Vec<_> = (0..=crate::SLOTS_PER_RECORD)
            .map(|_| domain.hazard())
            .collect();
    }

    #[test]
    fn domain_drop_frees_outstanding_retired() {
        let live = StdArc::new(AtomicU64::new(0));
        {
            let domain = Domain::new();
            for i in 0..5 {
                unsafe { domain.retire(Box::into_raw(Tracked::new(&live, i))) };
            }
            assert_eq!(live.load(Ordering::SeqCst), 5);
            // No scan ran (threshold not reached) — teardown must free.
        }
        // The TLS entry still holds the core until this thread exits, so
        // force teardown from another thread instead:
        let live2 = StdArc::new(AtomicU64::new(0));
        let l = StdArc::clone(&live2);
        std::thread::spawn(move || {
            let domain = Domain::new();
            for i in 0..5 {
                unsafe { domain.retire(Box::into_raw(Tracked::new(&l, i))) };
            }
        })
        .join()
        .unwrap();
        assert_eq!(
            live2.load(Ordering::SeqCst),
            0,
            "thread exit + domain drop must free all retired objects"
        );
    }

    #[test]
    fn records_are_reused_across_threads() {
        let domain = Domain::new();
        for _ in 0..8 {
            let d = domain.clone();
            std::thread::spawn(move || {
                let _hp = d.hazard();
            })
            .join()
            .unwrap();
        }
        assert!(
            domain.core.record_count.load(Ordering::Relaxed) <= 2,
            "sequential threads must reuse records, got {}",
            domain.core.record_count.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn concurrent_swap_and_read_stress() {
        const READERS: usize = 4;
        const WRITES: u64 = 5_000;
        let live = StdArc::new(AtomicU64::new(0));
        let domain = Domain::new();
        let shared = StdArc::new(AtomicPtr::new(Box::into_raw(Tracked::new(&live, 0))));
        let stop = StdArc::new(AtomicU64::new(0));

        let mut readers = Vec::new();
        for _ in 0..READERS {
            let d = domain.clone();
            let s = StdArc::clone(&shared);
            let stop = StdArc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut hp = d.hazard();
                let mut checksum = 0u64;
                while stop.load(Ordering::Acquire) == 0 {
                    let p = hp.protect(&s);
                    if !p.is_null() {
                        // SAFETY: protected by hp; writers retire through
                        // the same domain.
                        checksum ^= unsafe { (*p).value };
                    }
                    hp.clear();
                }
                checksum
            }));
        }

        for i in 1..=WRITES {
            let next = Box::into_raw(Tracked::new(&live, i));
            let old = shared.swap(next, Ordering::SeqCst);
            // SAFETY: unlinked by the swap; single writer owns retirement.
            unsafe { domain.retire(old) };
        }
        stop.store(1, Ordering::Release);
        for r in readers {
            r.join().unwrap();
        }

        // Free the final node too.
        let last = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { domain.retire(last) };
        while domain.try_reclaim() != 0 {}
        assert_eq!(live.load(Ordering::SeqCst), 0, "all nodes reclaimed");
        assert_eq!(domain.retired_count(), WRITES + 1);
    }

    /// A forced validation retry must be invisible to the caller: same
    /// pointer back, hazard still published, protection still effective.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_protect_retry_is_transparent() {
        let _x = fault::exclusive();
        fault::set_seed(21);
        fault::configure(
            "smr.protect-retry",
            fault::Policy::new(fault::Trigger::EveryNth(2)),
        );
        let live = StdArc::new(AtomicU64::new(0));
        let domain = Domain::new();
        let shared = AtomicPtr::new(Box::into_raw(Tracked::new(&live, 9)));
        let mut hp = domain.hazard();
        for _ in 0..8 {
            let p = hp.protect(&shared);
            // SAFETY: protected.
            assert_eq!(unsafe { (*p).value }, 9);
        }
        // Protection survives the retries: retire while protected defers.
        let old = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
        unsafe { domain.retire(old) };
        assert_eq!(domain.try_reclaim(), 1);
        hp.clear();
        assert_eq!(domain.try_reclaim(), 0);
        assert!(fault::hit_count("smr.protect-retry") >= 4);
        fault::reset();
    }

    #[test]
    fn protect_tracks_concurrent_updates() {
        // protect() must never return a pointer that differs from the
        // last-published value it validated against.
        let domain = Domain::new();
        let a = Box::into_raw(Box::new(7u64));
        let b = Box::into_raw(Box::new(9u64));
        let shared = AtomicPtr::new(a);
        let mut hp = domain.hazard();
        let p = hp.protect(&shared);
        assert_eq!(p, a);
        shared.store(b, Ordering::SeqCst);
        let p2 = hp.protect(&shared);
        assert_eq!(p2, b);
        // SAFETY: we own both allocations; no other threads.
        unsafe {
            drop(Box::from_raw(a));
            drop(Box::from_raw(b));
        }
    }
}
