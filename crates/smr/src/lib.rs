//! Safe memory reclamation without garbage collection.
//!
//! The paper's §3.5 argues that ZMSQ is amenable to protection by **hazard
//! pointers** (Michael, 2004) because the algorithm holds references to at
//! most a few shared objects at a time, and most accesses happen under a
//! `TNode` lock. This crate provides that substrate from scratch:
//!
//! * [`Domain`] — a hazard-pointer domain: per-thread records with a small
//!   number of hazard slots, per-thread retired lists, and an amortized
//!   scan that frees retired objects no active hazard points to.
//! * [`HazardPointer`] — an acquired slot; `protect` publishes a pointer
//!   with the load/publish/validate loop.
//! * [`LeakyDomain`] — the null reclaimer backing the paper's
//!   `ZMSQ (leak)` measurement arm: `retire` leaks.
//! * [`ebr`] — a process-global epoch-based collector for the lock-free
//!   baselines, whose unbounded traversals don't fit per-pointer hazards.
//!
//! Always-on counters (retires, scans, frees, hazard-validation retries,
//! epoch pins/collects) are exported by [`obs::snapshot`]; with
//! `obs/obs-trace` the same sites also emit flight-recorder events.
//!
//! # Design
//!
//! A domain owns an append-only intrusive list of `HpRecord`s. A thread
//! claims a record by CAS-ing its `active` flag, caches the claim in TLS,
//! and releases it (for reuse by other threads) when the thread exits.
//! Records are only freed when the domain itself is dropped; the domain
//! core is reference-counted from every TLS cache entry and every live
//! [`HazardPointer`], so records can never dangle.
//!
//! Retired objects stay in the retiring thread's record until the list
//! exceeds a threshold proportional to the total number of hazard slots;
//! the scan then collects every published hazard into a sorted set and
//! frees exactly the retired objects not present in it — the classic
//! wait-free-readers, lock-free-reclaimers structure of the original paper.
//!
//! # Example
//!
//! ```
//! use smr::Domain;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = Domain::new();
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(41_u64)));
//!
//! // Reader: protect before dereferencing.
//! let mut hp = domain.hazard();
//! let p = hp.protect(&shared);
//! assert_eq!(unsafe { *p }, 41);
//!
//! // Writer: unlink, then hand the old object to the domain.
//! let fresh = Box::into_raw(Box::new(42_u64));
//! let old = shared.swap(fresh, Ordering::AcqRel);
//! unsafe { domain.retire(old) };        // deferred: the reader holds it
//!
//! assert_eq!(domain.try_reclaim(), 1);  // still protected
//! hp.clear();
//! assert_eq!(domain.try_reclaim(), 0);  // freed now
//! # let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! # unsafe { domain.retire(last) };
//! ```

#![warn(missing_docs)]

mod domain;
pub mod ebr;
mod leaky;
pub mod obs;

pub use domain::{Domain, HazardPointer};
pub use leaky::LeakyDomain;

/// How many hazard slots each per-thread record carries.
///
/// ZMSQ needs at most two simultaneously (§3.5: "we can use two hazard
/// pointers per thread", plus possibly one more for the set
/// implementation); 8 leaves comfortable slack for composed uses.
pub const SLOTS_PER_RECORD: usize = 8;
