//! The null reclaimer.
//!
//! The paper's evaluation includes a "ZMSQ (leak)" arm that skips memory
//! reclamation entirely, isolating the cost of hazard pointers (§4.5:
//! "the overhead of memory safety can be seen in the difference between
//! the ZMSQ and ZMSQ (leak) curves"). [`LeakyDomain`] mirrors the
//! [`Domain`](crate::Domain) retire API but intentionally leaks, while
//! counting what it leaked so tests and benches can report it.

use std::sync::atomic::{AtomicU64, Ordering};

/// A reclamation domain that never reclaims.
#[derive(Debug, Default)]
pub struct LeakyDomain {
    leaked: AtomicU64,
}

impl LeakyDomain {
    /// Create a new leaky domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// "Retire" `ptr` by leaking it.
    ///
    /// # Safety
    ///
    /// `ptr` must originate from `Box::into_raw` and must not be freed or
    /// retired elsewhere afterwards (it never will be freed here).
    pub unsafe fn retire<T: Send>(&self, ptr: *mut T) {
        debug_assert!(!ptr.is_null());
        self.leaked.fetch_add(1, Ordering::Relaxed);
        // Intentionally dropped on the floor.
    }

    /// Number of allocations leaked so far.
    pub fn leaked_count(&self) -> u64 {
        self.leaked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_leaks() {
        let d = LeakyDomain::new();
        for i in 0..3 {
            // SAFETY: fresh boxes, never touched again.
            unsafe { d.retire(Box::into_raw(Box::new(i))) };
        }
        assert_eq!(d.leaked_count(), 3);
    }
}
