//! Observability exports for the reclamation substrate.
//!
//! Hazard-pointer and EBR counters are process-global `obs::Counter`
//! statics (recording stays a single relaxed `fetch_add`; per-domain
//! figures remain on [`crate::Domain::retired_count`] and
//! [`crate::Domain::freed_count`]). This module snapshots them.

use crate::{domain, ebr};

/// Point-in-time copy of every reclamation counter, plus the derived
/// `hp.reclaim_ratio` (freed / retired over all hazard-pointer domains —
/// below 1.0 means objects are still deferred or were leaked).
pub fn snapshot() -> obs::Snapshot {
    let mut s = obs::Snapshot::new();
    let retired = domain::RETIRED.get();
    let freed = domain::FREED.get();
    s.push_counter("hp.retired", retired);
    s.push_counter("hp.freed", freed);
    s.push_counter("hp.scans", domain::SCANS.get());
    s.push_counter("hp.hazards_scanned", domain::HAZARDS_SCANNED.get());
    s.push_counter("hp.protect_retries", domain::PROTECT_RETRIES.get());
    s.push_ratio(
        "hp.reclaim_ratio",
        if retired == 0 {
            1.0
        } else {
            freed as f64 / retired as f64
        },
    );
    s.push_counter("ebr.pins", ebr::PINS.get());
    s.push_counter("ebr.defers", ebr::DEFERS.get());
    s.push_counter("ebr.collects", ebr::COLLECTS.get());
    s.push_counter("ebr.freed", ebr::EBR_FREED.get());
    s.push_gauge("ebr.pending", ebr::pending_count() as i64);
    s
}

#[cfg(test)]
mod tests {
    use crate::Domain;

    #[test]
    fn snapshot_reflects_reclamation_activity() {
        // Counters are process-global and other tests run concurrently,
        // so assert deltas on a before/after pair of snapshots.
        let before = super::snapshot();
        let domain = Domain::new();
        for i in 0..4u64 {
            // SAFETY: fresh box, unreachable to anyone.
            unsafe { domain.retire(Box::into_raw(Box::new(i))) };
        }
        assert_eq!(domain.try_reclaim(), 0);
        {
            let g = crate::ebr::pin();
            // SAFETY: owned box, unreachable to all readers; freeing a
            // Box<u64> is sound on any thread.
            let p = Box::into_raw(Box::new(7u64)) as usize;
            unsafe { g.defer_unchecked(move || drop(Box::from_raw(p as *mut u64))) };
        }
        let after = super::snapshot();
        let d = |name: &str| after.counter(name).unwrap() - before.counter(name).unwrap();
        assert!(d("hp.retired") >= 4);
        assert!(d("hp.freed") >= 4);
        assert!(d("hp.scans") >= 1);
        assert!(d("ebr.pins") >= 1);
        assert!(d("ebr.defers") >= 1);
        assert!(d("ebr.collects") >= 1);
        assert!(after.ratio("hp.reclaim_ratio").unwrap() > 0.0);
    }
}
