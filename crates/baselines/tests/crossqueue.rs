//! Cross-cutting baseline behaviour tests: the semantic differences the
//! paper's comparison tables rely on must actually hold.

use baselines::{CoarseHeap, FifoQueue, Mound, MultiQueue, SprayList, StrictSkiplistPq};
use pq_traits::ConcurrentPriorityQueue;

/// Strict queues agree exactly on any input.
#[test]
fn strict_queues_agree() {
    let heap = CoarseHeap::new();
    let mound = Mound::new();
    let skip = StrictSkiplistPq::new();
    let mut x = 777u64;
    for _ in 0..5_000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 100_000;
        heap.insert(k, k);
        mound.insert(k, k);
        skip.insert(k, k);
    }
    loop {
        let a = heap.extract_max().map(|p| p.0);
        let b = mound.extract_max().map(|p| p.0);
        let c = skip.extract_max().map(|p| p.0);
        assert_eq!(a, b, "mound diverged from heap");
        assert_eq!(a, c, "skiplist diverged from heap");
        if a.is_none() {
            break;
        }
    }
}

/// Relaxed queues return *some* permutation of the inserted multiset.
#[test]
fn relaxed_queues_permute_without_loss() {
    let queues: Vec<Box<dyn ConcurrentPriorityQueue<u64> + Sync>> = vec![
        Box::new(SprayList::new(8)),
        Box::new(MultiQueue::new(4, 2)),
        Box::new(FifoQueue::new()),
    ];
    for q in &queues {
        let mut expect: Vec<u64> = (0..3_000u64).map(|i| (i * 31) % 997).collect();
        for &k in &expect {
            q.insert(k, k);
        }
        let mut got = Vec::new();
        let mut stall = 0;
        while got.len() < expect.len() {
            match q.extract_max() {
                Some((k, v)) => {
                    assert_eq!(k, v);
                    got.push(k);
                    stall = 0;
                }
                None => {
                    stall += 1;
                    assert!(stall < 1_000_000, "{} lost elements", q.name());
                }
            }
        }
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got, "{}", q.name());
    }
}

/// Every baseline inherits the batched entry points from the trait's
/// default loops: `insert_batch` drains its input, `extract_batch`
/// returns the same multiset, and a short read on an emptying queue
/// reports the true count.
#[test]
fn baselines_inherit_default_batched_ops() {
    let queues: Vec<Box<dyn ConcurrentPriorityQueue<u64> + Sync>> = vec![
        Box::new(CoarseHeap::new()),
        Box::new(Mound::new()),
        Box::new(StrictSkiplistPq::new()),
        Box::new(SprayList::new(8)),
        Box::new(MultiQueue::new(4, 2)),
        Box::new(FifoQueue::new()),
    ];
    for q in &queues {
        let mut batch: Vec<(u64, u64)> = (0..500u64).map(|i| ((i * 31) % 997, i)).collect();
        let mut expect: Vec<u64> = batch.iter().map(|&(k, _)| k).collect();
        q.insert_batch(&mut batch);
        assert!(batch.is_empty(), "{}: insert_batch must drain", q.name());
        let mut out = Vec::new();
        let mut stall = 0;
        while out.len() < expect.len() {
            if q.extract_batch(&mut out, 64) == 0 {
                stall += 1;
                assert!(stall < 1_000_000, "{} lost elements", q.name());
            }
        }
        // Drained: a further batched read must report zero.
        assert_eq!(q.extract_batch(&mut out, 8), 0, "{}", q.name());
        let mut got: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(expect, got, "{}", q.name());
    }
}

/// The rank-quality ordering the paper's Table 1 depends on: strict is
/// perfect, relaxed queues are good, FIFO is chance-level.
#[test]
fn rank_quality_ordering() {
    fn mean_rank_of_first_100<Q: ConcurrentPriorityQueue<u64>>(q: &Q) -> u64 {
        for i in 0..10_000u64 {
            // Insert in shuffled order so FIFO ≈ uniform.
            let k = (i * 7919) % 10_000;
            q.insert(k, k);
        }
        let mut sum = 0;
        let mut got = 0;
        while got < 100 {
            if let Some((k, _)) = q.extract_max() {
                sum += k;
                got += 1;
            }
        }
        sum / 100
    }
    let strict = mean_rank_of_first_100(&CoarseHeap::new());
    let spray = mean_rank_of_first_100(&SprayList::new(8));
    let multi = mean_rank_of_first_100(&MultiQueue::new(4, 2));
    let fifo = mean_rank_of_first_100(&FifoQueue::new());
    assert!(strict > 9_900, "strict mean {strict}");
    assert!(spray > fifo, "spray ({spray}) must beat fifo ({fifo})");
    assert!(multi > fifo, "multiqueue ({multi}) must beat fifo ({fifo})");
    assert!(
        (4_000..6_000).contains(&fifo),
        "fifo ≈ uniform mean, got {fifo}"
    );
}

/// The mound is strict even under concurrent mixed load (per-thread
/// monotonicity of concurrent-extract phases).
#[test]
fn mound_concurrent_extract_monotone() {
    use std::sync::Arc;
    let m = Arc::new(Mound::new());
    for i in 0..20_000u64 {
        m.insert((i * 48271) % 65_536, i);
    }
    let mut handles = Vec::new();
    for _ in 0..4 {
        let m = Arc::clone(&m);
        handles.push(std::thread::spawn(move || {
            let mut prev = u64::MAX;
            let mut n = 0u64;
            while let Some((k, _)) = m.extract_max() {
                assert!(k <= prev, "mound local order violated");
                prev = k;
                n += 1;
            }
            n
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 20_000);
}
