//! Priority-blind FIFO queue — the accuracy floor of Table 1.
//!
//! The paper contextualizes accuracy numbers against a FIFO: a relaxed
//! priority queue that pays no attention to priorities at all would
//! return elements in arrival order, scoring only by chance ("At 32
//! threads and beyond, the SprayList is even worse than a FIFO queue").

use std::collections::VecDeque;
use std::sync::Mutex;

use pq_traits::ConcurrentPriorityQueue;

/// MPMC FIFO (a mutex-protected ring deque) exposed through the
/// priority-queue trait. `extract_max` is simply `pop_front`. The FIFO is
/// an accuracy yardstick, never a throughput contender, so the coarse
/// lock is fine.
pub struct FifoQueue<V> {
    inner: Mutex<VecDeque<(u64, V)>>,
}

impl<V> FifoQueue<V> {
    /// New empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }
}

impl<V> Default for FifoQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for FifoQueue<V> {
    fn insert(&self, prio: u64, value: V) {
        self.inner.lock().unwrap().push_back((prio, value));
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        self.inner.lock().unwrap().pop_front()
    }

    fn name(&self) -> String {
        "fifo".into()
    }

    fn len_hint(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_ignores_priorities() {
        let q = FifoQueue::new();
        q.insert(1, "first");
        q.insert(100, "second");
        q.insert(50, "third");
        assert_eq!(q.extract_max(), Some((1, "first")));
        assert_eq!(q.extract_max(), Some((100, "second")));
        assert_eq!(q.extract_max(), Some((50, "third")));
        assert_eq!(q.extract_max(), None);
    }
}
