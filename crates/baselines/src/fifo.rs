//! Priority-blind FIFO queue — the accuracy floor of Table 1.
//!
//! The paper contextualizes accuracy numbers against a FIFO: a relaxed
//! priority queue that pays no attention to priorities at all would
//! return elements in arrival order, scoring only by chance ("At 32
//! threads and beyond, the SprayList is even worse than a FIFO queue").

use crossbeam::queue::SegQueue;
use pq_traits::ConcurrentPriorityQueue;

/// Lock-free MPMC FIFO (crossbeam's segmented queue) exposed through the
/// priority-queue trait. `extract_max` is simply `pop_front`.
pub struct FifoQueue<V> {
    inner: SegQueue<(u64, V)>,
}

impl<V> FifoQueue<V> {
    /// New empty queue.
    pub fn new() -> Self {
        Self { inner: SegQueue::new() }
    }
}

impl<V> Default for FifoQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for FifoQueue<V> {
    fn insert(&self, prio: u64, value: V) {
        self.inner.push((prio, value));
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        self.inner.pop()
    }

    fn name(&self) -> String {
        "fifo".into()
    }

    fn len_hint(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_ignores_priorities() {
        let q = FifoQueue::new();
        q.insert(1, "first");
        q.insert(100, "second");
        q.insert(50, "third");
        assert_eq!(q.extract_max(), Some((1, "first")));
        assert_eq!(q.extract_max(), Some((100, "second")));
        assert_eq!(q.extract_max(), Some((50, "third")));
        assert_eq!(q.extract_max(), None);
    }
}
