//! The Mound (Liu & Spear, 2012) — §2.2 of the ZMSQ paper.
//!
//! A binary tree of sorted lists with the invariant `parent.head >=
//! child.head`. Insertion picks a random leaf, binary-searches the root
//! path for the node where the new key can become the list head without
//! violating the parent, and pushes it there; `extract_max` pops the
//! root's head and recursively swaps lists downward to restore the
//! invariant.
//!
//! This is exactly ZMSQ *minus* its contributions: no forced non-head
//! insertion, no parent-min swap, no set splitting, no extraction pool,
//! no blocking. The paper shows that under mixed workloads the mound's
//! lists collapse toward length 1 ("the mound becomes a heap"), which is
//! the behaviour the comparison benchmarks reproduce. This port uses the
//! lock-based mound variant (one trylock per node, parent locked before
//! child), matching the synchronization style of the rest of the repo.
//!
//! Because each insert lands *above* all existing keys of its node, a
//! node's list is stored as an ascending `Vec` — push/pop at the tail are
//! the head operations.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use pq_traits::ConcurrentPriorityQueue;
use zmsq_sync::{Backoff, RawTryLock, TatasLock};

const MAX_LEVELS: usize = 26;

#[repr(align(128))]
struct MNode<V> {
    lock: TatasLock,
    /// Cached head priority + 1; 0 means empty. Read optimistically.
    head: AtomicU64,
    count: AtomicU32,
    /// Ascending by priority; last element is the head (max).
    list: UnsafeCell<Vec<(u64, V)>>,
}

// SAFETY: `list` is only touched under `lock`; the rest is atomic.
unsafe impl<V: Send> Sync for MNode<V> {}
unsafe impl<V: Send> Send for MNode<V> {}

impl<V> MNode<V> {
    fn new() -> Self {
        Self {
            lock: TatasLock::default(),
            head: AtomicU64::new(0),
            count: AtomicU32::new(0),
            list: UnsafeCell::new(Vec::new()),
        }
    }

    /// Head priority with empty = `None` (−∞ under `Option` ordering).
    #[inline]
    fn head_key(&self) -> Option<u64> {
        match self.head.load(Ordering::Relaxed) {
            0 => None,
            h => Some(h - 1),
        }
    }

    /// # Safety: lock must be held.
    #[allow(clippy::mut_from_ref)]
    unsafe fn list_mut(&self) -> &mut Vec<(u64, V)> {
        // SAFETY: caller holds the lock.
        unsafe { &mut *self.list.get() }
    }

    /// # Safety: lock must be held.
    unsafe fn refresh(&self) {
        // SAFETY: caller holds the lock.
        let list = unsafe { &*self.list.get() };
        self.count.store(list.len() as u32, Ordering::Relaxed);
        self.head.store(
            list.last().map_or(0, |&(k, _)| k.saturating_add(1)),
            Ordering::Relaxed,
        );
    }
}

/// The mound priority queue.
///
/// ```
/// use baselines::Mound;
/// use pq_traits::ConcurrentPriorityQueue;
/// let m = Mound::new();
/// m.insert(3, "c");
/// m.insert(9, "a");
/// assert_eq!(m.extract_max(), Some((9, "a"))); // strict: always the max
/// ```
pub struct Mound<V> {
    levels: [AtomicPtr<MNode<V>>; MAX_LEVELS],
    leaf_level: AtomicUsize,
    grow_lock: TatasLock,
    /// Operation counters behind `ConcurrentPriorityQueue::metrics`.
    insert_attempts: obs::Counter,
    inserts: obs::Counter,
    extracts: obs::Counter,
    extract_empty: obs::Counter,
    grows: obs::Counter,
}

impl<V: Send> Mound<V> {
    /// Create a mound with levels `0..=4` preallocated.
    pub fn new() -> Self {
        let m = Self {
            levels: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            leaf_level: AtomicUsize::new(4),
            grow_lock: TatasLock::default(),
            insert_attempts: obs::Counter::new(),
            inserts: obs::Counter::new(),
            extracts: obs::Counter::new(),
            extract_empty: obs::Counter::new(),
            grows: obs::Counter::new(),
        };
        for level in 0..=4 {
            m.levels[level].store(Self::alloc_level(level), Ordering::Relaxed);
        }
        m
    }

    fn alloc_level(level: usize) -> *mut MNode<V> {
        let n = 1usize << level;
        let mut nodes: Vec<MNode<V>> = Vec::with_capacity(n);
        nodes.resize_with(n, MNode::new);
        Box::into_raw(nodes.into_boxed_slice()).cast()
    }

    #[inline]
    fn node(&self, level: usize, slot: usize) -> &MNode<V> {
        debug_assert!(slot < (1 << level));
        let base = self.levels[level].load(Ordering::Acquire);
        debug_assert!(!base.is_null());
        // SAFETY: levels are allocated before publication, freed only on
        // drop, and slot is in bounds.
        unsafe { &*base.add(slot) }
    }

    fn grow(&self, observed: usize) {
        let _g = self.grow_lock.guard();
        let cur = self.leaf_level.load(Ordering::Relaxed);
        if cur != observed {
            return;
        }
        assert!(cur + 1 < MAX_LEVELS, "mound capacity exceeded");
        self.levels[cur + 1].store(Self::alloc_level(cur + 1), Ordering::Release);
        self.leaf_level.store(cur + 1, Ordering::Release);
        self.grows.incr();
    }

    fn rand_slot(n: usize) -> usize {
        use std::cell::Cell;
        thread_local! {
            static S: Cell<u64> = const { Cell::new(0xA5A5_5A5A_DEAD_BEEF) };
        }
        S.with(|s| {
            let mut x = s.get();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            (((x as u128) * (n as u128)) >> 64) as usize
        })
    }

    /// Restore the mound invariant downward from `(level, slot)`, which
    /// the caller has locked; unlocks everything.
    fn moundify(&self, mut level: usize, mut slot: usize) {
        loop {
            let node = self.node(level, slot);
            if level >= self.leaf_level.load(Ordering::Acquire) {
                node.lock.unlock();
                return;
            }
            let left = self.node(level + 1, slot * 2);
            let right = self.node(level + 1, slot * 2 + 1);
            left.lock.lock();
            right.lock.lock();
            let (big, small, big_slot) = if left.head_key() >= right.head_key() {
                (left, right, slot * 2)
            } else {
                (right, left, slot * 2 + 1)
            };
            if big.head_key() <= node.head_key() {
                small.lock.unlock();
                big.lock.unlock();
                node.lock.unlock();
                return;
            }
            // SAFETY: both locks held; distinct nodes.
            unsafe {
                std::ptr::swap(node.list.get(), big.list.get());
                node.refresh();
                big.refresh();
            }
            small.lock.unlock();
            node.lock.unlock();
            level += 1;
            slot = big_slot;
        }
    }
}

impl<V: Send> Default for Mound<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Drop for Mound<V> {
    fn drop(&mut self) {
        for (level, ptr) in self.levels.iter_mut().enumerate() {
            let base = *ptr.get_mut();
            if base.is_null() {
                continue;
            }
            let n = 1usize << level;
            // SAFETY: from Box::into_raw of a slice of exactly n nodes.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(base, n)));
            }
        }
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for Mound<V> {
    fn insert(&self, prio: u64, value: V) {
        'restart: loop {
            self.insert_attempts.incr();
            // Pick a random leaf whose head allows prio above it.
            let leaf = self.leaf_level.load(Ordering::Acquire);
            let mut slot = usize::MAX;
            for _ in 0..leaf.max(1) * 2 {
                let cand = Self::rand_slot(1 << leaf);
                if self.node(leaf, cand).head_key() <= Some(prio) {
                    slot = cand;
                    break;
                }
            }
            if slot == usize::MAX {
                self.grow(leaf);
                continue 'restart;
            }
            // Binary search the root path for the shallowest node with
            // head <= prio.
            let (mut lo, mut hi) = (0usize, leaf);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.node(mid, slot >> (leaf - mid)).head_key() <= Some(prio) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            let (level, tslot) = (lo, slot >> (leaf - lo));
            let node = self.node(level, tslot);

            if level == 0 {
                if !node.lock.try_lock() {
                    continue 'restart;
                }
                if node.head_key() > Some(prio) {
                    node.lock.unlock();
                    continue 'restart;
                }
                // SAFETY: lock held.
                unsafe {
                    node.list_mut().push((prio, value));
                    node.refresh();
                }
                node.lock.unlock();
                self.inserts.incr();
                return;
            }

            let parent = self.node(level - 1, tslot / 2);
            if !parent.lock.try_lock() {
                continue 'restart;
            }
            if !node.lock.try_lock() {
                parent.lock.unlock();
                continue 'restart;
            }
            let valid = node.head_key() <= Some(prio) && parent.head_key() > Some(prio);
            if !valid {
                node.lock.unlock();
                parent.lock.unlock();
                continue 'restart;
            }
            // SAFETY: lock held.
            unsafe {
                node.list_mut().push((prio, value));
                node.refresh();
            }
            node.lock.unlock();
            parent.lock.unlock();
            self.inserts.incr();
            return;
        }
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        let root = self.node(0, 0);
        let mut backoff = Backoff::new();
        loop {
            if root.lock.try_lock() {
                break;
            }
            backoff.wait();
        }
        // SAFETY: root locked.
        let got = unsafe {
            let list = root.list_mut();
            let got = list.pop();
            root.refresh();
            got
        };
        match got {
            None => {
                // Empty root == empty mound (inserts below the root
                // require a nonempty parent; moundify sinks empties).
                root.lock.unlock();
                self.extract_empty.incr();
                None
            }
            Some(item) => {
                self.moundify(0, 0); // consumes the root lock
                self.extracts.incr();
                Some(item)
            }
        }
    }

    fn name(&self) -> String {
        "mound".into()
    }

    fn is_relaxed(&self) -> bool {
        false // strict: extract_max always returns the true maximum
    }

    fn metrics(&self) -> Option<obs::Snapshot> {
        let mut s = obs::Snapshot::new();
        let attempts = self.insert_attempts.get();
        let inserts = self.inserts.get();
        s.push_counter("mound.insert_attempts", attempts);
        s.push_counter("mound.inserts", inserts);
        s.push_counter("mound.insert_restarts", attempts.saturating_sub(inserts));
        s.push_counter("mound.extracts", self.extracts.get());
        s.push_counter("mound.extract_empty", self.extract_empty.get());
        s.push_counter("mound.grows", self.grows.get());
        if attempts > 0 {
            s.push_ratio(
                "mound.insert_restart_ratio",
                attempts.saturating_sub(inserts) as f64 / attempts as f64,
            );
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn strict_ordering_sequential() {
        let m = Mound::new();
        let keys = [44u64, 2, 99, 17, 99, 3, 0, 250];
        for &k in &keys {
            m.insert(k, k);
        }
        let mut sorted: Vec<u64> = keys.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for expect in sorted {
            assert_eq!(m.extract_max().map(|p| p.0), Some(expect));
        }
        assert_eq!(m.extract_max(), None);
    }

    #[test]
    fn large_random_sequence() {
        let m = Mound::new();
        let mut keys: Vec<u64> = (0..20_000u64).map(|i| (i * 48271) % 65_536).collect();
        for &k in &keys {
            m.insert(k, k);
        }
        keys.sort_unstable_by(|a, b| b.cmp(a));
        for &expect in &keys {
            assert_eq!(m.extract_max().map(|p| p.0), Some(expect));
        }
    }

    #[test]
    fn concurrent_conservation() {
        let m = Arc::new(Mound::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut extracted = 0u64;
                for i in 0..3000u64 {
                    m.insert((t * 3000 + i) * 7 % 50_000, i);
                    if i % 2 == 1 && m.extract_max().is_some() {
                        extracted += 1;
                    }
                }
                extracted
            }));
        }
        let done: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut rest = 0u64;
        while m.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(done + rest, 12_000);
    }

    #[test]
    fn degrades_to_short_lists_under_mixed_load() {
        // The §2.2 observation: under insert/extract mixes the mound's
        // lists stay short (it becomes a heap). We assert the *average*
        // list length stays small — the phenomenon ZMSQ's insert fixes.
        let m = Mound::new();
        for i in 0..4096u64 {
            m.insert((i * 2654435761) % 1_000_000, i);
        }
        for _ in 0..20_000 {
            let x = m.extract_max().unwrap();
            m.insert(x.0 % 1_000_000, x.1);
        }
        // Count elements vs nonempty nodes.
        let mut elements = 0usize;
        let mut nonempty = 0usize;
        let leaf = m.leaf_level.load(Ordering::Relaxed);
        for level in 0..=leaf {
            for slot in 0..(1usize << level) {
                let c = m.node(level, slot).count.load(Ordering::Relaxed) as usize;
                if c > 0 {
                    nonempty += 1;
                    elements += c;
                }
            }
        }
        assert_eq!(elements, 4096);
        let avg = elements as f64 / nonempty as f64;
        assert!(
            avg < 8.0,
            "mound average list length should be small, got {avg:.2}"
        );
    }
}
