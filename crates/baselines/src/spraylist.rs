//! The SprayList and the strict skiplist priority queue — two extraction
//! policies over the same lock-free skiplist substrate.

use crate::epoch;
use pq_traits::ConcurrentPriorityQueue;

use crate::skiplist::SkipList;

/// The SprayList relaxed priority queue (Alistarh, Kopinsky, Li, Shavit).
///
/// `extract_max` sprays a random walk over the front `O(T·polylog T)`
/// region of the skiplist, where `T` is the configured thread count —
/// which is exactly why its accuracy *degrades* as threads are added
/// (Table 1), the deficiency ZMSQ's thread-independent `batch` bound
/// fixes. It can also spuriously fail on a nonempty queue (§3.7, §4.5.2).
/// ```
/// use baselines::SprayList;
/// use pq_traits::ConcurrentPriorityQueue;
/// let q = SprayList::new(8); // tuned for 8 concurrent consumers
/// for i in 0..100u64 { q.insert(i, i); }
/// let (k, _) = q.extract_max().expect("nonempty (retry on spurious None)");
/// assert!(k <= 99);
/// ```
pub struct SprayList<V> {
    list: SkipList<V>,
    threads: usize,
    /// Operation counters behind `ConcurrentPriorityQueue::metrics`.
    inserts: obs::Counter,
    extract_attempts: obs::Counter,
    extracts: obs::Counter,
}

impl<V: Send> SprayList<V> {
    /// Create a SprayList tuned for `threads` concurrent consumers (the
    /// spray width scales with this, as in the original).
    pub fn new(threads: usize) -> Self {
        Self {
            list: SkipList::new(),
            threads: threads.max(1),
            inserts: obs::Counter::new(),
            extract_attempts: obs::Counter::new(),
            extracts: obs::Counter::new(),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for SprayList<V> {
    fn insert(&self, prio: u64, value: V) {
        self.list.insert(prio, value);
        self.inserts.incr();
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        self.extract_attempts.incr();
        let guard = &epoch::pin();
        let got = self.list.spray_claim(self.threads, guard);
        if got.is_some() {
            self.extracts.incr();
        }
        got
    }

    fn name(&self) -> String {
        format!("spraylist-t{}", self.threads)
    }

    fn len_hint(&self) -> usize {
        self.list.len_hint()
    }

    fn metrics(&self) -> Option<obs::Snapshot> {
        let mut s = obs::Snapshot::new();
        let attempts = self.extract_attempts.get();
        let hits = self.extracts.get();
        s.push_counter("spray.inserts", self.inserts.get());
        s.push_counter("spray.extract_attempts", attempts);
        s.push_counter("spray.extracts", hits);
        // Spurious-or-empty failures (§3.7): the spray walked off without
        // claiming. Includes genuinely-empty attempts.
        s.push_counter("spray.extract_failures", attempts.saturating_sub(hits));
        if attempts > 0 {
            s.push_ratio(
                "spray.extract_failure_ratio",
                attempts.saturating_sub(hits) as f64 / attempts as f64,
            );
        }
        Some(s)
    }
}

/// Strict skiplist priority queue (Lotan–Shavit style): always claim the
/// front-most element. Linearizable `extract_max`, with the front node as
/// the contention hotspot the SprayList was invented to avoid.
pub struct StrictSkiplistPq<V> {
    list: SkipList<V>,
}

impl<V: Send> StrictSkiplistPq<V> {
    /// New empty queue.
    pub fn new() -> Self {
        Self {
            list: SkipList::new(),
        }
    }
}

impl<V: Send> Default for StrictSkiplistPq<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for StrictSkiplistPq<V> {
    fn insert(&self, prio: u64, value: V) {
        self.list.insert(prio, value);
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        let guard = &epoch::pin();
        self.list.claim_first(guard)
    }

    fn name(&self) -> String {
        "skiplist-strict".into()
    }

    fn is_relaxed(&self) -> bool {
        false
    }

    fn len_hint(&self) -> usize {
        self.list.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn strict_pq_orders_exactly() {
        let q = StrictSkiplistPq::new();
        let keys = [8u64, 1, 42, 42, 0, 17];
        for &k in &keys {
            q.insert(k, k);
        }
        let mut sorted = keys.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for expect in sorted {
            assert_eq!(q.extract_max().map(|p| p.0), Some(expect));
        }
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn spraylist_conserves_under_concurrency() {
        const THREADS: usize = 4;
        let q = Arc::new(SprayList::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS as u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for i in 0..4000u64 {
                    q.insert(t * 4000 + i, i);
                    if i % 2 == 0 && q.extract_max().is_some() {
                        got += 1;
                    }
                }
                got
            }));
        }
        let got: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Drain with the strict claimer (no spurious failures).
        let guard = &crate::epoch::pin();
        let mut rest = 0u64;
        while q.list.claim_first(guard).is_some() {
            rest += 1;
        }
        assert_eq!(got + rest, THREADS as u64 * 4000);
    }

    #[test]
    fn spray_accuracy_degrades_with_thread_count() {
        // The Table 1 phenomenon in miniature: mean rank of extractions
        // should worsen (drop) as the configured thread count grows.
        let mean_rank = |threads: usize| {
            let q = SprayList::new(threads);
            for i in 0..20_000u64 {
                q.insert(i, i);
            }
            let mut sum = 0u64;
            let mut got = 0u64;
            while got < 200 {
                if let Some((k, _)) = q.extract_max() {
                    sum += k;
                    got += 1;
                }
            }
            sum / got
        };
        let narrow = mean_rank(2);
        let wide = mean_rank(64);
        assert!(
            narrow > wide,
            "accuracy should degrade with threads: t2 mean {narrow} vs t64 mean {wide}"
        );
    }
}
