//! A minimal, crossbeam-epoch-compatible facade over [`smr::ebr`].
//!
//! The lock-free baselines (skiplist, SprayList, k-LSM run stack) were
//! written against the `crossbeam_epoch` API: typed [`Atomic`] links,
//! tagged [`Shared`] snapshots valid for the lifetime of a pinned
//! [`Guard`], heap-owned [`Owned`] nodes, and `defer_destroy` for
//! unlinked memory. This module reproduces exactly the slice of that API
//! the baselines use, backed by this repo's own epoch collector
//! ([`smr::ebr`]) so the crate has no external dependencies.
//!
//! Pointer tags live in the low bits freed by `T`'s alignment, as in
//! crossbeam; the baselines only ever use tag bit 0 (the deletion mark).

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bit mask of the tag bits available for `T` (its alignment is a power
/// of two; the low `log2(align)` bits of any valid pointer are zero).
#[inline]
const fn low_bits<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

#[inline]
fn decompose<T>(data: usize) -> (*mut T, usize) {
    ((data & !low_bits::<T>()) as *mut T, data & low_bits::<T>())
}

/// A pinned-epoch guard. While one is live, memory handed to
/// [`Guard::defer_destroy`] by any thread after this pin cannot be freed.
pub struct Guard {
    /// `None` only for the static [`unprotected`] guard, whose
    /// `defer_destroy` drops immediately (caller asserts exclusivity).
    inner: Option<smr::ebr::Guard>,
}

impl Guard {
    /// Defer destruction (`Box::from_raw`) of `ptr`'s untagged address
    /// until no guard pinned at or before now remains.
    ///
    /// # Safety
    ///
    /// The object must be unreachable to threads that pin after this
    /// call, must not be retired twice, and `ptr` must have come from
    /// `Owned::new`/`into_shared` (i.e. a `Box<T>` allocation).
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let (raw, _) = decompose::<T>(ptr.data);
        if raw.is_null() {
            return;
        }
        unsafe fn drop_box<T>(p: *mut u8) {
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        match &self.inner {
            Some(g) => {
                // Erase `T` so the deferred closure is `'static` even when
                // `T` carries a lifetime: a fn pointer over `*mut u8` is.
                struct SendPtr(*mut u8, unsafe fn(*mut u8));
                unsafe impl Send for SendPtr {}
                let p = SendPtr(raw.cast(), drop_box::<T>);
                unsafe {
                    g.defer_unchecked(move || {
                        // Braced form: capture the whole struct (its Send
                        // impl), not its non-Send fields individually.
                        let SendPtr(q, f) = { p };
                        f(q)
                    });
                }
            }
            // Unprotected: the caller promises exclusivity; drop now.
            None => unsafe { drop_box::<T>(raw.cast()) },
        }
    }

    /// Eagerly run a collection cycle on the global collector.
    pub fn flush(&self) {
        smr::ebr::collect();
    }
}

/// Pin the current thread's epoch participant.
pub fn pin() -> Guard {
    Guard {
        inner: Some(smr::ebr::pin()),
    }
}

/// A guard usable without pinning, for contexts with exclusive access
/// (constructors, `Drop` with `&mut self`).
///
/// # Safety
///
/// The caller must guarantee no other thread can concurrently access the
/// data structures traversed through this guard: `defer_destroy` through
/// it frees immediately.
pub unsafe fn unprotected() -> &'static Guard {
    struct RacyGuard(Guard);
    // SAFETY: the inner guard is `None`, so the shared reference never
    // touches the (thread-bound) participant machinery.
    unsafe impl Sync for RacyGuard {}
    static UNPROTECTED: RacyGuard = RacyGuard(Guard { inner: None });
    &UNPROTECTED.0
}

/// Types convertible to/from a raw tagged-pointer word: [`Owned`] and
/// [`Shared`]. Lets `Atomic::store`/`compare_exchange` accept either.
pub trait Pointer<T> {
    /// Consume into the raw word (pointer | tag).
    fn into_usize(self) -> usize;
    /// Rebuild from a raw word.
    ///
    /// # Safety
    ///
    /// `data` must have come from `into_usize` of the same impl, exactly
    /// once (ownership transfers for `Owned`).
    unsafe fn from_usize(data: usize) -> Self;
}

/// An atomic tagged pointer to `T`, the link type of the lock-free
/// structures.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null link.
    pub const fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocate `value` on the heap and point at it.
    pub fn new(value: T) -> Self {
        let data = Owned::new(value).into_usize();
        Self {
            data: AtomicUsize::new(data),
            _marker: PhantomData,
        }
    }

    /// Load a snapshot valid for `_guard`'s pin.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared::from_data(self.data.load(ord))
    }

    /// Store a new pointer (an [`Owned`] transfers ownership into the
    /// link; a [`Shared`] just copies the word).
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// CAS `current` → `new`. On failure the actual value comes back as
    /// `current` and the (not consumed) `new` pointer is handed back so
    /// an `Owned` can be retried without reallocating.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.data, new_data, success, failure)
        {
            Ok(_) => Ok(Shared::from_data(new_data)),
            Err(actual) => Err(CompareExchangeError {
                current: Shared::from_data(actual),
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

/// The failure payload of [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the link actually held.
    pub current: Shared<'g, T>,
    /// The proposed value, handed back un-consumed.
    pub new: P,
}

impl<T, P: Pointer<T>> std::fmt::Debug for CompareExchangeError<'_, T, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompareExchangeError")
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

/// A tagged pointer snapshot tied to a [`Guard`]'s pin lifetime.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (raw, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

impl<'g, T> Shared<'g, T> {
    fn from_data(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }

    /// The null snapshot.
    pub fn null() -> Self {
        Self::from_data(0)
    }

    /// Whether the (untagged) pointer is null.
    pub fn is_null(&self) -> bool {
        decompose::<T>(self.data).0.is_null()
    }

    /// The untagged raw pointer.
    pub fn as_raw(&self) -> *const T {
        decompose::<T>(self.data).0
    }

    /// The tag in the low alignment bits.
    pub fn tag(&self) -> usize {
        self.data & low_bits::<T>()
    }

    /// The same pointer with the tag replaced by `tag` (masked to fit).
    pub fn with_tag(&self, tag: usize) -> Self {
        Self::from_data((self.data & !low_bits::<T>()) | (tag & low_bits::<T>()))
    }

    /// Dereference, `None` for null.
    ///
    /// # Safety
    ///
    /// Non-null pointers must still be protected by the guard's pin (not
    /// yet freed by the collector).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        unsafe { decompose::<T>(self.data).0.as_ref() }
    }

    /// Dereference a known-non-null pointer.
    ///
    /// # Safety
    ///
    /// As [`Shared::as_ref`], plus the pointer must be non-null.
    pub unsafe fn deref(&self) -> &'g T {
        unsafe { &*decompose::<T>(self.data).0 }
    }

    /// Take back ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have exclusive access (the pointer unreachable to
    /// every other thread) and must not have retired it.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null());
        Owned {
            data: (self.data & !low_bits::<T>()),
            _marker: PhantomData,
        }
    }
}

/// An owned heap allocation not yet published; freed on drop unless
/// consumed by `into_shared`/`store`/a successful CAS.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Box `value`.
    pub fn new(value: T) -> Self {
        Self {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }

    /// Publish as a [`Shared`] under `_guard` (ownership moves to the
    /// data structure; reclaim later via `defer_destroy`/`into_owned`).
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared::from_data(self.into_usize())
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        std::mem::forget(self);
        data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Self {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Self::from_data(data)
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*decompose::<T>(self.data).0 }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *decompose::<T>(self.data).0 }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        if !raw.is_null() {
            unsafe { drop(Box::from_raw(raw)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use std::sync::Arc;

    struct Node {
        value: u64,
        drops: Arc<Counter>,
    }
    impl Drop for Node {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn tag_roundtrip_preserves_pointer() {
        let drops = Arc::new(Counter::new(0));
        let guard = &pin();
        let a = Atomic::new(Node {
            value: 7,
            drops: drops.clone(),
        });
        let s = a.load(Ordering::Acquire, guard);
        assert_eq!(s.tag(), 0);
        let marked = s.with_tag(1);
        assert_eq!(marked.tag(), 1);
        assert_eq!(marked.as_raw(), s.as_raw());
        assert_eq!(unsafe { marked.deref() }.value, 7);
        assert_eq!(unsafe { marked.with_tag(0).as_ref() }.unwrap().value, 7);
        drop(unsafe { s.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_cas_hands_the_owned_back() {
        let drops = Arc::new(Counter::new(0));
        let guard = &pin();
        let a = Atomic::new(Node {
            value: 1,
            drops: drops.clone(),
        });
        let actual = a.load(Ordering::Acquire, guard);
        let fresh = Owned::new(Node {
            value: 2,
            drops: drops.clone(),
        });
        // CAS against a stale expectation (null) must fail and return
        // both the live value and the un-consumed Owned.
        let err = a
            .compare_exchange(
                Shared::null(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            )
            .unwrap_err();
        assert_eq!(err.current, actual);
        assert_eq!(err.new.value, 2);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(err.new);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        drop(unsafe { actual.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn successful_cas_consumes_and_returns_new() {
        let drops = Arc::new(Counter::new(0));
        let guard = &pin();
        let a: Atomic<Node> = Atomic::null();
        let fresh = Owned::new(Node {
            value: 9,
            drops: drops.clone(),
        });
        let published = a
            .compare_exchange(
                Shared::null(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
                guard,
            )
            .unwrap();
        assert_eq!(unsafe { published.deref() }.value, 9);
        assert_eq!(a.load(Ordering::Acquire, guard), published);
        drop(unsafe { published.into_owned() });
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn defer_destroy_waits_for_the_pin() {
        let drops = Arc::new(Counter::new(0));
        let a = Atomic::new(Node {
            value: 3,
            drops: drops.clone(),
        });
        {
            let guard = pin();
            let s = a.load(Ordering::Acquire, &guard);
            let null: Shared<'_, Node> = Shared::null();
            a.store(null, Ordering::Release);
            unsafe { guard.defer_destroy(s) };
            // Still pinned: the node may not be freed yet. (We can't
            // assert "not freed" portably — another test's collect may
            // interleave — but the drop below must make it exactly 1.)
        }
        smr::ebr::collect();
        // A fresh pin-unpin cycle guarantees the deferred drop has run.
        for _ in 0..3 {
            pin().flush();
            smr::ebr::collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unprotected_defer_destroy_is_immediate() {
        let drops = Arc::new(Counter::new(0));
        let a = Atomic::new(Node {
            value: 4,
            drops: drops.clone(),
        });
        let guard = unsafe { unprotected() };
        let s = a.load(Ordering::Relaxed, guard);
        unsafe { guard.defer_destroy(s) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // Null defer is a no-op.
        unsafe { guard.defer_destroy(Shared::<Node>::null()) };
    }
}
