//! Coarse-grained locked binary heap: the strict, simple yardstick.

use std::collections::BinaryHeap;
use std::sync::Mutex;

use pq_traits::ConcurrentPriorityQueue;

/// A `BinaryHeap` behind one mutex. Strict semantics, zero scalability —
/// useful as a correctness oracle and a single-thread performance anchor.
pub struct CoarseHeap<V> {
    heap: Mutex<BinaryHeap<Entry<V>>>,
}

/// Orders by priority only, so `V` needs no `Ord`.
struct Entry<V> {
    prio: u64,
    value: V,
}

impl<V> PartialEq for Entry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio
    }
}
impl<V> Eq for Entry<V> {}
impl<V> PartialOrd for Entry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for Entry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio.cmp(&other.prio)
    }
}

impl<V> CoarseHeap<V> {
    /// New empty heap.
    pub fn new() -> Self {
        Self {
            heap: Mutex::new(BinaryHeap::new()),
        }
    }

    /// Exact current length.
    pub fn len(&self) -> usize {
        self.heap.lock().unwrap().len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<V> Default for CoarseHeap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for CoarseHeap<V> {
    fn insert(&self, prio: u64, value: V) {
        self.heap.lock().unwrap().push(Entry { prio, value });
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        self.heap.lock().unwrap().pop().map(|e| (e.prio, e.value))
    }

    fn name(&self) -> String {
        "coarse-heap".into()
    }

    fn is_relaxed(&self) -> bool {
        false
    }

    fn len_hint(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_ordering() {
        let h = CoarseHeap::new();
        for k in [4u64, 9, 1, 9, 5] {
            h.insert(k, k);
        }
        let got: Vec<u64> = std::iter::from_fn(|| h.extract_max().map(|p| p.0)).collect();
        assert_eq!(got, vec![9, 9, 5, 4, 1]);
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::Arc;
        let h = Arc::new(CoarseHeap::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..5000u64 {
                    h.insert(t * 5000 + i, i);
                }
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.len(), 20_000);
        let mut prev = u64::MAX;
        while let Some((k, _)) = h.extract_max() {
            assert!(k <= prev);
            prev = k;
        }
    }
}
