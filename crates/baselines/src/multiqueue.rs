//! MultiQueue (Rihani, Sanders, Dementiev 2015).
//!
//! `c · T` sequential binary heaps, each behind its own lock. `insert`
//! pushes into a random heap; `extract_max` peeks two random heaps and
//! pops from the one with the better top — the classic power-of-two-
//! choices argument bounds the rank error probabilistically. Like the
//! k-LSM it is cited in §1/§2.1 as a thread-local-flavored relaxed queue
//! whose accuracy depends on the configuration size.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pq_traits::ConcurrentPriorityQueue;
use zmsq_sync::CachePadded;

/// Sentinel top for an empty sub-heap (so comparisons need no lock).
const EMPTY_TOP: u64 = 0;

/// Heap entry ordered by `(priority, insertion sequence)`; `V` is never
/// compared so it needs no `Ord`.
struct Entry<V> {
    prio: u64,
    seq: u64,
    value: V,
}

impl<V> PartialEq for Entry<V> {
    fn eq(&self, other: &Self) -> bool {
        (self.prio, self.seq) == (other.prio, other.seq)
    }
}
impl<V> Eq for Entry<V> {}
impl<V> PartialOrd for Entry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for Entry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

struct SubQueue<V> {
    /// Cached top priority (+1 so 0 means "empty"), readable without the
    /// lock for the two-choices comparison.
    top: AtomicU64,
    heap: Mutex<BinaryHeap<Entry<V>>>,
}

impl<V> SubQueue<V> {
    fn new() -> Self {
        Self {
            top: AtomicU64::new(EMPTY_TOP),
            heap: Mutex::new(BinaryHeap::new()),
        }
    }
}

/// The MultiQueue relaxed priority queue.
pub struct MultiQueue<V> {
    queues: Box<[CachePadded<SubQueue<V>>]>,
    seq: AtomicU64,
}

impl<V: Send> MultiQueue<V> {
    /// Create with `c * threads` internal heaps (the usual setting is
    /// `c = 2`).
    pub fn new(threads: usize, c: usize) -> Self {
        let n = (threads.max(1) * c.max(1)).next_power_of_two();
        Self {
            queues: (0..n).map(|_| CachePadded::new(SubQueue::new())).collect(),
            seq: AtomicU64::new(0),
        }
    }

    #[inline]
    fn random_index(&self) -> usize {
        use std::cell::Cell;
        thread_local! {
            static S: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
        }
        S.with(|s| {
            let mut x = s.get() ^ (self as *const _ as u64);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            (x as usize) & (self.queues.len() - 1)
        })
    }

    fn update_top(q: &SubQueue<V>, heap: &BinaryHeap<Entry<V>>) {
        let top = heap.peek().map_or(EMPTY_TOP, |e| e.prio.saturating_add(1));
        q.top.store(top, Ordering::Relaxed);
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for MultiQueue<V> {
    fn insert(&self, prio: u64, value: V) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Lock a random heap; on contention just try another (wait-free
        // against any single hot heap).
        loop {
            let q = &self.queues[self.random_index()];
            if let Ok(mut heap) = q.heap.try_lock() {
                heap.push(Entry { prio, seq, value });
                Self::update_top(q, &heap);
                return;
            }
        }
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        // Two random choices, pop the better; a few rounds before
        // concluding empty (misses are possible by design, the rounds
        // bound how often).
        for _ in 0..self.queues.len() * 2 {
            let (i, j) = (self.random_index(), self.random_index());
            let (qi, qj) = (&self.queues[i], &self.queues[j]);
            let (ti, tj) = (
                qi.top.load(Ordering::Relaxed),
                qj.top.load(Ordering::Relaxed),
            );
            let pick = if ti >= tj { qi } else { qj };
            if ti == EMPTY_TOP && tj == EMPTY_TOP {
                continue;
            }
            if let Ok(mut heap) = pick.heap.try_lock() {
                if let Some(e) = heap.pop() {
                    Self::update_top(pick, &heap);
                    return Some((e.prio, e.value));
                }
            }
        }
        // Fall back to a linear sweep so emptiness reports are reliable
        // when the queue really is (close to) empty.
        for q in self.queues.iter() {
            let mut heap = q.heap.lock().unwrap();
            if let Some(e) = heap.pop() {
                Self::update_top(q, &heap);
                return Some((e.prio, e.value));
            }
        }
        None
    }

    fn name(&self) -> String {
        format!("multiqueue-{}", self.queues.len())
    }

    fn len_hint(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.heap.lock().unwrap().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_conserves() {
        let q = MultiQueue::new(4, 2);
        for i in 0..10_000u64 {
            q.insert(i, i);
        }
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 10_000);
    }

    #[test]
    fn returns_highish_elements() {
        let q = MultiQueue::new(2, 2);
        for i in 0..10_000u64 {
            q.insert(i, i);
        }
        // First 100 extractions should all be in the top few percent on
        // average; assert a loose bound.
        let mut sum = 0u64;
        for _ in 0..100 {
            sum += q.extract_max().unwrap().0;
        }
        assert!(
            sum / 100 > 8_000,
            "mean of first 100 extracts: {}",
            sum / 100
        );
    }

    #[test]
    fn concurrent_stress() {
        let q = Arc::new(MultiQueue::new(4, 2));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for i in 0..4000u64 {
                    q.insert(t * 10_000 + i, i);
                    if i % 2 == 0 && q.extract_max().is_some() {
                        got += 1;
                    }
                }
                got
            }));
        }
        let extracted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut rest = 0u64;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(extracted + rest, 16_000);
    }

    #[test]
    fn empty_reports_none() {
        let q: MultiQueue<u64> = MultiQueue::new(8, 2);
        assert_eq!(q.extract_max(), None);
        q.insert(5, 5);
        assert_eq!(q.extract_max(), Some((5, 5)));
        assert_eq!(q.extract_max(), None);
    }
}
