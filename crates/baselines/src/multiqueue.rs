//! MultiQueue (Rihani, Sanders, Dementiev 2015).
//!
//! `c · T` sequential binary heaps, each behind its own lock. `insert`
//! pushes into a random heap; `extract_max` peeks two random heaps and
//! pops from the one with the better top — the classic power-of-two-
//! choices argument bounds the rank error probabilistically. Like the
//! k-LSM it is cited in §1/§2.1 as a thread-local-flavored relaxed queue
//! whose accuracy depends on the configuration size.
//!
//! [`MultiQueue::with_tuning`] adds the two optimizations from
//! "Engineering MultiQueues" (Williams & Sanders): *stickiness* (a
//! thread reuses its sampled heap for `c` consecutive operations) and
//! per-thread *insertion/deletion buffers* (staged thread-locally,
//! moved to/from the heaps in batches), so the shootout against the
//! tuned `ShardedZmsq` is apples-to-apples. Buffers flush on overflow,
//! on re-sample, and through the
//! [`flush`](ConcurrentPriorityQueue::flush) escape hatch; before an
//! empty report every thread's staged operations are published and the
//! sweep retried (flush-before-report), so `None` keeps its meaning.

use std::cell::RefCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use pq_traits::ConcurrentPriorityQueue;
use zmsq_sync::{CachePadded, SlotVec};

/// Sentinel top for an empty sub-heap (so comparisons need no lock).
const EMPTY_TOP: u64 = 0;

/// Source of unique instance ids keying the per-thread buffer-slot
/// cache (same discipline as `ShardedZmsq`).
static MQ_IDS: AtomicU64 = AtomicU64::new(1);

const SLOT_CACHE_CAP: usize = 64;
thread_local! {
    /// Per-thread `(instance id, buffer slot)` cache. Eviction is safe:
    /// the slot and its staged elements stay owned by the queue's
    /// `SlotVec`, where flush-all recovers them, and the evicted thread
    /// reuses its old slot (found by owner tag) on re-registration, so
    /// the slot count stays bounded by the number of distinct threads.
    static MQ_SLOTS: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// Heap entry ordered by `(priority, insertion sequence)`; `V` is never
/// compared so it needs no `Ord`.
struct Entry<V> {
    prio: u64,
    seq: u64,
    value: V,
}

impl<V> PartialEq for Entry<V> {
    fn eq(&self, other: &Self) -> bool {
        (self.prio, self.seq) == (other.prio, other.seq)
    }
}
impl<V> Eq for Entry<V> {}
impl<V> PartialOrd for Entry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for Entry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.prio, self.seq).cmp(&(other.prio, other.seq))
    }
}

struct SubQueue<V> {
    /// Cached top priority (+1 so 0 means "empty"), readable without the
    /// lock for the two-choices comparison.
    top: AtomicU64,
    heap: Mutex<BinaryHeap<Entry<V>>>,
}

impl<V> SubQueue<V> {
    fn new() -> Self {
        Self {
            top: AtomicU64::new(EMPTY_TOP),
            heap: Mutex::new(BinaryHeap::new()),
        }
    }
}

/// Per-`(thread, instance)` operation buffer (the k-LSM spill model:
/// queue-owned so flush-all reaches it without the thread's help).
struct OpBuf<V> {
    /// Staged inserts bound for heap `ins_at`.
    ins: Vec<(u64, V)>,
    /// Prefetched extractions, ascending by priority (pop from the end).
    del: Vec<(u64, V)>,
    ins_at: usize,
    ins_left: usize,
    del_at: usize,
    del_left: usize,
}

impl<V> Default for OpBuf<V> {
    fn default() -> Self {
        Self {
            ins: Vec::new(),
            del: Vec::new(),
            ins_at: 0,
            ins_left: 0,
            del_at: 0,
            del_left: 0,
        }
    }
}

/// One registered `(thread, instance)` buffer slot; the owner tag
/// (immutable after registration) lets a thread whose cache entry was
/// evicted find and reuse its old slot — see [`MultiQueue::buf_slot`].
struct BufSlot<V> {
    owner: u64,
    buf: Mutex<OpBuf<V>>,
}

/// The MultiQueue relaxed priority queue.
pub struct MultiQueue<V> {
    queues: Box<[CachePadded<SubQueue<V>>]>,
    seq: AtomicU64,
    id: u64,
    /// Sticky run length (`0` = classic fresh sample per operation).
    stickiness: usize,
    /// Buffer depths (`0`/`1` = unbuffered).
    insert_buffer: usize,
    delete_buffer: usize,
    /// Whether any tuning knob departs from the classic behaviour.
    tuned: bool,
    bufs: SlotVec<BufSlot<V>>,
    pending_ins: AtomicUsize,
    pending_del: AtomicUsize,
    /// Live rank-error estimator measured at the heap boundary
    /// (optional; armed for the shootout's cheap rank axis).
    est: Option<obs::RankEstimator>,
}

impl<V: Send> MultiQueue<V> {
    /// Create with `c * threads` internal heaps (the usual setting is
    /// `c = 2`).
    pub fn new(threads: usize, c: usize) -> Self {
        Self::with_tuning(threads, c, 0, 0, 0)
    }

    /// [`new`](Self::new) plus stickiness and per-thread operation
    /// buffers. All-zero tuning is exactly `new`.
    pub fn with_tuning(
        threads: usize,
        c: usize,
        stickiness: usize,
        insert_buffer: usize,
        delete_buffer: usize,
    ) -> Self {
        let n = (threads.max(1) * c.max(1)).next_power_of_two();
        let tuned = stickiness >= 1 || insert_buffer > 1 || delete_buffer > 1;
        Self {
            queues: (0..n).map(|_| CachePadded::new(SubQueue::new())).collect(),
            seq: AtomicU64::new(0),
            id: MQ_IDS.fetch_add(1, Ordering::Relaxed),
            stickiness,
            insert_buffer,
            delete_buffer,
            tuned,
            bufs: SlotVec::new(),
            pending_ins: AtomicUsize::new(0),
            pending_del: AtomicUsize::new(0),
            est: None,
        }
    }

    /// Arm the live rank-error estimator (`quality.est_rank` etc.) with
    /// the given sampling shift (`0` samples every key).
    pub fn rank_estimator(mut self, shift: u32) -> Self {
        self.est = Some(obs::RankEstimator::new(shift));
        self
    }

    #[inline]
    fn random_index(&self) -> usize {
        use std::cell::Cell;
        thread_local! {
            static S: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
        }
        S.with(|s| {
            let mut x = s.get() ^ (self as *const _ as u64);
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            (x as usize) & (self.queues.len() - 1)
        })
    }

    fn update_top(q: &SubQueue<V>, heap: &BinaryHeap<Entry<V>>) {
        let top = heap.peek().map_or(EMPTY_TOP, |e| e.prio.saturating_add(1));
        q.top.store(top, Ordering::Relaxed);
    }

    /// The calling thread's buffer slot for this instance, reusing the
    /// thread's previous slot if cache eviction dropped the mapping
    /// (same discipline as `ShardedZmsq::buf_slot`).
    fn buf_slot(&self) -> usize {
        MQ_SLOTS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(&(_, slot)) = cache.iter().find(|&&(id, _)| id == self.id) {
                return slot;
            }
            let me = zmsq_sync::thread_tag();
            let slot = (0..self.bufs.len())
                .find(|&i| self.bufs.get(i).owner == me)
                .unwrap_or_else(|| {
                    self.bufs.push(BufSlot {
                        owner: me,
                        buf: Mutex::new(OpBuf::default()),
                    })
                });
            if cache.len() >= SLOT_CACHE_CAP {
                cache.remove(0);
            }
            cache.push((self.id, slot));
            slot
        })
    }

    /// Push staged inserts into heap `b.ins_at` under one lock
    /// acquisition, assigning sequence numbers at publish time.
    fn flush_ins(&self, b: &mut OpBuf<V>) {
        if b.ins.is_empty() {
            return;
        }
        fault::fail_point!("shard.flush-delay");
        let n = b.ins.len();
        let q = &self.queues[b.ins_at & (self.queues.len() - 1)];
        let mut heap = q.heap.lock().unwrap();
        for (prio, value) in b.ins.drain(..) {
            if let Some(est) = &self.est {
                est.note_insert(prio);
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            heap.push(Entry { prio, seq, value });
        }
        Self::update_top(q, &heap);
        // Decrement only after the heap publish: a racing `len_hint`
        // then transiently overcounts (safe for an emptiness hint)
        // instead of reporting 0 on a non-empty queue.
        self.pending_ins.fetch_sub(n, Ordering::Relaxed);
    }

    /// Return prefetched-but-unclaimed extractions to the heap they came
    /// from, making them claimable by other threads.
    fn unprefetch_del(&self, b: &mut OpBuf<V>) {
        if b.del.is_empty() {
            return;
        }
        fault::fail_point!("shard.flush-delay");
        let n = b.del.len();
        let q = &self.queues[b.del_at & (self.queues.len() - 1)];
        let mut heap = q.heap.lock().unwrap();
        for (prio, value) in b.del.drain(..) {
            if let Some(est) = &self.est {
                est.note_insert(prio);
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            heap.push(Entry { prio, seq, value });
        }
        Self::update_top(q, &heap);
        // After the publish, for the same reason as `flush_ins`.
        self.pending_del.fetch_sub(n, Ordering::Relaxed);
        b.del_left = 0;
    }

    /// Publish every thread's staged operations; returns elements moved.
    /// Locks one slot at a time; the caller must not hold a slot lock.
    fn flush_all(&self) -> usize {
        let mut moved = 0;
        for slot in self.bufs.iter() {
            let mut b = slot.buf.lock().unwrap();
            moved += b.ins.len() + b.del.len();
            self.flush_ins(&mut b);
            self.unprefetch_del(&mut b);
        }
        moved
    }

    fn insert_direct(&self, prio: u64, value: V) {
        if let Some(est) = &self.est {
            est.note_insert(prio);
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // Lock a random heap; on contention just try another (wait-free
        // against any single hot heap).
        loop {
            let q = &self.queues[self.random_index()];
            if let Ok(mut heap) = q.heap.try_lock() {
                heap.push(Entry { prio, seq, value });
                Self::update_top(q, &heap);
                return;
            }
        }
    }

    fn fast_insert(&self, prio: u64, value: V) {
        let buf = &self.bufs.get(self.buf_slot()).buf;
        let mut b = buf.lock().unwrap();
        if b.ins_left == 0 {
            self.flush_ins(&mut b); // flush-on-resample
            b.ins_at = self.random_index();
            b.ins_left = match self.stickiness {
                0 => usize::MAX, // buffering only: target never expires
                c => c,
            };
        }
        b.ins_left -= 1;
        if self.insert_buffer > 1 {
            b.ins.push((prio, value));
            self.pending_ins.fetch_add(1, Ordering::Relaxed);
            if b.ins.len() >= self.insert_buffer {
                self.flush_ins(&mut b); // flush-on-overflow
            }
        } else {
            // Sticky unbuffered insert: push straight into the sticky
            // heap (blocking — stickiness trades the try-elsewhere loop
            // for locality).
            if let Some(est) = &self.est {
                est.note_insert(prio);
            }
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let q = &self.queues[b.ins_at];
            let mut heap = q.heap.lock().unwrap();
            heap.push(Entry { prio, seq, value });
            Self::update_top(q, &heap);
        }
    }

    fn extract_direct(&self) -> Option<(u64, V)> {
        // Two random choices, pop the better; a few rounds before
        // concluding empty (misses are possible by design, the rounds
        // bound how often).
        for _ in 0..self.queues.len() * 2 {
            let (i, j) = (self.random_index(), self.random_index());
            let (qi, qj) = (&self.queues[i], &self.queues[j]);
            let (ti, tj) = (
                qi.top.load(Ordering::Relaxed),
                qj.top.load(Ordering::Relaxed),
            );
            let pick = if ti >= tj { qi } else { qj };
            if ti == EMPTY_TOP && tj == EMPTY_TOP {
                continue;
            }
            if let Ok(mut heap) = pick.heap.try_lock() {
                if let Some(e) = heap.pop() {
                    Self::update_top(pick, &heap);
                    if let Some(est) = &self.est {
                        est.note_extract(e.prio);
                    }
                    return Some((e.prio, e.value));
                }
            }
        }
        // Fall back to a linear sweep so emptiness reports are reliable
        // when the queue really is (close to) empty.
        for q in self.queues.iter() {
            let mut heap = q.heap.lock().unwrap();
            if let Some(e) = heap.pop() {
                Self::update_top(q, &heap);
                if let Some(est) = &self.est {
                    est.note_extract(e.prio);
                }
                return Some((e.prio, e.value));
            }
        }
        None
    }

    /// Pop up to `want` entries from heap `at` into `b.del` (ascending
    /// order). Returns how many were taken.
    fn refill_from(&self, b: &mut OpBuf<V>, at: usize, want: usize) -> usize {
        let q = &self.queues[at];
        let mut heap = match q.heap.try_lock() {
            Ok(h) => h,
            Err(_) => return 0, // contended: caller re-picks
        };
        let mut got = 0;
        while got < want {
            match heap.pop() {
                Some(e) => {
                    if let Some(est) = &self.est {
                        est.note_extract(e.prio);
                    }
                    b.del.push((e.prio, e.value));
                    got += 1;
                }
                None => break,
            }
        }
        if got > 0 {
            Self::update_top(q, &heap);
            // Heap pops come out descending; the buffer serves from the
            // end, so reverse the freshly appended run.
            let len = b.del.len();
            b.del[len - got..].reverse();
        }
        got
    }

    fn fast_extract(&self) -> Option<(u64, V)> {
        let buf = &self.bufs.get(self.buf_slot()).buf;
        let mut b = buf.lock().unwrap();
        if let Some(got) = b.del.pop() {
            self.pending_del.fetch_sub(1, Ordering::Relaxed);
            return Some(got);
        }
        if b.del_left == 0 {
            // Fresh run: two-choice pick by cached tops.
            let (i, j) = (self.random_index(), self.random_index());
            let (ti, tj) = (
                self.queues[i].top.load(Ordering::Relaxed),
                self.queues[j].top.load(Ordering::Relaxed),
            );
            b.del_at = if ti >= tj { i } else { j };
            b.del_left = self.stickiness.max(1);
        }
        b.del_left -= 1;
        let want = self.delete_buffer.max(1);
        let at = b.del_at;
        let got = self.refill_from(&mut b, at, want);
        if got == 0 {
            // Sticky heap dry or contended: drop the run, fall back to
            // the classic two-choice extract, then flush-before-report.
            b.del_left = 0;
            drop(b);
            if let Some(got) = self.extract_direct() {
                return Some(got);
            }
            loop {
                let moved = self.flush_all();
                if let Some(got) = self.extract_direct() {
                    return Some(got);
                }
                if moved == 0 {
                    return None;
                }
            }
        }
        self.pending_del.fetch_add(got - 1, Ordering::Relaxed);
        Some(b.del.pop().expect("refill returned > 0"))
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for MultiQueue<V> {
    fn insert(&self, prio: u64, value: V) {
        if self.tuned {
            return self.fast_insert(prio, value);
        }
        self.insert_direct(prio, value)
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        if self.tuned {
            return self.fast_extract();
        }
        self.extract_direct()
    }

    fn name(&self) -> String {
        let mut n = format!("multiqueue-{}", self.queues.len());
        if self.tuned {
            n.push_str(&format!(
                "-c{}-i{}-d{}",
                self.stickiness, self.insert_buffer, self.delete_buffer
            ));
        }
        n
    }

    fn len_hint(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.heap.lock().unwrap().len())
            .sum::<usize>()
            + self.pending_ins.load(Ordering::Relaxed)
            + self.pending_del.load(Ordering::Relaxed)
    }

    fn flush(&self) {
        self.flush_all();
    }

    fn metrics(&self) -> Option<obs::Snapshot> {
        let est = self.est.as_ref()?;
        let mut snap = obs::Snapshot::default();
        est.snapshot_into(&mut snap);
        if self.tuned {
            snap.push_gauge("buf.threads", self.bufs.len() as i64);
            snap.push_gauge(
                "buf.pending_inserts",
                self.pending_ins.load(Ordering::Relaxed) as i64,
            );
            snap.push_gauge(
                "buf.pending_deletes",
                self.pending_del.load(Ordering::Relaxed) as i64,
            );
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn roundtrip_conserves() {
        let q = MultiQueue::new(4, 2);
        for i in 0..10_000u64 {
            q.insert(i, i);
        }
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 10_000);
    }

    #[test]
    fn returns_highish_elements() {
        let q = MultiQueue::new(2, 2);
        for i in 0..10_000u64 {
            q.insert(i, i);
        }
        // First 100 extractions should all be in the top few percent on
        // average; assert a loose bound.
        let mut sum = 0u64;
        for _ in 0..100 {
            sum += q.extract_max().unwrap().0;
        }
        assert!(
            sum / 100 > 8_000,
            "mean of first 100 extracts: {}",
            sum / 100
        );
    }

    #[test]
    fn concurrent_stress() {
        let q = Arc::new(MultiQueue::new(4, 2));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for i in 0..4000u64 {
                    q.insert(t * 10_000 + i, i);
                    if i % 2 == 0 && q.extract_max().is_some() {
                        got += 1;
                    }
                }
                got
            }));
        }
        let extracted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut rest = 0u64;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(extracted + rest, 16_000);
    }

    #[test]
    fn empty_reports_none() {
        let q: MultiQueue<u64> = MultiQueue::new(8, 2);
        assert_eq!(q.extract_max(), None);
        q.insert(5, 5);
        assert_eq!(q.extract_max(), Some((5, 5)));
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn untuned_name_and_paths_unchanged() {
        let q: MultiQueue<u64> = MultiQueue::new(4, 2);
        assert_eq!(q.name(), "multiqueue-8");
        assert!(!q.tuned);
        q.insert(1, 1);
        assert_eq!(q.bufs.len(), 0, "classic path must not register slots");
        let tuned: MultiQueue<u64> = MultiQueue::with_tuning(4, 2, 8, 16, 4);
        assert_eq!(tuned.name(), "multiqueue-8-c8-i16-d4");
    }

    #[test]
    fn tuned_roundtrip_conserves() {
        let q = Arc::new(MultiQueue::with_tuning(4, 2, 8, 8, 8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for i in 0..4000u64 {
                    q.insert(t * 10_000 + i, i);
                    if i % 2 == 0 && q.extract_max().is_some() {
                        got += 1;
                    }
                }
                got
            }));
        }
        let extracted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut rest = 0u64;
        while q.extract_max().is_some() {
            rest += 1;
        }
        assert_eq!(extracted + rest, 16_000, "tuned fast path lost elements");
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn flush_publishes_staged_inserts() {
        let q: MultiQueue<u64> = MultiQueue::with_tuning(2, 2, 0, 64, 0);
        for i in 0..5u64 {
            q.insert(i, i);
        }
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 5);
        // Invisible to the heaps until flushed…
        let heaped: usize = q.queues.iter().map(|h| h.heap.lock().unwrap().len()).sum();
        assert_eq!(heaped, 0);
        assert_eq!(q.len_hint(), 5);
        q.flush();
        assert_eq!(q.pending_ins.load(Ordering::Relaxed), 0);
        let heaped: usize = q.queues.iter().map(|h| h.heap.lock().unwrap().len()).sum();
        assert_eq!(heaped, 5);
    }

    #[test]
    fn empty_report_reclaims_foreign_buffers() {
        let q = Arc::new(MultiQueue::with_tuning(2, 2, 4, 4, 4));
        for i in 0..10u64 {
            q.insert(i, i);
        }
        q.flush();
        let q2 = Arc::clone(&q);
        std::thread::spawn(move || {
            let _ = q2.extract_max().expect("elements present"); // prefetches
            q2.insert(99, 99); // stays staged
        })
        .join()
        .unwrap();
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 10, "elements stranded in a foreign buffer");
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn estimator_exports_quality_metrics() {
        let q: MultiQueue<u64> = MultiQueue::with_tuning(2, 2, 4, 4, 4).rank_estimator(0);
        for i in 0..500u64 {
            q.insert(i, i);
        }
        q.flush();
        for _ in 0..200 {
            assert!(q.extract_max().is_some());
        }
        let snap = q.metrics().expect("estimator armed");
        assert!(snap.counter("quality.sampled_extracts").unwrap() >= 200);
        let h = snap.hist("quality.est_rank").expect("est_rank hist");
        assert!(h.count >= 200);
        assert!(snap.gauge("buf.threads").unwrap() >= 1);
    }
}
