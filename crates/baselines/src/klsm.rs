//! A simplified k-LSM relaxed priority queue (Wimmer et al.) — §2.1.
//!
//! Each thread owns a **local** component holding at most `k` elements;
//! when it overflows, the whole component is merged into a shared
//! **global** component. `extract_max` takes the better of the local max
//! and the global max. Relaxation comes from never looking at *other*
//! threads' locals — which is also the deficiency the ZMSQ paper calls
//! out (§2.1, §3.7): elements parked in another thread's local are
//! invisible, so `extract_max` can return `None` (or a poor element)
//! while the queue holds better ones, and a suspended thread strands its
//! buffered elements indefinitely. This implementation reproduces those
//! semantics deliberately.
//!
//! The global component is a **lock-free stack of immutable sorted
//! runs** (see [`runstack`]): spilling publishes a run with one CAS, and
//! extraction claims the best run-top with one CAS — the log-structured
//! shape of the original, with epoch reclamation. Remaining
//! simplification vs. the original (documented in DESIGN.md): runs are
//! not merged (the stack is a flat forest), which affects constant
//! factors, not semantics.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pq_traits::ConcurrentPriorityQueue;

use runstack::RunStack;

struct Entry<V> {
    prio: u64,
    value: V,
}
impl<V> PartialEq for Entry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.prio == other.prio
    }
}
impl<V> Eq for Entry<V> {}
impl<V> PartialOrd for Entry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for Entry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.prio.cmp(&other.prio)
    }
}

/// A thread's local component: ascending by priority (max at the tail).
struct Local<V> {
    items: Vec<Entry<V>>,
}

impl<V> Local<V> {
    fn new() -> Self {
        Self { items: Vec::new() }
    }
    fn insert(&mut self, prio: u64, value: V) {
        let pos = self.items.partition_point(|e| e.prio <= prio);
        self.items.insert(pos, Entry { prio, value });
    }
    fn max_key(&self) -> Option<u64> {
        self.items.last().map(|e| e.prio)
    }
    fn pop_max(&mut self) -> Option<Entry<V>> {
        self.items.pop()
    }
}

/// The k-LSM.
pub struct KLsm<V> {
    k: usize,
    /// All locals are owned by the queue (so drop and whole-queue drains
    /// work); each is used by the one thread that registered the slot.
    locals: zmsq_sync::SlotVec<Mutex<Local<V>>>,
    /// Lock-free global component: a stack of immutable sorted runs.
    global: RunStack<V>,
    id: usize,
}

static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

impl<V: Send> KLsm<V> {
    /// Create with local components bounded at `k` elements.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            locals: zmsq_sync::SlotVec::new(),
            global: RunStack::new(),
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The `k` bound.
    pub fn k(&self) -> usize {
        self.k
    }

    fn local(&self) -> &Mutex<Local<V>> {
        use std::cell::RefCell;
        use std::collections::HashMap;
        thread_local! {
            static SLOTS: RefCell<HashMap<usize, usize>> = RefCell::new(HashMap::new());
        }
        let slot = SLOTS.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(&s) = m.get(&self.id) {
                s
            } else {
                let s = self.locals.push(Mutex::new(Local::new()));
                m.insert(self.id, s);
                s
            }
        });
        self.locals.get(slot)
    }

    /// Spill a full local into the global component: one published run.
    fn spill(&self, local: &mut Local<V>) {
        let run: Vec<(u64, V)> = local.items.drain(..).map(|e| (e.prio, e.value)).collect();
        self.global.push_run(run);
    }

    /// Drain every component — local buffers of *all* threads included.
    /// Needs `&mut self` (quiescence); used by tests and shutdown paths.
    pub fn drain_all(&mut self) -> Vec<(u64, V)> {
        let mut out: Vec<(u64, V)> = Vec::new();
        for i in 0..self.locals.len() {
            let mut l = self.locals.get(i).lock().unwrap();
            out.extend(l.items.drain(..).map(|e| (e.prio, e.value)));
        }
        self.global.drain_all(&mut out);
        out
    }
}

impl<V: Send> ConcurrentPriorityQueue<V> for KLsm<V> {
    fn insert(&self, prio: u64, value: V) {
        let mut local = self.local().lock().unwrap();
        local.insert(prio, value);
        if local.items.len() > self.k {
            self.spill(&mut local);
        }
    }

    fn extract_max(&self) -> Option<(u64, V)> {
        let mut local = self.local().lock().unwrap();
        let guard = &crate::epoch::pin();
        let local_max = local.max_key();
        let global_max = self.global.peek_max(guard);

        // Prefer whichever component currently advertises the better max.
        if local_max >= global_max && local_max.is_some() {
            let e = local.pop_max().expect("local max present");
            return Some((e.prio, e.value));
        }
        if let Some(got) = self.global.extract_max(guard) {
            return Some(got);
        }
        // Fall back to the local even if it looked worse; only if both
        // are empty do we fail — possibly spuriously, since *other*
        // threads' locals are invisible (the k-LSM deficiency).
        local.pop_max().map(|e| (e.prio, e.value))
    }

    fn name(&self) -> String {
        format!("klsm-k{}", self.k)
    }

    fn len_hint(&self) -> usize {
        self.global.len_hint(&crate::epoch::pin())
    }
}

/// A lock-free stack of immutable sorted runs — the global component of
/// the k-LSM, upgraded from a single locked heap to the log-structured
/// shape of the original design (Wimmer et al.).
///
/// * A **run** is an immutable ascending array of elements plus an atomic
///   cursor claiming from the top (highest priority first) — the same
///   unique-index protocol as ZMSQ's pool.
/// * Spilling pushes a new run at the head with one CAS.
/// * `extract_max` scans run tops (each top is that run's maximum, since
///   runs are sorted), claims the best with one CAS on that run's cursor,
///   and lazily pops exhausted *prefix* runs (head-only unlinking keeps
///   reclamation safe without mark bits; exhausted runs behind live ones
///   are skipped and unlink once they become the prefix).
/// * Reclamation via the in-repo epoch collector ([`crate::epoch`]).
mod runstack {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicIsize, Ordering};

    use crate::epoch::{self, Atomic, Guard, Owned};

    struct RunNode<V> {
        /// Priorities, ascending. Immutable after construction.
        prios: Box<[u64]>,
        /// Values, claimed (moved out) exactly once per index.
        values: Box<[UnsafeCell<MaybeUninit<V>>]>,
        /// Index of the current top; claim by CAS idx -> idx-1; < 0 means
        /// exhausted.
        cursor: AtomicIsize,
        next: Atomic<RunNode<V>>,
    }

    // SAFETY: value slots are transferred with unique ownership via the
    // cursor CAS; everything else is immutable or atomic.
    unsafe impl<V: Send> Send for RunNode<V> {}
    unsafe impl<V: Send> Sync for RunNode<V> {}

    impl<V> Drop for RunNode<V> {
        fn drop(&mut self) {
            // Unclaimed values are those at indices <= cursor.
            let top = *self.cursor.get_mut();
            for i in 0..=top.max(-1) {
                if i >= 0 {
                    // SAFETY: index <= cursor was never claimed.
                    unsafe { self.values[i as usize].get_mut().assume_init_drop() };
                }
            }
        }
    }

    /// The lock-free run stack.
    pub struct RunStack<V> {
        head: Atomic<RunNode<V>>,
    }

    impl<V: Send> RunStack<V> {
        pub fn new() -> Self {
            Self {
                head: Atomic::null(),
            }
        }

        /// Push a run built from `items` (any order; sorted internally).
        /// Empty input is a no-op.
        pub fn push_run(&self, mut items: Vec<(u64, V)>) {
            if items.is_empty() {
                return;
            }
            items.sort_unstable_by_key(|&(k, _)| k);
            let n = items.len();
            let mut prios = Vec::with_capacity(n);
            let mut values = Vec::with_capacity(n);
            for (k, v) in items {
                prios.push(k);
                values.push(UnsafeCell::new(MaybeUninit::new(v)));
            }
            let node = Owned::new(RunNode {
                prios: prios.into_boxed_slice(),
                values: values.into_boxed_slice(),
                cursor: AtomicIsize::new(n as isize - 1),
                next: Atomic::null(),
            });
            let guard = &epoch::pin();
            let mut node = node;
            loop {
                let head = self.head.load(Ordering::Acquire, guard);
                node.next.store(head, Ordering::Relaxed);
                match self.head.compare_exchange(
                    head,
                    node,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                ) {
                    Ok(_) => return,
                    Err(e) => node = e.new,
                }
            }
        }

        /// Current best (maximum) priority across run tops, if any.
        pub fn peek_max(&self, guard: &Guard) -> Option<u64> {
            let mut best: Option<u64> = None;
            let mut cur = self.head.load(Ordering::Acquire, guard);
            while let Some(run) = unsafe { cur.as_ref() } {
                let idx = run.cursor.load(Ordering::Acquire);
                if idx >= 0 {
                    let top = run.prios[idx as usize];
                    if best.is_none_or(|b| top > b) {
                        best = Some(top);
                    }
                }
                cur = run.next.load(Ordering::Acquire, guard);
            }
            best
        }

        /// Claim the element with the best run-top priority.
        pub fn extract_max(&self, guard: &Guard) -> Option<(u64, V)> {
            loop {
                self.pop_exhausted_prefix(guard);
                // Scan for the best top.
                let mut best: Option<(&RunNode<V>, isize, u64)> = None;
                let mut cur = self.head.load(Ordering::Acquire, guard);
                while let Some(run) = unsafe { cur.as_ref() } {
                    let idx = run.cursor.load(Ordering::Acquire);
                    if idx >= 0 {
                        let top = run.prios[idx as usize];
                        if best.is_none() || top > best.unwrap().2 {
                            best = Some((run, idx, top));
                        }
                    }
                    cur = run.next.load(Ordering::Acquire, guard);
                }
                let (run, idx, top) = best?;
                // Claim the top by CAS; a failure means someone raced us —
                // rescan (their claim may have changed which run is best).
                if run
                    .cursor
                    .compare_exchange(idx, idx - 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // SAFETY: the CAS uniquely claimed index `idx`; the
                    // value was written at construction and never touched
                    // since; the run is epoch-protected by `guard`.
                    let value = unsafe { (*run.values[idx as usize].get()).assume_init_read() };
                    return Some((top, value));
                }
            }
        }

        /// Unlink exhausted runs from the head (prefix-only: safe without
        /// mark bits because `next` edges are immutable and heads are only
        /// removed, never re-linked).
        fn pop_exhausted_prefix(&self, guard: &Guard) {
            loop {
                let head = self.head.load(Ordering::Acquire, guard);
                let Some(run) = (unsafe { head.as_ref() }) else {
                    return;
                };
                if run.cursor.load(Ordering::Acquire) >= 0 {
                    return;
                }
                let next = run.next.load(Ordering::Acquire, guard);
                if self
                    .head
                    .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire, guard)
                    .is_ok()
                {
                    // SAFETY: unlinked from the only entry point; readers
                    // inside the epoch still see it until they unpin.
                    unsafe { guard.defer_destroy(head) };
                }
            }
        }

        /// Approximate number of unclaimed elements.
        pub fn len_hint(&self, guard: &Guard) -> usize {
            let mut n = 0usize;
            let mut cur = self.head.load(Ordering::Acquire, guard);
            while let Some(run) = unsafe { cur.as_ref() } {
                n += (run.cursor.load(Ordering::Acquire).max(-1) + 1) as usize;
                cur = run.next.load(Ordering::Acquire, guard);
            }
            n
        }

        /// Drain every remaining element (requires external quiescence —
        /// used by `KLsm::drain_all`).
        pub fn drain_all(&self, out: &mut Vec<(u64, V)>) {
            let guard = &epoch::pin();
            while let Some(item) = self.extract_max(guard) {
                out.push(item);
            }
        }
    }

    impl<V> Drop for RunStack<V> {
        fn drop(&mut self) {
            // Exclusive access: free the chain directly.
            let guard = unsafe { epoch::unprotected() };
            let mut cur = self.head.load(Ordering::Relaxed, guard);
            while !cur.is_null() {
                // SAFETY: exclusive; nodes unlinked here were never handed
                // to the collector (only prefix pops defer-destroy, and
                // those are removed from the chain).
                let boxed = unsafe { cur.into_owned() };
                cur = boxed.next.load(Ordering::Relaxed, guard);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn push_and_extract_in_global_order() {
            let rs: RunStack<u64> = RunStack::new();
            rs.push_run(vec![(5, 5), (1, 1), (9, 9)]);
            rs.push_run(vec![(7, 7), (3, 3)]);
            let guard = &epoch::pin();
            assert_eq!(rs.peek_max(guard), Some(9));
            let mut got = Vec::new();
            while let Some((k, _)) = rs.extract_max(guard) {
                got.push(k);
            }
            assert_eq!(got, vec![9, 7, 5, 3, 1], "global descending order");
            assert_eq!(rs.len_hint(guard), 0);
        }

        #[test]
        fn empty_run_push_is_noop() {
            let rs: RunStack<u64> = RunStack::new();
            rs.push_run(Vec::new());
            let guard = &epoch::pin();
            assert_eq!(rs.extract_max(guard), None);
        }

        #[test]
        fn concurrent_spill_and_extract_conserves() {
            use std::sync::atomic::{AtomicU64, Ordering as O};
            use std::sync::Arc;
            let rs: Arc<RunStack<u64>> = Arc::new(RunStack::new());
            let got = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for t in 0..4u64 {
                let rs = Arc::clone(&rs);
                let got = Arc::clone(&got);
                handles.push(std::thread::spawn(move || {
                    for r in 0..100u64 {
                        let run: Vec<(u64, u64)> =
                            (0..20).map(|i| ((t * 100 + r + i) % 997, i)).collect();
                        rs.push_run(run);
                        let guard = &epoch::pin();
                        for _ in 0..10 {
                            if rs.extract_max(guard).is_some() {
                                got.fetch_add(1, O::Relaxed);
                            }
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let guard = &epoch::pin();
            let mut rest = 0u64;
            while rs.extract_max(guard).is_some() {
                rest += 1;
            }
            assert_eq!(got.load(O::Relaxed) + rest, 4 * 100 * 20);
        }

        #[test]
        fn drop_frees_unclaimed_values() {
            use std::sync::atomic::{AtomicI64, Ordering as O};
            use std::sync::Arc;
            struct D(Arc<AtomicI64>);
            impl Drop for D {
                fn drop(&mut self) {
                    self.0.fetch_sub(1, O::SeqCst);
                }
            }
            let live = Arc::new(AtomicI64::new(0));
            {
                let rs: RunStack<D> = RunStack::new();
                let mk = |n: u64, live: &Arc<AtomicI64>| {
                    (0..n)
                        .map(|i| {
                            live.fetch_add(1, O::SeqCst);
                            (i, D(Arc::clone(live)))
                        })
                        .collect::<Vec<_>>()
                };
                rs.push_run(mk(10, &live));
                rs.push_run(mk(5, &live));
                let guard = &epoch::pin();
                for _ in 0..7 {
                    drop(rs.extract_max(guard));
                }
            }
            assert_eq!(
                live.load(O::SeqCst),
                0,
                "claimed + dropped + chained all freed"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_behaves_strictly() {
        // One thread sees its own local plus the global: with k large the
        // order is exact.
        let q = KLsm::new(1024);
        for k in [9u64, 1, 55, 23, 55] {
            q.insert(k, k);
        }
        for expect in [55u64, 55, 23, 9, 1] {
            assert_eq!(q.extract_max().map(|p| p.0), Some(expect));
        }
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn spill_moves_locals_to_global() {
        let q = KLsm::new(4);
        for i in 0..20u64 {
            q.insert(i, i);
        }
        // k=4: most elements must have spilled.
        assert!(q.len_hint() >= 15, "global holds spilled runs");
        let mut got = Vec::new();
        while let Some((k, _)) = q.extract_max() {
            got.push(k);
        }
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn other_threads_locals_are_invisible() {
        // The paper's criticism, demonstrated: a producer buffers fewer
        // than k elements and parks; the consumer sees an empty queue.
        let q = Arc::new(KLsm::new(64));
        let q2 = Arc::clone(&q);
        std::thread::spawn(move || {
            for i in 0..10u64 {
                q2.insert(i, i); // stays in that thread's local (10 < 64)
            }
        })
        .join()
        .unwrap();
        assert_eq!(
            q.extract_max(),
            None,
            "k-LSM extract must miss elements in another thread's local"
        );
        // drain_all (quiescent, &mut) still recovers them.
        let mut q = Arc::try_unwrap(q).map_err(|_| ()).unwrap();
        assert_eq!(q.drain_all().len(), 10);
    }

    #[test]
    fn concurrent_conservation_with_drain() {
        let q = Arc::new(KLsm::new(16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut got = 0u64;
                for i in 0..3000u64 {
                    q.insert(t * 3000 + i, i);
                    if i % 2 == 0 && q.extract_max().is_some() {
                        got += 1;
                    }
                }
                got
            }));
        }
        let got: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut q = Arc::try_unwrap(q).map_err(|_| ()).unwrap();
        let rest = q.drain_all().len() as u64;
        assert_eq!(got + rest, 12_000);
    }
}
