//! Comparator priority queues for the ZMSQ evaluation.
//!
//! Every queue the paper measures against or discusses (§2, §4):
//!
//! * [`Mound`] — the lock-based mound of Liu & Spear (§2.2): a binary
//!   tree of sorted lists with the plain insertion rule. ZMSQ's direct
//!   ancestor and the "mound" curves of Figs. 3, 5, 7.
//! * [`SprayList`] — Alistarh et al.'s relaxed skiplist (§2.1): a
//!   lock-free skiplist whose `extract_max` "sprays" a random walk over a
//!   thread-count-dependent prefix. The "SprayList" curves of Figs. 5–8
//!   and Table 1. Reclaimed with epochs (strictly kinder than the leaky
//!   original the paper measured).
//! * [`MultiQueue`] — Rihani et al.: `c·T` locked heaps, insert into a
//!   random one, extract from the better of two random picks (§2.1).
//! * [`KLsm`] — a simplified k-LSM (Wimmer et al., §2.1): thread-local
//!   log-structured merge components of bounded size `k` spilling into a
//!   shared global LSM. Reproduces the deficiency the paper criticizes:
//!   `extract_max` can miss elements buffered in *other* threads' locals.
//! * [`CoarseHeap`] — a single-lock `BinaryHeap`: the strict,
//!   non-scalable yardstick.
//! * [`FifoQueue`] — priority-blind FIFO order: the accuracy *floor* of
//!   Table 1 ("the SprayList is even worse than a FIFO queue").
//! * [`StrictSkiplistPq`] — Lotan–Shavit-style delete-max-at-front over
//!   the same skiplist substrate as the SprayList (spray width 1).
//!
//! All implement [`pq_traits::ConcurrentPriorityQueue`].

#![warn(missing_docs)]

pub mod epoch;
mod fifo;
mod heap;
mod klsm;
mod mound;
mod multiqueue;
mod skiplist;
mod spraylist;

pub use fifo::FifoQueue;
pub use heap::CoarseHeap;
pub use klsm::KLsm;
pub use mound::Mound;
pub use multiqueue::MultiQueue;
pub use spraylist::{SprayList, StrictSkiplistPq};
