//! Lock-free skiplist substrate for the SprayList and the strict
//! skiplist priority queue.
//!
//! A Harris–Michael style skiplist ordered **descending** by
//! `(priority, node address)` — the address tiebreak makes every key
//! unique, so a search for a specific node's key passes through it at
//! every level it occupies (which is what lets deletion unlink a whole
//! tower deterministically, even among duplicate priorities).
//!
//! Extraction is two-phase, as in the SprayList: a consumer **claims** a
//! node (CAS on its `claimed` flag — the linearization point), then marks
//! the tower and lazily unlinks it. Marked nodes may linger and are
//! skipped by traversals; the original SprayList leaks them without a GC
//! (§2.1: "This necessitates the use of a tracing garbage collector") —
//! here the in-repo epoch collector ([`crate::epoch`]) reclaims them,
//! which if anything *flatters* this baseline relative to the paper's
//! leaky C++ version.
//!
//! One deviation from full lock-freedom: a claimer waits for the
//! inserter's `fully_linked` flag before marking, which makes tower
//! teardown race-free at the cost of a bounded wait on an in-flight
//! insert. The paper's comparison is about scalability of the spray vs.
//! the ZMSQ pool, which this preserves.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::epoch::{self, Atomic, Guard, Owned, Shared};

pub(crate) const MAX_HEIGHT: usize = 20;
const MARK: usize = 1;

pub(crate) struct Node<V> {
    prio: u64,
    value: UnsafeCell<MaybeUninit<V>>,
    /// Set by the unique extractor that owns this element.
    claimed: AtomicBool,
    /// Set by the inserter once every level is linked.
    fully_linked: AtomicBool,
    /// Levels unlinked so far; the thread that unlinks the last level
    /// schedules destruction.
    unlinked: AtomicUsize,
    height: usize,
    next: [Atomic<Node<V>>; MAX_HEIGHT],
}

// SAFETY: `value` ownership is transferred through the claim CAS; all
// other fields are atomic or immutable after construction.
unsafe impl<V: Send> Send for Node<V> {}
unsafe impl<V: Send> Sync for Node<V> {}

impl<V> Node<V> {
    fn key(&self) -> (u64, usize) {
        (self.prio, self as *const _ as usize)
    }
}

impl<V> Drop for Node<V> {
    fn drop(&mut self) {
        if !*self.claimed.get_mut() {
            // SAFETY: unclaimed => the value was written at insert and
            // never moved out.
            unsafe { self.value.get_mut().assume_init_drop() };
        }
    }
}

/// The concurrent skiplist. Not a queue by itself — `SprayList` and
/// `StrictSkiplistPq` wrap it with their extraction policies.
pub(crate) struct SkipList<V> {
    head: [Atomic<Node<V>>; MAX_HEIGHT],
    len: AtomicUsize,
}

struct FindResult<'g, V> {
    preds: [Option<&'g Node<V>>; MAX_HEIGHT], // None = head sentinel
    succs: [Shared<'g, Node<V>>; MAX_HEIGHT],
}

impl<V: Send> SkipList<V> {
    pub fn new() -> Self {
        Self {
            head: std::array::from_fn(|_| Atomic::null()),
            len: AtomicUsize::new(0),
        }
    }

    /// Approximate live length.
    pub fn len_hint(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn head_link(&self, level: usize) -> &Atomic<Node<V>> {
        &self.head[level]
    }

    fn pred_link<'g>(&'g self, pred: Option<&'g Node<V>>, level: usize) -> &'g Atomic<Node<V>> {
        match pred {
            None => self.head_link(level),
            Some(p) => &p.next[level],
        }
    }

    /// Search for `key`, unlinking marked nodes encountered on the path.
    /// On return, for every level: `pred.key > key >= succ.key` with both
    /// unmarked at observation time.
    fn find<'g>(&'g self, key: (u64, usize), guard: &'g Guard) -> FindResult<'g, V> {
        'retry: loop {
            let mut result = FindResult {
                preds: [None; MAX_HEIGHT],
                succs: std::array::from_fn(|_| Shared::null()),
            };
            let mut pred: Option<&'g Node<V>> = None;
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr = self.pred_link(pred, level).load(Ordering::Acquire, guard);
                loop {
                    // A marked pred link means pred itself is being
                    // removed; restart from the head.
                    if curr.tag() == MARK {
                        continue 'retry;
                    }
                    let Some(c) = (unsafe { curr.as_ref() }) else {
                        break;
                    };
                    let succ = c.next[level].load(Ordering::Acquire, guard);
                    if succ.tag() == MARK {
                        // `c` is logically deleted: unlink it at this level.
                        match self.pred_link(pred, level).compare_exchange(
                            curr.with_tag(0),
                            succ.with_tag(0),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                            guard,
                        ) {
                            Ok(_) => {
                                let done = c.unlinked.fetch_add(1, Ordering::AcqRel) + 1;
                                if done == c.height {
                                    // Fully unreachable: reclaim.
                                    // SAFETY: unlinked from every level it
                                    // was linked at; epoch defers the free
                                    // past all current readers.
                                    unsafe { guard.defer_destroy(curr) };
                                }
                                curr = succ.with_tag(0);
                                continue;
                            }
                            Err(_) => continue 'retry,
                        }
                    }
                    if c.key() > key {
                        pred = Some(c);
                        curr = succ;
                    } else {
                        break;
                    }
                }
                result.preds[level] = pred;
                result.succs[level] = curr;
            }
            return result;
        }
    }

    fn random_height() -> usize {
        use std::cell::Cell;
        thread_local! {
            static S: Cell<u64> = const { Cell::new(0xC0FF_EE11_0BAD_F00D) };
        }
        let r = S.with(|s| {
            let mut x = s.get();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            x
        });
        // Geometric(1/2), capped: trailing_zeros of a uniform word is
        // geometric (r == 0, astronomically rare, is absorbed by the cap).
        ((r.trailing_zeros() as usize) + 1).min(MAX_HEIGHT)
    }

    /// Insert a `(prio, value)` pair.
    pub fn insert(&self, prio: u64, value: V) {
        let guard = &epoch::pin();
        let height = Self::random_height();
        let node = Owned::new(Node {
            prio,
            value: UnsafeCell::new(MaybeUninit::new(value)),
            claimed: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            unlinked: AtomicUsize::new(0),
            height,
            next: std::array::from_fn(|_| Atomic::null()),
        });
        let node = node.into_shared(guard);
        // SAFETY: just allocated, uniquely owned until linked.
        let node_ref = unsafe { node.deref() };
        let key = node_ref.key();

        // Link level 0 first; the node becomes logically present here.
        loop {
            let found = self.find(key, guard);
            node_ref.next[0].store(found.succs[0], Ordering::Relaxed);
            if self
                .pred_link(found.preds[0], 0)
                .compare_exchange(
                    found.succs[0],
                    node.with_tag(0),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                )
                .is_ok()
            {
                break;
            }
        }
        // Link the upper levels. No claimer can mark the tower until
        // `fully_linked`, so these CAS races are only against other
        // finds/inserts.
        for level in 1..height {
            loop {
                let found = self.find(key, guard);
                node_ref.next[level].store(found.succs[level], Ordering::Relaxed);
                if self
                    .pred_link(found.preds[level], level)
                    .compare_exchange(
                        found.succs[level],
                        node.with_tag(0),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        node_ref.fully_linked.store(true, Ordering::Release);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Try to take ownership of `node`'s element. On success the element
    /// is returned and the tower is marked + lazily unlinked.
    fn try_claim<'g>(&self, node: &'g Node<V>, guard: &'g Guard) -> Option<(u64, V)> {
        if node.claimed.load(Ordering::Relaxed) {
            return None;
        }
        if node
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return None;
        }
        // We own the element. Wait out an in-flight insert (bounded by
        // the inserter's remaining work).
        let mut spins = 0u32;
        while !node.fully_linked.load(Ordering::Acquire) {
            std::hint::spin_loop();
            spins += 1;
            if spins > 1 << 14 {
                std::thread::yield_now();
            }
        }
        // SAFETY: the claim CAS made us the unique owner; the inserter's
        // release store of `fully_linked` ordered the value write (and
        // level-0 link release) before our acquire.
        let value = unsafe { (*node.value.get()).assume_init_read() };
        self.len.fetch_sub(1, Ordering::Relaxed);

        // Logically delete: mark every level top-down.
        for level in (0..node.height).rev() {
            let mut succ = node.next[level].load(Ordering::Acquire, guard);
            while succ.tag() != MARK {
                match node.next[level].compare_exchange(
                    succ,
                    succ.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                    guard,
                ) {
                    Ok(_) => break,
                    Err(e) => succ = e.current,
                }
            }
        }
        // One search pass physically unlinks the tower (or later
        // traversals will).
        let _ = self.find(node.key(), guard);
        Some((node.prio, value))
    }

    /// Claim the first (largest-priority) claimable node. Returns `None`
    /// only if no claimable node exists — i.e. the list is (logically)
    /// empty at the scan's linearization.
    pub fn claim_first(&self, guard: &Guard) -> Option<(u64, V)> {
        loop {
            let mut curr = self.head_link(0).load(Ordering::Acquire, guard);
            let mut claimed_hit = false;
            while let Some(c) = unsafe { curr.as_ref() } {
                let succ = c.next[0].load(Ordering::Acquire, guard);
                if succ.tag() != MARK {
                    if let Some(got) = self.try_claim(c, guard) {
                        return Some(got);
                    }
                    claimed_hit = true;
                }
                curr = succ.with_tag(0);
            }
            if !claimed_hit {
                return None;
            }
            // Every node we saw was claimed by someone else mid-scan;
            // rescan (they may be unlinked by now, or the list is empty).
            if self.len.load(Ordering::Relaxed) == 0 {
                return None;
            }
        }
    }

    /// The SprayList extraction: a random descending walk over the first
    /// ~O(T·polylog T) nodes, then claim near where it lands.
    ///
    /// May spuriously return `None` on a nonempty list — a documented
    /// SprayList property the paper's producer/consumer experiment
    /// penalizes (§4.5.2).
    pub fn spray_claim(&self, threads: usize, guard: &Guard) -> Option<(u64, V)> {
        let t = threads.max(1);
        if t == 1 {
            // One thread sprays nowhere: strict front claim (§2.1 "with 1
            // thread, the SprayList is a strict priority queue").
            return self.claim_first(guard);
        }
        const ATTEMPTS: usize = 3;
        let start_height = ((usize::BITS - t.leading_zeros()) as usize + 1).min(MAX_HEIGHT - 1);
        let log_t = (usize::BITS - t.leading_zeros()) as u64;
        // Total walk span over the front of the list. The SprayList
        // analysis allows O(T·log³T); the constant here is calibrated so
        // a 1K-element queue reproduces Table 1's crossover (near-strict
        // at T<=8, FIFO-like past T~32). Clamping to the current length
        // keeps small queues landing *somewhere* instead of overshooting.
        let span = (2 * t as u64 * log_t).min(self.len_hint().max(2) as u64);

        for _ in 0..ATTEMPTS {
            // Descend with random forward jumps; per-level budgets split
            // the span so expected total displacement ≈ span / 2.
            let mut pred: Option<&Node<V>> = None;
            for level in (0..=start_height).rev() {
                let per_level = (span / ((1u64 << level) * (start_height as u64 + 1))).max(1);
                let jump = Self::rand_below(per_level + 1);
                let mut steps = 0;
                let mut curr = self.pred_link(pred, level).load(Ordering::Acquire, guard);
                while steps < jump {
                    let Some(c) = (unsafe { curr.as_ref() }) else {
                        break;
                    };
                    let succ = c.next[level].load(Ordering::Acquire, guard);
                    if succ.tag() != MARK {
                        pred = Some(c);
                        steps += 1;
                    }
                    curr = succ.with_tag(0);
                }
            }
            // Walk level 0 from the landing point, claiming the first
            // claimable node within a small window.
            const WINDOW: usize = 16;
            let mut curr = self.pred_link(pred, 0).load(Ordering::Acquire, guard);
            for _ in 0..WINDOW {
                let Some(c) = (unsafe { curr.as_ref() }) else {
                    break;
                };
                let succ = c.next[0].load(Ordering::Acquire, guard);
                if succ.tag() != MARK {
                    if let Some(got) = self.try_claim(c, guard) {
                        return Some(got);
                    }
                }
                curr = succ.with_tag(0);
            }
        }
        // Become a cleaner with probability 1/T: linear front claim that
        // also physically unlinks the marked prefix.
        if Self::rand_below(t as u64) == 0 {
            return self.claim_first(guard);
        }
        None
    }

    fn rand_below(n: u64) -> u64 {
        use std::cell::Cell;
        thread_local! {
            static S: Cell<u64> = const { Cell::new(0x5EED_CAFE_1234_5678) };
        }
        S.with(|s| {
            let mut x = s.get();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            (((x as u128) * (n as u128)) >> 64) as u64
        })
    }
}

impl<V> Drop for SkipList<V> {
    fn drop(&mut self) {
        // Exclusive access: walk every level collecting distinct nodes
        // (partially unlinked towers may be reachable only from upper
        // levels), then free them exactly once.
        let mut ptrs: Vec<usize> = Vec::new();
        let guard = unsafe { epoch::unprotected() };
        for level in 0..MAX_HEIGHT {
            let mut curr = self.head[level].load(Ordering::Relaxed, guard);
            while let Some(c) = unsafe { curr.as_ref() } {
                ptrs.push(c as *const Node<V> as usize);
                curr = c.next[level].load(Ordering::Relaxed, guard).with_tag(0);
            }
        }
        ptrs.sort_unstable();
        ptrs.dedup();
        for p in ptrs {
            // SAFETY: each collected node is owned by the list (anything
            // fully unlinked was handed to the epoch collector instead)
            // and freed exactly once thanks to the dedup.
            unsafe { drop(Box::from_raw(p as *mut Node<V>)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn random_height_is_geometric() {
        // Regression: a bad bit trick once pinned every node at height 1,
        // silently turning the skiplist into a linked list.
        let mut counts = [0usize; MAX_HEIGHT + 1];
        for _ in 0..4096 {
            let h = SkipList::<u64>::random_height();
            assert!((1..=MAX_HEIGHT).contains(&h));
            counts[h] += 1;
        }
        assert!(
            counts[1] > 1500 && counts[1] < 2600,
            "P(h=1) ~ 1/2: {counts:?}"
        );
        let tall: usize = counts[3..].iter().sum();
        assert!(tall > 700, "P(h>=3) ~ 1/4: {counts:?}");
    }

    #[test]
    fn insert_and_claim_first_is_ordered() {
        let sl = SkipList::new();
        for k in [5u64, 99, 3, 42, 77] {
            sl.insert(k, k);
        }
        let guard = &epoch::pin();
        for expect in [99u64, 77, 42, 5, 3] {
            assert_eq!(sl.claim_first(guard), Some((expect, expect)));
        }
        assert_eq!(sl.claim_first(guard), None);
    }

    #[test]
    fn duplicates_all_claimable() {
        let sl = SkipList::new();
        for i in 0..50u64 {
            sl.insert(7, i);
        }
        let guard = &epoch::pin();
        let mut vals = Vec::new();
        while let Some((k, v)) = sl.claim_first(guard) {
            assert_eq!(k, 7);
            vals.push(v);
        }
        vals.sort_unstable();
        assert_eq!(vals, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks() {
        let sl = SkipList::new();
        assert_eq!(sl.len_hint(), 0);
        for i in 0..100u64 {
            sl.insert(i, i);
        }
        assert_eq!(sl.len_hint(), 100);
        let guard = &epoch::pin();
        for _ in 0..40 {
            sl.claim_first(guard).unwrap();
        }
        assert_eq!(sl.len_hint(), 60);
    }

    #[test]
    fn spray_returns_high_elements() {
        let sl = SkipList::new();
        for i in 0..10_000u64 {
            sl.insert(i, i);
        }
        let guard = &epoch::pin();
        let mut got = 0usize;
        let mut sum = 0u64;
        while got < 200 {
            if let Some((k, _)) = sl.spray_claim(8, guard) {
                sum += k;
                got += 1;
            }
        }
        let mean = sum / 200;
        assert!(mean > 9_000, "spray mean rank too low: {mean}");
    }

    #[test]
    fn spray_single_thread_is_strict() {
        let sl = SkipList::new();
        for k in [1u64, 5, 3] {
            sl.insert(k, k);
        }
        let guard = &epoch::pin();
        assert_eq!(sl.spray_claim(1, guard), Some((5, 5)));
        assert_eq!(sl.spray_claim(1, guard), Some((3, 3)));
        assert_eq!(sl.spray_claim(1, guard), Some((1, 1)));
        assert_eq!(sl.spray_claim(1, guard), None);
    }

    #[test]
    fn concurrent_insert_claim_conserves() {
        const THREADS: usize = 4;
        const PER: u64 = 5_000;
        let sl = Arc::new(SkipList::new());
        let mut handles = Vec::new();
        for t in 0..THREADS as u64 {
            let sl = Arc::clone(&sl);
            handles.push(std::thread::spawn(move || {
                let mut claimed = 0u64;
                for i in 0..PER {
                    sl.insert(t * PER + i, i);
                    if i % 2 == 0 {
                        let guard = &epoch::pin();
                        if sl.spray_claim(THREADS, guard).is_some() {
                            claimed += 1;
                        }
                    }
                }
                claimed
            }));
        }
        let claimed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let guard = &epoch::pin();
        let mut rest = 0u64;
        while sl.claim_first(guard).is_some() {
            rest += 1;
        }
        assert_eq!(claimed + rest, THREADS as u64 * PER);
    }

    #[test]
    fn drop_frees_values() {
        use std::sync::atomic::AtomicU64;
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicU64::new(0));
        {
            let sl = SkipList::new();
            for i in 0..500u64 {
                live.fetch_add(1, Ordering::SeqCst);
                sl.insert(i, D(Arc::clone(&live)));
            }
            // Claim some (their values drop here), leave the rest to the
            // list's Drop.
            let guard = &epoch::pin();
            for _ in 0..100 {
                drop(sl.claim_first(guard));
            }
        }
        // Claimed values dropped by us; unclaimed by SkipList::drop;
        // unlinked towers by the epoch collector, which may defer — flush.
        for _ in 0..1000 {
            epoch::pin().flush();
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }
}
