//! Core scheduler tests: these run in the default build (no features)
//! because the det machinery is always compiled — only the hooks in the
//! production crates are feature-gated.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use det::{Config, FailureKind, Strategy};

/// Two read-modify-write vthreads with a preemption point between the
/// load and the store: the canonical depth-1 race.
fn lost_update_body() {
    let c = Arc::new(AtomicU64::new(0));
    let hs: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            det::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                det::yield_point("test.rmw");
                c.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in hs {
        h.join();
    }
    assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn sequential_body_is_trivially_clean() {
    let cfg = Config::new(1).schedules(4);
    let stats = det::explore_result(&cfg, || {
        let h = det::spawn(|| 41 + 1);
        assert_eq!(h.join(), 42);
    })
    .expect("no failure possible");
    assert_eq!(stats.schedules, 4);
}

#[test]
fn random_walk_finds_lost_update() {
    let cfg = Config::new(0xD5EED).schedules(64).shrink_budget(24);
    let f = det::explore_result(&cfg, lost_update_body).unwrap_err();
    assert!(matches!(f.kind, FailureKind::Panic(_)), "got {:?}", f.kind);
    assert!(f.shrunk.len() <= f.trace.len());
}

#[test]
fn pct_finds_lost_update() {
    let cfg = Config::new(0xD5EED)
        .schedules(256)
        .strategy(Strategy::Pct { depth: 3 })
        // The toy body is ~8 decisions long; keep the change-point
        // horizon in the same range so change points actually fire.
        .pct_horizon(12)
        .shrink_budget(24);
    let f = det::explore_result(&cfg, lost_update_body).unwrap_err();
    assert!(matches!(f.kind, FailureKind::Panic(_)));
}

/// The acceptance property: a failing schedule replays byte-identically
/// from its seed across two consecutive runs — same schedule index,
/// same trace, same shrunk trace, same rendered report.
#[test]
fn failure_replays_byte_identically() {
    let cfg = Config::new(0xC0FFEE).schedules(64).shrink_budget(24);
    let a = det::explore_result(&cfg, lost_update_body).unwrap_err();
    let b = det::explore_result(&cfg, lost_update_body).unwrap_err();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.shrunk, b.shrunk);
    assert_eq!(format!("{a}"), format!("{b}"));

    // And replaying exactly that schedule (the DET_SCHEDULE workflow)
    // reproduces the same failure without exploring anything else.
    let replay_cfg = cfg.clone().only(a.schedule).shrink_budget(0);
    let r = det::explore_result(&replay_cfg, lost_update_body).unwrap_err();
    assert_eq!(r.trace, a.trace);
    assert_eq!(r.kind, a.kind);
}

#[test]
fn deadlock_is_detected_deterministically() {
    let cfg = Config::new(7).schedules(2).shrink_budget(4);
    let f = det::explore_result(&cfg, || {
        let atom = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&atom);
        let h = det::spawn(move || {
            // Parks forever: nobody ever wakes this key.
            det::futex_wait_intercept(a.as_ptr() as usize, || true, None);
        });
        h.join();
    })
    .unwrap_err();
    assert!(
        matches!(f.kind, FailureKind::Deadlock(_)),
        "got {:?}",
        f.kind
    );
    let msg = format!("{}", f.kind);
    assert!(
        msg.contains("futex#0"),
        "stable futex label in report: {msg}"
    );
}

#[test]
fn virtual_time_expires_timed_waits_instantly() {
    let t0 = Instant::now();
    let cfg = Config::new(9).schedules(8);
    det::explore_result(&cfg, || {
        let atom = AtomicU32::new(0);
        // One virtual hour; nobody wakes us.
        let woken = det::futex_wait_intercept(
            atom.as_ptr() as usize,
            || true,
            Some(Duration::from_secs(3600)),
        )
        .expect("inside a det schedule");
        assert!(!woken, "must report timeout");
        assert!(det::vclock_ns() >= 3_600_000_000_000);
    })
    .expect("timeout path is clean");
    // 8 virtual hours elapsed; real time must be trivial.
    assert!(t0.elapsed() < Duration::from_secs(30));
}

#[test]
fn wake_unparks_waiter() {
    let cfg = Config::new(11).schedules(32).spurious_wakes(false);
    det::explore_result(&cfg, || {
        let atom = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&atom);
        let waiter = det::spawn(move || {
            while a.load(Ordering::Acquire) == 0 {
                det::futex_wait_intercept(
                    a.as_ptr() as usize,
                    || a.load(Ordering::Acquire) == 0,
                    None,
                );
            }
        });
        atom.store(1, Ordering::Release);
        det::futex_wake_intercept(atom.as_ptr() as usize, u32::MAX);
        waiter.join();
    })
    .expect("wake must always release the waiter");
}

/// With spurious wakeups enabled, at least one schedule must deliver a
/// wakeup that no one sent (the waiter observes `woken == true` while
/// the word is still 0), forcing the re-check path.
#[test]
fn spurious_wakeups_are_explored() {
    static SPURIOUS_SEEN: AtomicU64 = AtomicU64::new(0);
    let cfg = Config::new(13).schedules(64).spurious_wakes(true);
    det::explore_result(&cfg, || {
        let atom = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&atom);
        let waiter = det::spawn(move || {
            while a.load(Ordering::Acquire) == 0 {
                let woken = det::futex_wait_intercept(
                    a.as_ptr() as usize,
                    || a.load(Ordering::Acquire) == 0,
                    None,
                )
                .expect("in det schedule");
                if woken && a.load(Ordering::Acquire) == 0 {
                    SPURIOUS_SEEN.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        // Stay runnable for a while so the scheduler has chances to
        // spuriously wake the waiter, then release it for real.
        for _ in 0..16 {
            det::yield_point("test.busy");
        }
        atom.store(1, Ordering::Release);
        det::futex_wake_intercept(atom.as_ptr() as usize, 1);
        waiter.join();
    })
    .expect("spurious wakeups never break a correct predicate loop");
    assert!(
        SPURIOUS_SEEN.load(Ordering::Relaxed) > 0,
        "64 schedules with spurious wakeups on must hit the spurious path"
    );
}

#[test]
fn vthread_rng_seeds_are_stable_per_schedule() {
    let seeds = Arc::new(std::sync::Mutex::new(Vec::new()));
    let collect = {
        let seeds = Arc::clone(&seeds);
        move || {
            let s0 = det::vthread_rng_seed().expect("root is a vthread");
            let h = det::spawn(move || det::vthread_rng_seed().unwrap());
            let s1 = h.join();
            assert_ne!(s0, s1, "vthreads get distinct streams");
            seeds.lock().unwrap().push((s0, s1));
        }
    };
    let cfg = Config::new(0xABCD).schedules(2).only(1);
    det::explore_result(&cfg, collect.clone()).unwrap();
    det::explore_result(&cfg, collect).unwrap();
    let v = seeds.lock().unwrap();
    assert_eq!(v[0], v[1], "same (seed, schedule) ⇒ same vthread seeds");
}

#[test]
fn step_limit_reports_livelock() {
    let cfg = Config::new(3).schedules(1).max_steps(500).shrink_budget(0);
    let f = det::explore_result(&cfg, || loop {
        det::yield_point("test.spin");
    })
    .unwrap_err();
    assert!(matches!(f.kind, FailureKind::StepLimit(_)));
}

#[test]
fn from_env_defaults_match_new() {
    // Only checks the default path (env vars unset in the harness).
    if std::env::var_os("DET_SEED").is_none() {
        let cfg = Config::from_env(0x1234);
        assert_eq!(cfg.seed, 0x1234);
    }
}
