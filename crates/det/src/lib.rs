//! Deterministic schedule exploration ("loom-lite") for the ZMSQ
//! reproduction.
//!
//! Stress tests probe interleavings with OS-scheduler luck; this crate
//! *controls* them. A test body runs as a set of **virtual threads**
//! (real OS threads serialized one-runnable-at-a-time by a token gate),
//! and a seeded scheduler picks who runs at every **decision point**:
//! the cfg-gated yield points threaded through `zmsq-sync`'s trylocks,
//! futexes and backoff, `zmsq`'s insert/extract/pool paths and `smr`'s
//! hazard-pointer protect/retire, plus `det::spawn`/`join` and the
//! futex park/wake interposition.
//!
//! * **Strategies** — seeded random walk and PCT (random priorities
//!   with `d − 1` priority change points), see [`Strategy`].
//! * **Virtual time** — timed futex waits park with a virtual deadline;
//!   the clock only advances when nothing is runnable, so a 10-second
//!   timeout costs microseconds and timeout paths are exhaustively
//!   explorable. All-blocked-with-no-deadline is reported as a
//!   deadlock, which turns lost-wakeup bugs into deterministic
//!   failures.
//! * **Replay & shrinking** — every schedule is a pure function of
//!   `(seed, schedule index)`; a failure report prints both, and
//!   re-running with `DET_SEED`/`DET_SCHEDULE` reproduces it
//!   byte-identically. The recorded choice trace is delta-debugged
//!   (chunk deletion, then zeroing toward fewer context switches) into
//!   a minimal schedule before reporting.
//!
//! # Hooking model
//!
//! The scheduler machinery in this crate is always compiled (plain safe
//! std code, unit-tested in the default build). What the `det-sched`
//! feature gates is the *call sites* in the production crates: the
//! [`det_point!`], [`det_futex_wait!`], [`det_futex_wake!`] and
//! [`det_thread_seed!`] macros expand to nothing without it — the same
//! zero-cost pattern as `fault::fail_point!` and `obs::trace_event!`.
//! Enable the workspace-level `det-sched` feature (which forwards to
//! every instrumented crate) when running det tests; enabling only
//! `det/det-sched` would give you yield points without futex
//! interposition and schedules could stall on real futexes.
//!
//! # Limitations
//!
//! Serialized execution explores *interleavings at yield-point
//! granularity under sequential consistency*. It cannot observe weak
//! memory reordering — that is Miri's / the memory model's domain — and
//! it only preempts where a hook exists, so races between two plain
//! loads with no decision point in between are invisible. The yield
//! point map in DESIGN.md lists where preemption can happen.
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // A classic lost update: load, preemption point, store.
//! fn body() {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let hs: Vec<_> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&c);
//!             det::spawn(move || {
//!                 let v = c.load(Ordering::SeqCst);
//!                 det::yield_point("example.rmw");
//!                 c.store(v + 1, Ordering::SeqCst);
//!             })
//!         })
//!         .collect();
//!     for h in hs {
//!         h.join();
//!     }
//!     assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
//! }
//!
//! let cfg = det::Config::new(0xD5EED).schedules(64).shrink_budget(16);
//! let failure = det::explore_result(&cfg, body).unwrap_err();
//! assert!(matches!(failure.kind, det::FailureKind::Panic(_)));
//! ```

#![warn(missing_docs)]

mod explore;
mod sched;
mod strategy;

pub use explore::{explore, explore_result, Config, ExploreStats, Failure};
pub use sched::{
    active, futex_wait_intercept, futex_wake_intercept, park_failed_vthread, spawn, vclock_ns,
    vthread_rng_seed, yield_point, FailureKind, JoinHandle,
};
pub use strategy::Strategy;

/// Named preemption point. Compiles to nothing without `det-sched`;
/// with it, a one-TLS-read no-op outside a det schedule.
#[cfg(feature = "det-sched")]
#[macro_export]
macro_rules! det_point {
    ($name:expr) => {
        $crate::yield_point($name)
    };
}

/// Named preemption point. Compiles to nothing without `det-sched`;
/// with it, a one-TLS-read no-op outside a det schedule.
#[cfg(not(feature = "det-sched"))]
#[macro_export]
macro_rules! det_point {
    ($name:expr) => {};
}

/// Futex-wait interposition: `det_futex_wait!(atom, expected, timeout)`
/// evaluates to `Option<bool>` — `Some(woken)` when a det schedule
/// handled the wait virtually (`false` = virtual timeout), `None` when
/// the caller must fall through to the real futex. Constant `None`
/// without `det-sched`.
#[cfg(feature = "det-sched")]
#[macro_export]
macro_rules! det_futex_wait {
    ($atom:expr, $expected:expr, $timeout:expr) => {{
        let __atom = &$atom;
        $crate::futex_wait_intercept(
            __atom.as_ptr() as usize,
            || __atom.load(::core::sync::atomic::Ordering::Acquire) == $expected,
            $timeout,
        )
    }};
}

/// Futex-wait interposition: `det_futex_wait!(atom, expected, timeout)`
/// evaluates to `Option<bool>` — `Some(woken)` when a det schedule
/// handled the wait virtually (`false` = virtual timeout), `None` when
/// the caller must fall through to the real futex. Constant `None`
/// without `det-sched`.
#[cfg(not(feature = "det-sched"))]
#[macro_export]
macro_rules! det_futex_wait {
    ($atom:expr, $expected:expr, $timeout:expr) => {
        ::core::option::Option::<bool>::None
    };
}

/// Futex-wake interposition: `det_futex_wake!(atom, count)` evaluates
/// to `Option<usize>` — `Some(woken)` when a det schedule handled the
/// wake virtually, `None` when the caller must issue the real wake.
/// Constant `None` without `det-sched`.
#[cfg(feature = "det-sched")]
#[macro_export]
macro_rules! det_futex_wake {
    ($atom:expr, $count:expr) => {
        $crate::futex_wake_intercept(($atom).as_ptr() as usize, $count)
    };
}

/// Futex-wake interposition: `det_futex_wake!(atom, count)` evaluates
/// to `Option<usize>` — `Some(woken)` when a det schedule handled the
/// wake virtually, `None` when the caller must issue the real wake.
/// Constant `None` without `det-sched`.
#[cfg(not(feature = "det-sched"))]
#[macro_export]
macro_rules! det_futex_wake {
    ($atom:expr, $count:expr) => {
        ::core::option::Option::<usize>::None
    };
}

/// Abort-on-unwind escape hatch: inside a det schedule this parks the
/// panicking vthread forever (never returns) instead of letting the
/// caller abort the whole exploration process; outside one — and always
/// without `det-sched` — it is a no-op and the caller's abort proceeds.
#[cfg(feature = "det-sched")]
#[macro_export]
macro_rules! det_unwind_park {
    () => {
        let _ = $crate::park_failed_vthread();
    };
}

/// Abort-on-unwind escape hatch: inside a det schedule this parks the
/// panicking vthread forever (never returns) instead of letting the
/// caller abort the whole exploration process; outside one — and always
/// without `det-sched` — it is a no-op and the caller's abort proceeds.
#[cfg(not(feature = "det-sched"))]
#[macro_export]
macro_rules! det_unwind_park {
    () => {};
}

/// Per-vthread deterministic RNG seed for thread-local generators:
/// `Some(seed)` inside a det schedule, constant `None` without
/// `det-sched` (the generator falls back to its normal seeding).
#[cfg(feature = "det-sched")]
#[macro_export]
macro_rules! det_thread_seed {
    () => {
        $crate::vthread_rng_seed()
    };
}

/// Per-vthread deterministic RNG seed for thread-local generators:
/// `Some(seed)` inside a det schedule, constant `None` without
/// `det-sched` (the generator falls back to its normal seeding).
#[cfg(not(feature = "det-sched"))]
#[macro_export]
macro_rules! det_thread_seed {
    () => {
        ::core::option::Option::<u64>::None
    };
}
