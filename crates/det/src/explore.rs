//! The explorer: run many schedules, stop at the first failure, shrink
//! its choice trace, and report it with everything needed for a
//! byte-identical replay.

use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use fault::DetRng;

use crate::sched::{vthread_main, FailureKind, Inner};
use crate::strategy::{Strategy, StrategyState};

/// Exploration parameters. Construct with [`Config::new`] or
/// [`Config::from_env`], then adjust with the builder methods.
#[derive(Clone, Debug)]
pub struct Config {
    /// Master seed; schedule `k` derives its own seed from `(seed, k)`.
    pub seed: u64,
    /// How many schedules to explore.
    pub schedules: u32,
    /// Run exactly one schedule index (replay mode).
    pub only: Option<u32>,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Per-schedule decision budget; exceeding it fails the schedule
    /// (livelock suspect).
    pub max_steps: u64,
    /// Offer futex-parked vthreads as spurious-wakeup candidates.
    pub spurious_wakes: bool,
    /// Replay budget for shrinking a failing trace (0 disables).
    pub shrink_budget: u32,
    /// PCT change-point horizon (decision indices are drawn in
    /// `1..=horizon`).
    pub pct_horizon: u64,
    /// Real-time watchdog per schedule; tripping it means det itself
    /// lost control (not replayable).
    pub wall_limit: Duration,
}

impl Config {
    /// Defaults: 64 random-walk schedules, 200k-step budget, shrinking on.
    pub fn new(seed: u64) -> Self {
        Config {
            seed,
            schedules: 64,
            only: None,
            strategy: Strategy::RandomWalk,
            max_steps: 200_000,
            spurious_wakes: false,
            shrink_budget: 80,
            pct_horizon: 1024,
            wall_limit: Duration::from_secs(60),
        }
    }

    /// Like [`Config::new`], honouring `DET_SEED` (decimal or `0x` hex),
    /// `DET_SCHEDULES`, and `DET_SCHEDULE` (replay a single schedule)
    /// environment overrides — the replay workflow printed in failure
    /// reports.
    pub fn from_env(default_seed: u64) -> Self {
        let mut cfg = Config::new(parse_env_u64("DET_SEED").unwrap_or(default_seed));
        if let Some(n) = parse_env_u64("DET_SCHEDULES") {
            cfg.schedules = n as u32;
        }
        if let Some(k) = parse_env_u64("DET_SCHEDULE") {
            cfg.only = Some(k as u32);
        }
        cfg
    }

    /// Set the number of schedules to explore.
    pub fn schedules(mut self, n: u32) -> Self {
        self.schedules = n;
        self
    }

    /// Set the scheduling strategy.
    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Set the per-schedule decision budget.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Enable or disable spurious-wakeup exploration.
    pub fn spurious_wakes(mut self, on: bool) -> Self {
        self.spurious_wakes = on;
        self
    }

    /// Set the shrink replay budget (0 disables shrinking).
    pub fn shrink_budget(mut self, n: u32) -> Self {
        self.shrink_budget = n;
        self
    }

    /// Run exactly one schedule index.
    pub fn only(mut self, k: u32) -> Self {
        self.only = Some(k);
        self
    }

    /// Set the PCT change-point horizon. Pick it close to the schedule's
    /// expected decision count: change points drawn past the end of the
    /// schedule never fire, so a horizon much larger than the real
    /// length degenerates PCT into run-to-completion order.
    pub fn pct_horizon(mut self, n: u64) -> Self {
        self.pct_horizon = n;
        self
    }
}

fn parse_env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Aggregate statistics from a clean exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreStats {
    /// Schedules executed.
    pub schedules: u32,
    /// Total decisions across all schedules.
    pub steps: u64,
}

/// A failing schedule: everything needed to reproduce and report it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Master seed of the exploration.
    pub seed: u64,
    /// Index of the failing schedule.
    pub schedule: u32,
    /// What went wrong.
    pub kind: FailureKind,
    /// Strategy in effect.
    pub strategy: Strategy,
    /// Number of vthreads the schedule had spawned.
    pub vthreads: usize,
    /// Decisions taken before the failure.
    pub steps: u64,
    /// Full recorded choice trace.
    pub trace: Vec<u32>,
    /// Shrunk choice trace (equal to `trace` when shrinking is off or
    /// the failure is not replayable).
    pub shrunk: Vec<u32>,
}

impl Failure {
    /// Write the report (plus the full trace) to
    /// `target/det-failure-<seed>-s<schedule>.txt`, best effort. CI
    /// uploads these as artifacts.
    pub fn write_artifact(&self) {
        let dir = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
        let path = format!(
            "{dir}/det-failure-0x{:016X}-s{}.txt",
            self.seed, self.schedule
        );
        let body = format!(
            "{self}\nfull trace ({} decisions):\n{:?}\n",
            self.trace.len(),
            self.trace
        );
        let _ = std::fs::write(&path, body);
        eprintln!("det: failure report written to {path}");
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "det: failing schedule found")?;
        writeln!(f, "  seed     = 0x{:016X}", self.seed)?;
        writeln!(f, "  schedule = {}", self.schedule)?;
        writeln!(f, "  strategy = {}", self.strategy.name())?;
        writeln!(f, "  vthreads = {}", self.vthreads)?;
        writeln!(f, "  steps    = {}", self.steps)?;
        writeln!(f, "  kind     = {}", self.kind)?;
        writeln!(
            f,
            "  trace    = {} decisions, shrunk to {}: {:?}",
            self.trace.len(),
            self.shrunk.len(),
            self.shrunk
        )?;
        write!(
            f,
            "  replay   = DET_SEED=0x{:X} DET_SCHEDULE={} <same test> (byte-identical)",
            self.seed, self.schedule
        )
    }
}

/// Suppress the default "thread 'det-vt…' panicked" spew: exploration
/// and shrinking intentionally re-run failing schedules many times, and
/// the panic text is already captured in the failure report. Installed
/// once, chains to the previous hook for every non-det thread.
fn install_panic_silencer() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let det_vt = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("det-vt"));
            if det_vt {
                // Record the failure pre-unwind: the unwind may never
                // reach `vthread_main`'s catch_unwind — an
                // abort-on-unwind guard in its path parks the vthread
                // mid-unwind instead (`park_failed_vthread`) — so the
                // report must be filed before unwinding starts. Do not
                // block here: std's panic-hook lock is held while the
                // hook runs.
                let payload = info.payload();
                let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                let msg = match info.location() {
                    Some(loc) => format!("{msg} (at {loc})"),
                    None => msg,
                };
                crate::sched::fail_current(msg);
                // Stay silent (no default-hook backtrace spam) and let
                // the unwind run; catch_unwind or an unwind guard
                // finishes the teardown.
                return;
            }
            prev(info);
        }));
    });
}

fn derive_schedule_seed(seed: u64, schedule: u32) -> u64 {
    let mut s = seed ^ u64::from(schedule).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    fault::rng::splitmix64(&mut s)
}

pub(crate) struct RunOutcome {
    pub failure: Option<FailureKind>,
    pub trace: Vec<u32>,
    pub steps: u64,
    pub vthreads: usize,
}

/// Execute one schedule (optionally replaying a recorded trace).
pub(crate) fn run_one(
    cfg: &Config,
    schedule: u32,
    replay: Option<Vec<u32>>,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> RunOutcome {
    install_panic_silencer();
    let schedule_seed = derive_schedule_seed(cfg.seed, schedule);
    let mut rng = DetRng::seed_from_u64(schedule_seed);
    let strategy = StrategyState::new(cfg.strategy, &mut rng, cfg.pct_horizon);
    let (tx, rx) = mpsc::channel();
    let inner = Arc::new(Inner::new(
        rng,
        strategy,
        replay,
        cfg.max_steps,
        schedule_seed,
        cfg.spurious_wakes,
        tx,
    ));
    let root_result: Arc<Mutex<Option<()>>> = Arc::new(Mutex::new(None));
    let os = {
        let inner = Arc::clone(&inner);
        let root_result = Arc::clone(&root_result);
        let body = Arc::clone(body);
        std::thread::Builder::new()
            .name("det-vt0".into())
            .stack_size(512 * 1024)
            .spawn(move || vthread_main(inner, 0, root_result, move || body()))
            .expect("failed to spawn det root vthread")
    };
    if rx.recv_timeout(cfg.wall_limit).is_err() {
        inner.fail_external(FailureKind::WallClock(cfg.wall_limit.as_secs()));
    }
    let (failure, trace, steps, vthreads) = inner.snapshot();
    if failure.is_none() {
        let _ = os.join();
    }
    RunOutcome {
        failure,
        trace,
        steps,
        vthreads,
    }
}

/// Delta-debug the failing choice trace: try deleting chunks, then
/// zeroing chunks (fewer context switches), keeping every mutation that
/// still fails. Replays are total — choices are taken mod the live
/// option count, and an exhausted trace falls back to the (seeded,
/// deterministic) strategy — so any mutation is a valid schedule.
fn shrink(
    cfg: &Config,
    schedule: u32,
    trace: &[u32],
    body: &Arc<dyn Fn() + Send + Sync>,
) -> Vec<u32> {
    let mut cur = trace.to_vec();
    let mut budget = cfg.shrink_budget;
    let still_fails = |cand: &Vec<u32>, budget: &mut u32| -> bool {
        *budget -= 1;
        run_one(cfg, schedule, Some(cand.clone()), body)
            .failure
            .is_some()
    };
    let mut size = (cur.len() / 2).max(1);
    loop {
        let mut progress = false;
        // Deletion pass at this granularity.
        let mut i = 0;
        while i < cur.len() && budget > 0 {
            let mut cand = cur.clone();
            cand.drain(i..(i + size).min(cand.len()));
            if still_fails(&cand, &mut budget) {
                cur = cand;
                progress = true;
            } else {
                i += size;
            }
        }
        // Zeroing pass: choice 0 = lowest-id runnable (fewest switches).
        let mut i = 0;
        while i < cur.len() && budget > 0 {
            let end = (i + size).min(cur.len());
            if cur[i..end].iter().any(|&c| c != 0) {
                let mut cand = cur.clone();
                for c in &mut cand[i..end] {
                    *c = 0;
                }
                if still_fails(&cand, &mut budget) {
                    cur = cand;
                    progress = true;
                }
            }
            i += size;
        }
        if budget == 0 || cur.is_empty() || (size == 1 && !progress) {
            break;
        }
        size = (size / 2).max(1);
    }
    cur
}

/// Explore schedules of `body`; return statistics, or the first failure
/// (with a shrunk trace) as an `Err`.
pub fn explore_result<F>(cfg: &Config, body: F) -> Result<ExploreStats, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut stats = ExploreStats::default();
    let schedules: Vec<u32> = match cfg.only {
        Some(k) => vec![k],
        None => (0..cfg.schedules).collect(),
    };
    for k in schedules {
        let out = run_one(cfg, k, None, &body);
        stats.schedules += 1;
        stats.steps += out.steps;
        if let Some(kind) = out.failure {
            // Wall-clock failures are not deterministic; replaying them
            // (and thus shrinking) is meaningless.
            let shrunk = if matches!(kind, FailureKind::WallClock(_)) || cfg.shrink_budget == 0 {
                out.trace.clone()
            } else {
                shrink(cfg, k, &out.trace, &body)
            };
            return Err(Failure {
                seed: cfg.seed,
                schedule: k,
                kind,
                strategy: cfg.strategy,
                vthreads: out.vthreads,
                steps: out.steps,
                trace: out.trace,
                shrunk,
            });
        }
    }
    Ok(stats)
}

/// Explore schedules of `body`; on failure, write the report artifact
/// and panic with the full replay banner.
pub fn explore<F>(cfg: &Config, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(f) = explore_result(cfg, body) {
        f.write_artifact();
        panic!("{f}");
    }
}
