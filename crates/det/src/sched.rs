//! The serialized virtual-thread scheduler.
//!
//! A *schedule* runs the test body on a fresh set of OS threads
//! ("vthreads"), but a token-passing gate guarantees that exactly one
//! vthread executes at any instant — the execution is logically
//! multiplexed onto a single stream, which is what makes every run a
//! deterministic function of the scheduler's choice sequence. All
//! cross-thread interaction funnels through *decision points*: explicit
//! yield points, futex park/wake interposition, spawn and join. At each
//! decision point the scheduler picks the next vthread to run with a
//! seeded strategy (or from a recorded trace when replaying).
//!
//! Blocking is virtual: a vthread parked on a futex word is woken by a
//! matching wake, by a strategy-chosen spurious wakeup, or — for timed
//! waits — by the virtual clock, which advances only when no vthread is
//! runnable. If nothing is runnable and no deadline is pending, the
//! schedule has deadlocked and the run fails with a report.
//!
//! Failure teardown is deliberately sloppy: the first failure poisons
//! the run, the failure is signalled to the explorer, and every other
//! vthread is simply never scheduled again (small-stack OS threads
//! parked forever). Failing schedules are rare and finite — exploration
//! stops at the first one — so leaking a handful of 512 KiB stacks per
//! failing replay is a far better trade than trying to unwind threads
//! parked deep inside queue internals.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use fault::DetRng;

use crate::strategy::StrategyState;

/// How many recent decision-point names to keep for failure reports.
const RECENT: usize = 16;
/// Consecutive re-schedules of the same vthread before PCT demotes it —
/// the standard escape hatch that stops a high-priority spin loop
/// (e.g. a trylock retry) from starving the lock holder forever.
const SPIN_DEMOTE: u32 = 192;

/// Why a schedule failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A vthread panicked (assertion failure, oracle violation, …).
    Panic(String),
    /// Every live vthread was blocked with no pending virtual deadline.
    Deadlock(String),
    /// The per-schedule decision budget was exhausted (livelock suspect).
    StepLimit(String),
    /// Real time ran out — the scheduler itself wedged (a det bug) or a
    /// vthread blocked outside det's control. Not replayable.
    WallClock(u64),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic(m) => write!(f, "panic: {m}"),
            FailureKind::Deadlock(m) => write!(f, "deadlock: {m}"),
            FailureKind::StepLimit(m) => write!(f, "step limit: {m}"),
            FailureKind::WallClock(s) => {
                write!(f, "wall-clock limit ({s}s) exceeded — not replayable")
            }
        }
    }
}

/// What a vthread is blocked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Parked on a futex word (keyed by address) with an optional
    /// virtual-clock deadline.
    Futex { key: usize, deadline: Option<u64> },
    /// Waiting for another vthread to finish.
    Join(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RunState {
    Runnable,
    Blocked(BlockKind),
    Finished,
}

struct Vt {
    run: RunState,
    /// Result flag for the last futex park: `true` = woken (or spurious),
    /// `false` = virtual timeout.
    woken: bool,
    /// Consecutive times this vthread was re-chosen while already active.
    consec: u32,
}

impl Vt {
    fn new() -> Self {
        Vt {
            run: RunState::Runnable,
            woken: false,
            consec: 0,
        }
    }
}

pub(crate) struct State {
    threads: Vec<Vt>,
    /// The vthread currently holding the execution token.
    active: usize,
    /// Unfinished vthreads.
    live: usize,
    rng: DetRng,
    strategy: StrategyState,
    /// When replaying/shrinking: the choice sequence to follow.
    replay: Option<Vec<u32>>,
    replay_pos: usize,
    /// Recorded choices (indices into the per-decision option list, only
    /// for decisions with more than one option).
    trace: Vec<u32>,
    steps: u64,
    max_steps: u64,
    /// Virtual clock, nanoseconds. Advances only when nothing is runnable.
    vclock_ns: u64,
    /// Futex keys in first-park order, for stable labels in reports.
    futex_keys: Vec<usize>,
    recent: VecDeque<&'static str>,
    poisoned: bool,
    failure: Option<FailureKind>,
    /// Seed all per-vthread derived randomness (e.g. zmsq's leaf-pick
    /// RNG) descends from, so replays are byte-identical.
    schedule_seed: u64,
    spurious_wakes: bool,
}

impl State {
    fn futex_label(&mut self, key: usize) -> usize {
        match self.futex_keys.iter().position(|&k| k == key) {
            Some(i) => i,
            None => {
                self.futex_keys.push(key);
                self.futex_keys.len() - 1
            }
        }
    }

    /// Advance the virtual clock to the earliest pending deadline and
    /// wake every timed waiter it expires. Returns `false` when no
    /// deadline is pending (a true deadlock).
    fn advance_virtual_time(&mut self) -> bool {
        let mut earliest: Option<u64> = None;
        for t in &self.threads {
            if let RunState::Blocked(BlockKind::Futex {
                deadline: Some(d), ..
            }) = t.run
            {
                earliest = Some(earliest.map_or(d, |e| e.min(d)));
            }
        }
        let Some(d) = earliest else { return false };
        if d > self.vclock_ns {
            self.vclock_ns = d;
        }
        for t in &mut self.threads {
            if let RunState::Blocked(BlockKind::Futex {
                deadline: Some(dl), ..
            }) = t.run
            {
                if dl <= self.vclock_ns {
                    t.run = RunState::Runnable;
                    t.woken = false; // timed out, not woken
                }
            }
        }
        true
    }

    /// Pick the next vthread to run; `None` when nothing is runnable.
    /// Records the decision into the trace and applies side effects
    /// (spurious wakeups, PCT change points and spin demotion).
    fn choose(&mut self) -> Option<usize> {
        let mut opts: Vec<usize> = Vec::with_capacity(self.threads.len());
        for (i, t) in self.threads.iter().enumerate() {
            if t.run == RunState::Runnable {
                opts.push(i);
            }
        }
        if opts.is_empty() {
            return None;
        }
        let nrun = opts.len();
        if self.spurious_wakes {
            // Spurious-wake candidates: futex-parked vthreads. Only
            // offered while something is genuinely runnable, so a lost
            // wakeup still deadlocks instead of being papered over by
            // an endless spurious-wake loop.
            for (i, t) in self.threads.iter().enumerate() {
                if matches!(t.run, RunState::Blocked(BlockKind::Futex { .. })) {
                    opts.push(i);
                }
            }
        }
        self.strategy.at_change_point(self.steps, self.active);
        let idx = if opts.len() == 1 {
            0
        } else {
            let replayed = match &self.replay {
                Some(rp) if self.replay_pos < rp.len() => {
                    let v = rp[self.replay_pos] as usize % opts.len();
                    self.replay_pos += 1;
                    Some(v)
                }
                _ => None,
            };
            match replayed {
                Some(v) => v,
                None => self.strategy.pick(&mut self.rng, &opts, nrun),
            }
        };
        if opts.len() > 1 {
            self.trace.push(idx as u32);
        }
        let chosen = opts[idx];
        if idx >= nrun {
            // Spurious wakeup of a parked vthread: it becomes runnable
            // and its wait reports "woken" (the caller's predicate loop
            // must re-check — exactly the path we want to explore).
            let t = &mut self.threads[chosen];
            t.run = RunState::Runnable;
            t.woken = true;
        }
        if chosen == self.active {
            self.threads[chosen].consec += 1;
            if self.threads[chosen].consec >= SPIN_DEMOTE {
                self.threads[chosen].consec = 0;
                self.strategy.demote(chosen);
            }
        } else {
            self.threads[chosen].consec = 0;
        }
        Some(chosen)
    }

    fn blocked_report(&self) -> String {
        let mut parts = Vec::with_capacity(self.threads.len());
        for (i, t) in self.threads.iter().enumerate() {
            let s = match t.run {
                RunState::Runnable => format!("vt{i}=runnable"),
                RunState::Finished => format!("vt{i}=done"),
                RunState::Blocked(BlockKind::Join(j)) => format!("vt{i}=join(vt{j})"),
                RunState::Blocked(BlockKind::Futex { key, deadline }) => {
                    let lbl = self
                        .futex_keys
                        .iter()
                        .position(|&k| k == key)
                        .unwrap_or(usize::MAX);
                    match deadline {
                        Some(d) => format!("vt{i}=futex#{lbl}@{d}ns"),
                        None => format!("vt{i}=futex#{lbl}"),
                    }
                }
            };
            parts.push(s);
        }
        let recent: Vec<&str> = self.recent.iter().copied().collect();
        format!(
            "vclock={}ns [{}] recent=[{}]",
            self.vclock_ns,
            parts.join(" "),
            recent.join(" ")
        )
    }
}

pub(crate) struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    /// Signals the explorer exactly once per run: either all vthreads
    /// finished cleanly or the run failed (inspect `state.failure`).
    done: Sender<()>,
}

impl Inner {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        seed_rng: DetRng,
        strategy: StrategyState,
        replay: Option<Vec<u32>>,
        max_steps: u64,
        schedule_seed: u64,
        spurious_wakes: bool,
        done: Sender<()>,
    ) -> Self {
        Inner {
            state: Mutex::new(State {
                threads: vec![Vt::new()],
                active: 0,
                live: 1,
                rng: seed_rng,
                strategy,
                replay,
                replay_pos: 0,
                trace: Vec::new(),
                steps: 0,
                max_steps,
                vclock_ns: 0,
                futex_keys: Vec::new(),
                recent: VecDeque::with_capacity(RECENT),
                poisoned: false,
                failure: None,
                schedule_seed,
                spurious_wakes,
            }),
            cv: Condvar::new(),
            done,
        }
    }

    pub(crate) fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn snapshot(&self) -> (Option<FailureKind>, Vec<u32>, u64, usize) {
        let st = self.lock_state();
        (
            st.failure.clone(),
            st.trace.clone(),
            st.steps,
            st.threads.len(),
        )
    }

    fn fail(&self, st: &mut State, kind: FailureKind) {
        if st.failure.is_none() {
            st.failure = Some(kind);
            st.poisoned = true;
            let _ = self.done.send(());
            self.cv.notify_all();
        }
    }

    /// Poison the run from outside a vthread (wall-clock watchdog).
    pub(crate) fn fail_external(&self, kind: FailureKind) {
        let mut st = self.lock_state();
        self.fail(&mut st, kind);
    }

    /// Never returns: the calling OS thread is abandoned. Used after the
    /// run is poisoned — see the module docs for why leaking beats
    /// unwinding threads parked inside queue internals.
    fn park_forever(&self, mut st: MutexGuard<'_, State>) -> ! {
        loop {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn gate_wait(&self, mut st: MutexGuard<'_, State>, me: usize) {
        loop {
            if st.poisoned {
                self.park_forever(st);
            }
            if st.active == me && st.threads[me].run == RunState::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The heart of the scheduler: record a decision point, optionally
    /// park the caller, pick a successor, hand over the token, and
    /// return once the caller is scheduled again.
    pub(crate) fn decision(&self, me: usize, block: Option<BlockKind>, name: &'static str) {
        let mut st = self.lock_state();
        if st.poisoned {
            self.park_forever(st);
        }
        debug_assert_eq!(st.active, me, "decision from a non-active vthread");
        if st.recent.len() == RECENT {
            st.recent.pop_front();
        }
        st.recent.push_back(name);
        if let Some(b) = block {
            if let BlockKind::Futex { key, .. } = b {
                st.futex_label(key);
            }
            st.threads[me].run = RunState::Blocked(b);
            st.threads[me].woken = false;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let report = st.blocked_report();
            self.fail(&mut st, FailureKind::StepLimit(report));
            self.park_forever(st);
        }
        let chosen = loop {
            if let Some(c) = st.choose() {
                break c;
            }
            if !st.advance_virtual_time() {
                let report = st.blocked_report();
                self.fail(&mut st, FailureKind::Deadlock(report));
                self.park_forever(st);
            }
        };
        st.active = chosen;
        if chosen == me && st.threads[me].run == RunState::Runnable {
            return;
        }
        self.cv.notify_all();
        self.gate_wait(st, me);
    }

    /// Mark `me` finished, wake its joiners, and hand the token onward.
    /// Called as the last scheduler interaction of every vthread.
    fn retire(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].run = RunState::Finished;
        st.live -= 1;
        for t in st.threads.iter_mut() {
            if let RunState::Blocked(BlockKind::Join(j)) = t.run {
                if j == me {
                    t.run = RunState::Runnable;
                    t.woken = true;
                }
            }
        }
        if st.poisoned {
            return;
        }
        if st.live == 0 {
            let _ = self.done.send(());
            return;
        }
        let chosen = loop {
            if let Some(c) = st.choose() {
                break c;
            }
            if !st.advance_virtual_time() {
                let report = st.blocked_report();
                self.fail(&mut st, FailureKind::Deadlock(report));
                return; // this OS thread exits; the rest stay parked
            }
        };
        st.active = chosen;
        self.cv.notify_all();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
}

fn current() -> Option<(Arc<Inner>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// `true` while the calling thread is a vthread inside a det schedule.
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Record a named decision point and let the scheduler preempt here.
/// No-op (one TLS read) outside a det schedule.
pub fn yield_point(name: &'static str) {
    if let Some((inner, me)) = current() {
        inner.decision(me, None, name);
    }
}

/// Interpose a futex wait. Returns `None` outside a det schedule (the
/// caller must fall through to the real futex); `Some(woken)` when the
/// wait was handled virtually — `woken == false` means the (virtual)
/// timeout expired. `expected` is evaluated under the schedule's
/// serialization, so there is no lost-wakeup window between the check
/// and the park.
pub fn futex_wait_intercept(
    key: usize,
    expected: impl FnOnce() -> bool,
    timeout: Option<Duration>,
) -> Option<bool> {
    let (inner, me) = current()?;
    if !expected() {
        inner.decision(me, None, "futex.nowait");
        return Some(true);
    }
    let deadline = timeout.map(|t| {
        let st = inner.lock_state();
        st.vclock_ns
            .saturating_add(t.as_nanos().min(u128::from(u64::MAX)) as u64)
    });
    inner.decision(me, Some(BlockKind::Futex { key, deadline }), "futex.wait");
    let st = inner.lock_state();
    Some(st.threads[me].woken)
}

/// Interpose a futex wake: wake up to `count` vthreads parked on `key`.
/// Returns `None` outside a det schedule.
pub fn futex_wake_intercept(key: usize, count: u32) -> Option<usize> {
    let (inner, me) = current()?;
    let woken = {
        let mut st = inner.lock_state();
        if st.poisoned {
            inner.park_forever(st);
        }
        let mut woken = 0usize;
        for t in st.threads.iter_mut() {
            if woken as u32 >= count {
                break;
            }
            if let RunState::Blocked(BlockKind::Futex { key: k, .. }) = t.run {
                if k == key {
                    t.run = RunState::Runnable;
                    t.woken = true;
                    woken += 1;
                }
            }
        }
        woken
    };
    inner.decision(me, None, "futex.wake");
    Some(woken)
}

/// Deterministic per-vthread RNG seed, derived from the schedule seed
/// and the vthread id. `None` outside a det schedule. Thread-local RNGs
/// (zmsq's leaf picker) reseed from this so replays are byte-identical.
pub fn vthread_rng_seed() -> Option<u64> {
    let (inner, me) = current()?;
    let st = inner.lock_state();
    let mut s = st.schedule_seed ^ ((me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    Some(fault::rng::splitmix64(&mut s))
}

/// Current virtual time in nanoseconds (0 outside a det schedule).
pub fn vclock_ns() -> u64 {
    current().map_or(0, |(inner, _)| inner.lock_state().vclock_ns)
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic-hook entry point (see `install_panic_silencer`): if the calling
/// thread is a vthread inside a det schedule, record the panic as the
/// run's failure *before unwinding starts*, then return so the unwind
/// proceeds normally. Recording here (rather than in `vthread_main`'s
/// `catch_unwind`) matters because the unwind may never get that far: a
/// panic inside one of the queue's abort-on-unwind critical sections is
/// diverted to [`park_failed_vthread`] mid-unwind, and by then the hook
/// has already filed the report. Must NOT block: the hook runs while
/// std's panic-hook lock is held, so parking here would deadlock the
/// harness's hook restore at process exit.
pub(crate) fn fail_current(msg: String) {
    if let Some((inner, _me)) = current() {
        let mut st = inner.lock_state();
        inner.fail(&mut st, FailureKind::Panic(msg));
    }
}

/// Escape hatch for abort-on-unwind guards: park the calling vthread
/// forever if it is inside a det schedule (recording a failure first in
/// the unlikely case none is filed yet), never returning. Returns
/// `false` outside a det schedule so the caller can fall through to the
/// real `abort`.
///
/// Under the harness, a panic unwinding into a multi-node critical
/// section must not take down the whole exploration process. Parking
/// upholds the guard's actual contract — the mid-window queue state is
/// never observed again — through the leak policy instead of an abort;
/// the panic hook filed the failure before unwinding began.
pub fn park_failed_vthread() -> bool {
    let Some((inner, _me)) = current() else {
        return false;
    };
    let mut st = inner.lock_state();
    inner.fail(
        &mut st,
        FailureKind::Panic("unwound into an abort-on-unwind critical section".into()),
    );
    inner.park_forever(st)
}

pub(crate) fn vthread_main<T>(
    inner: Arc<Inner>,
    id: usize,
    result: Arc<Mutex<Option<T>>>,
    f: impl FnOnce() -> T,
) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), id)));
    {
        let st = inner.lock_state();
        inner.gate_wait(st, id);
    }
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match out {
        Ok(v) => {
            *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            inner.retire(id);
        }
        Err(payload) => {
            // The hook already filed the failure; `fail` is
            // first-failure-wins, so this re-file is a no-op and only
            // matters if a caller replaced the hook mid-run.
            let msg = panic_message(payload);
            let mut st = inner.lock_state();
            st.threads[id].run = RunState::Finished;
            inner.fail(&mut st, FailureKind::Panic(msg));
            // This OS thread exits; the rest of the schedule stays parked.
        }
    }
}

/// Handle to a spawned vthread. Dropping it detaches the vthread (it
/// keeps being scheduled until it finishes).
pub struct JoinHandle<T> {
    id: usize,
    inner: Arc<Inner>,
    result: Arc<Mutex<Option<T>>>,
    os: Option<std::thread::JoinHandle<()>>,
}

impl<T> JoinHandle<T> {
    /// The vthread's id (root is 0, spawned vthreads count up from 1).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Wait (virtually) for the vthread to finish and return its result.
    ///
    /// If the target panicked the whole schedule has already failed and
    /// this never returns (the caller is parked with the rest of the
    /// poisoned schedule).
    pub fn join(mut self) -> T {
        let (inner, me) = current().expect("det::JoinHandle::join outside a det schedule");
        debug_assert!(Arc::ptr_eq(&inner, &self.inner), "join across schedules");
        let finished = {
            let st = inner.lock_state();
            st.threads[self.id].run == RunState::Finished
        };
        let block = if finished {
            None
        } else {
            Some(BlockKind::Join(self.id))
        };
        inner.decision(me, block, "det.join");
        let v = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("det vthread finished without storing a result");
        if let Some(os) = self.os.take() {
            let _ = os.join();
        }
        v
    }
}

/// Stack size for vthreads: small, because failing schedules leak their
/// parked threads by design. Queue operations are shallow.
const VT_STACK: usize = 512 * 1024;

/// Spawn a new vthread inside the current det schedule.
///
/// Panics when called outside a schedule — det test bodies must create
/// all their concurrency through `det::spawn` so the scheduler sees it.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (inner, me) = current().expect("det::spawn called outside a det schedule");
    let result = Arc::new(Mutex::new(None));
    let id = {
        let mut st = inner.lock_state();
        let id = st.threads.len();
        st.threads.push(Vt::new());
        st.live += 1;
        let draw = st.rng.next_u64();
        st.strategy.on_spawn(draw);
        id
    };
    let os = {
        let inner = Arc::clone(&inner);
        let result = Arc::clone(&result);
        std::thread::Builder::new()
            .name(format!("det-vt{id}"))
            .stack_size(VT_STACK)
            .spawn(move || vthread_main(inner, id, result, f))
            .expect("failed to spawn det vthread")
    };
    // The child is registered runnable, so this decision point may
    // schedule it before spawn() returns — child-runs-first orders are
    // part of the explored space.
    inner.decision(me, None, "det.spawn");
    JoinHandle {
        id,
        inner,
        result,
        os: Some(os),
    }
}
