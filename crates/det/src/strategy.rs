//! Scheduling strategies.
//!
//! * [`Strategy::RandomWalk`] — at every decision point, pick uniformly
//!   (weighted 4:1 against spurious-wake candidates) among the options.
//!   Simple, surprisingly effective, and the default.
//! * [`Strategy::Pct`] — Probabilistic Concurrency Testing (Burckhardt
//!   et al., ASPLOS 2010): every vthread gets a random priority, the
//!   highest-priority runnable vthread always runs, and `depth − 1`
//!   priority *change points* are planted at random decision indices.
//!   For a bug of depth `d` (one that needs `d` ordering constraints),
//!   PCT finds it with probability ≥ 1/(n·k^(d−1)) per schedule — far
//!   better than random walk for rare multi-step races.
//!
//! Both strategies record the chosen option index at every decision
//! with more than one option; replay follows that trace and ignores the
//! strategy entirely, which is what makes shrinking sound.

use fault::DetRng;

/// Exploration strategy for one [`crate::Config`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Seeded uniform random walk over runnable vthreads.
    RandomWalk,
    /// PCT with the given depth (number of ordering constraints the
    /// target bug is assumed to need; `depth = 3` is a good default).
    Pct {
        /// Bug depth `d`: `d − 1` priority change points per schedule.
        depth: u32,
    },
}

impl Strategy {
    /// Stable name used in failure reports.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::RandomWalk => "random-walk",
            Strategy::Pct { .. } => "pct",
        }
    }
}

/// Per-schedule mutable strategy state.
pub(crate) enum StrategyState {
    Walk,
    Pct {
        /// Priority per vthread; higher runs first. Initial priorities
        /// are `(1 << 64) | random`, demotions take descending values
        /// below `1 << 64`, so every demotion lands under all initial
        /// priorities and under all earlier demotions.
        prios: Vec<u128>,
        /// Decision indices (sorted) at which the active vthread's
        /// priority drops.
        change_points: Vec<u64>,
        demote_mark: u64,
    },
}

impl StrategyState {
    /// Build the per-schedule state, drawing what it needs from the
    /// schedule RNG (root vthread priority, change-point positions).
    pub(crate) fn new(strategy: Strategy, rng: &mut DetRng, horizon: u64) -> Self {
        match strategy {
            Strategy::RandomWalk => StrategyState::Walk,
            Strategy::Pct { depth } => {
                let root_prio = (1u128 << 64) | u128::from(rng.next_u64());
                let mut change_points: Vec<u64> = (1..depth.max(1))
                    .map(|_| rng.random_range(1..=horizon.max(1)))
                    .collect();
                change_points.sort_unstable();
                StrategyState::Pct {
                    prios: vec![root_prio],
                    change_points,
                    demote_mark: u64::MAX,
                }
            }
        }
    }

    /// Register a newly spawned vthread (priority drawn by the caller
    /// from the schedule RNG so the draw order stays deterministic).
    pub(crate) fn on_spawn(&mut self, draw: u64) {
        if let StrategyState::Pct { prios, .. } = self {
            prios.push((1u128 << 64) | u128::from(draw));
        }
    }

    /// Apply a PCT priority change point if one lands on this step.
    pub(crate) fn at_change_point(&mut self, step: u64, active: usize) {
        if let StrategyState::Pct {
            prios,
            change_points,
            demote_mark,
        } = self
        {
            if change_points.binary_search(&step).is_ok() && active < prios.len() {
                prios[active] = u128::from(*demote_mark);
                *demote_mark = demote_mark.saturating_sub(1);
            }
        }
    }

    /// Demote a vthread that has been re-scheduled too many consecutive
    /// times (spin-loop escape hatch; no-op for random walk).
    pub(crate) fn demote(&mut self, id: usize) {
        if let StrategyState::Pct {
            prios, demote_mark, ..
        } = self
        {
            if id < prios.len() {
                prios[id] = u128::from(*demote_mark);
                *demote_mark = demote_mark.saturating_sub(1);
            }
        }
    }

    /// Pick an option index. `opts[..nrun]` are runnable vthreads,
    /// `opts[nrun..]` are spurious-wake candidates.
    pub(crate) fn pick(&mut self, rng: &mut DetRng, opts: &[usize], nrun: usize) -> usize {
        debug_assert!(opts.len() > 1);
        match self {
            StrategyState::Walk => {
                // Weight runnable options 4:1 over spurious wakeups so
                // forward progress dominates but spurious paths still
                // get explored.
                let total = 4 * nrun + (opts.len() - nrun);
                let draw = rng.random_range(0..total as u64) as usize;
                if draw < 4 * nrun {
                    draw / 4
                } else {
                    nrun + (draw - 4 * nrun)
                }
            }
            StrategyState::Pct { prios, .. } => {
                // Highest-priority runnable vthread; spurious candidates
                // are not taken by PCT (it models preemptions, not
                // kernel noise). Ties are impossible in practice (128-bit
                // priorities) but break toward the lowest id for
                // determinism.
                let mut best = 0usize;
                for (i, &id) in opts.iter().enumerate().take(nrun) {
                    if prios.get(id) > prios.get(opts[best]) {
                        best = i;
                    }
                }
                best
            }
        }
    }
}
