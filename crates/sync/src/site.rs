//! Per-site lock-wait attribution.
//!
//! The substrate's process-global trylock/futex counters say *how much*
//! contention there is, but not *where*: under load an operator needs to
//! know whether the root lock, the pool refill, or a shard's node locks
//! are burning the time. This module adds a small static table of
//! **sites** — named call-site categories (`zmsq.root`, `zmsq.node`,
//! …) — with, per site:
//!
//! * `sync.wait_ns{site=…}` — a histogram of nanoseconds spent in
//!   *contended blocking acquisition* (the slow paths of all three
//!   [`RawTryLock`](crate::RawTryLock) impls);
//! * `sync.futex_wait_ns{site=…}` — a histogram of time parked in
//!   [`crate::futex_wait`] / [`crate::futex_wait_timeout`] (kept as a
//!   separate family because an `OsLock` contended acquisition already
//!   covers its own futex parks — summing the two would double-count);
//! * `sync.trylock_fails{site=…}` — failed `try_lock` attempts, the
//!   restart-pressure signal for §4.1's trylock-and-restart paths
//!   (which never block, so fail counts are their contention metric).
//!
//! A thread declares its current site with an RAII [`enter`] scope;
//! recording reads a thread-local `u8` — no atomics, no allocation.
//! Code that never enters a scope records under the implicit site 0,
//! `other`. The table is fixed-size: registrations beyond
//! [`MAX_SITES`] fold into `other` rather than failing, so
//! instrumentation can never break the build of a caller that got too
//! enthusiastic.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

/// Maximum distinct sites (including the implicit `other` at index 0).
pub const MAX_SITES: usize = 16;

static WAIT_NS: [obs::Histogram; MAX_SITES] = [const { obs::Histogram::new() }; MAX_SITES];
static FUTEX_WAIT_NS: [obs::Histogram; MAX_SITES] = [const { obs::Histogram::new() }; MAX_SITES];
static TRYLOCK_FAILS: [obs::Counter; MAX_SITES] = [const { obs::Counter::new() }; MAX_SITES];

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(vec!["other"]))
}

thread_local! {
    static CURRENT: Cell<u8> = const { Cell::new(0) };
}

/// A registered wait-attribution site. Cheap to copy; obtain one with
/// [`register`] (idempotent by name) and store it in a `static`/field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteId(u8);

impl SiteId {
    /// The implicit catch-all site.
    pub const OTHER: SiteId = SiteId(0);

    /// The site's registered name.
    pub fn name(self) -> &'static str {
        names().lock().unwrap()[self.0 as usize]
    }
}

/// Register (or look up) a site by name. Idempotent: the same name
/// always maps to the same id. When the table is full the id of
/// [`SiteId::OTHER`] is returned — attribution degrades, nothing
/// breaks.
pub fn register(name: &'static str) -> SiteId {
    let mut list = names().lock().unwrap();
    if let Some(i) = list.iter().position(|n| *n == name) {
        return SiteId(i as u8);
    }
    if list.len() >= MAX_SITES {
        return SiteId::OTHER;
    }
    list.push(name);
    SiteId((list.len() - 1) as u8)
}

/// RAII scope marking the calling thread's current site; restores the
/// previous site on drop (scopes nest). `!Send` — the scope must drop
/// on the thread that entered it.
pub struct SiteScope {
    prev: u8,
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Enter `site` on this thread until the returned scope drops.
#[inline]
pub fn enter(site: SiteId) -> SiteScope {
    let prev = CURRENT.with(|c| c.replace(site.0));
    SiteScope {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SiteScope {
    #[inline]
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[inline]
fn current() -> usize {
    CURRENT.with(|c| c.get()) as usize
}

/// Record contended blocking-acquisition wait time for the current
/// site (called from the lock slow paths).
#[inline]
pub(crate) fn record_wait(ns: u64) {
    WAIT_NS[current()].record(ns);
}

/// Record futex park time for the current site.
#[inline]
pub(crate) fn record_futex_wait(ns: u64) {
    FUTEX_WAIT_NS[current()].record(ns);
}

/// Count a failed `try_lock` against the current site.
#[inline]
pub(crate) fn note_trylock_fail() {
    TRYLOCK_FAILS[current()].incr();
}

/// Export every registered site's histograms and fail counters into
/// `s`, using the renderer's inline-label convention
/// (`sync.wait_ns{site=NAME}`). Registered sites are always exported —
/// even with zero samples — so a scrape's metric families are stable
/// from the first request.
pub fn snapshot_into(s: &mut obs::Snapshot) {
    let list = names().lock().unwrap();
    for (i, name) in list.iter().enumerate() {
        s.push_hist(&format!("sync.wait_ns{{site={name}}}"), &WAIT_NS[i]);
        s.push_hist(
            &format!("sync.futex_wait_ns{{site={name}}}"),
            &FUTEX_WAIT_NS[i],
        );
        s.push_counter(
            &format!("sync.trylock_fails{{site={name}}}"),
            TRYLOCK_FAILS[i].get(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The site table is process-global and registrations are permanent,
    /// so everything that depends on free slots runs in one ordered test
    /// (filling the table last).
    #[test]
    fn site_table_behavior() {
        // Registration is idempotent.
        let a = register("test.site.a");
        let b = register("test.site.a");
        assert_eq!(a, b);
        assert_eq!(a.name(), "test.site.a");
        assert_ne!(a, SiteId::OTHER);

        // Scopes nest and restore.
        let n2 = register("test.site.nest2");
        assert_eq!(current(), 0);
        {
            let _s1 = enter(a);
            assert_eq!(current(), a.0 as usize);
            {
                let _s2 = enter(n2);
                assert_eq!(current(), n2.0 as usize);
            }
            assert_eq!(current(), a.0 as usize);
        }
        assert_eq!(current(), 0);

        // Records attribute to the scoped site.
        let site = register("test.site.record");
        let wait_before = WAIT_NS[site.0 as usize].count();
        let fails_before = TRYLOCK_FAILS[site.0 as usize].get();
        {
            let _s = enter(site);
            record_wait(1234);
            record_futex_wait(55);
            note_trylock_fail();
        }
        assert_eq!(WAIT_NS[site.0 as usize].count(), wait_before + 1);
        assert_eq!(TRYLOCK_FAILS[site.0 as usize].get(), fails_before + 1);

        // Snapshot exports the renderer's inline-label names, including
        // the always-present catch-all.
        let mut s = obs::Snapshot::new();
        snapshot_into(&mut s);
        assert!(s.hist("sync.wait_ns{site=test.site.record}").is_some());
        assert!(s
            .hist("sync.futex_wait_ns{site=test.site.record}")
            .is_some());
        assert!(s
            .counter("sync.trylock_fails{site=test.site.record}")
            .is_some());
        assert!(s.hist("sync.wait_ns{site=other}").is_some());

        // A full table degrades to `other` instead of failing.
        for i in 0..MAX_SITES {
            let _ = register(Box::leak(format!("test.site.fill{i}").into_boxed_str()));
        }
        let overflow = register("test.site.overflow");
        assert_eq!(overflow, SiteId::OTHER);
        assert_eq!(overflow.name(), "other");
    }
}
