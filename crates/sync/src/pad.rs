//! Cache-line padding, from scratch.
//!
//! Wraps a value so it occupies (at least) its own cache line, preventing
//! false sharing between adjacent hot atomics — the same job as
//! `crossbeam_utils::CachePadded`, kept in-tree so the concurrency
//! substrate has no external dependencies.
//!
//! 128-byte alignment covers both the common 64-byte line and the
//! 128-byte *spatial prefetcher* pairing on modern x86 (adjacent-line
//! prefetch makes two 64-byte lines behave as one for sharing purposes)
//! as well as Apple/ARM big cores with genuine 128-byte lines.

/// Pads and aligns `T` to 128 bytes.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn occupies_a_full_line_pair() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU32>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU32>>(), 128);
        // Array elements land on distinct line pairs.
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert_eq!(b - a, 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(41);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
