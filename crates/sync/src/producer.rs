//! Producer-side backpressure: blocking producers of a *bounded* queue.
//!
//! The paper's blocking layer (§3.6, Listing 3) only protects the
//! consumer side — producers can always insert, so under open-loop
//! overload the queue grows without bound. [`ProducerWait`] is the
//! mirror image for a capacity-bounded queue: producers that find the
//! queue full park here; every extraction that frees a slot (and every
//! [`ProducerWait::close`]) signals it.
//!
//! The machinery is the same circular buffer of cache-padded futex
//! words as [`EventBuffer`] — ticket dispersal, sleeper-count Dekker
//! handshake, epoch-encoded futex words — reused wholesale rather than
//! re-proved. Only the *counters* differ: producer-side waits report
//! under `producer.*` (see [`crate::obs::snapshot`]) so a saturated
//! queue's producer pressure is never mistaken for consumer idleness.
//!
//! # Protocol
//!
//! The caller (the queue's admission path) runs:
//!
//! 1. try to reserve capacity; on success, insert;
//! 2. on failure, `wait_for_room(|| occupancy < capacity)`;
//! 3. on any wake, go to 1.
//!
//! Symmetrically, the extraction path *first* releases its capacity
//! reservation, *then* calls [`ProducerWait::signal`] — the same
//! publish-then-signal order `EventBuffer` demands of element inserts.
//!
//! # Fault injection
//!
//! `producer.wake-lost` — fires at the top of
//! [`ProducerWait::wait_for_room`], between the caller's failed
//! admission attempt and sleeper registration. With `Action::SleepMs`
//! it stretches the classic producer lost-wake window: a concurrent
//! extract can release capacity *and* signal entirely inside the gap,
//! and only the registration/re-check handshake keeps the delayed
//! producer from parking forever on a queue with room.

use crate::event::{EventBuffer, WaitOutcome, PRODUCER_COUNTERS};

/// A futex-based waiting area for producers blocked on a full bounded
/// queue. Mirrors the consumer-side [`EventBuffer`]; see the module
/// docs for the protocol.
///
/// ```
/// use zmsq_sync::{ProducerWait, WaitOutcome};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pw = ProducerWait::new();
/// let occupancy = AtomicUsize::new(1); // capacity 1, full
///
/// std::thread::scope(|s| {
///     let (pw, occupancy) = (&pw, &occupancy);
///     let producer = s.spawn(move || {
///         loop {
///             // Try to reserve a slot...
///             if occupancy.fetch_update(Ordering::SeqCst, Ordering::SeqCst,
///                                       |o| (o < 1).then_some(o + 1)).is_ok() {
///                 return "admitted";
///             }
///             // ...and park until an extraction frees one.
///             pw.wait_for_room(|| occupancy.load(Ordering::SeqCst) < 1);
///         }
///     });
///     occupancy.fetch_sub(1, Ordering::SeqCst); // extraction frees a slot...
///     pw.signal();                              // ...then signals (always this order)
///     assert_eq!(producer.join().unwrap(), "admitted");
/// });
/// ```
pub struct ProducerWait {
    ev: EventBuffer,
}

impl ProducerWait {
    /// Create a waiting area with the default slot count
    /// ([`EventBuffer::DEFAULT_SLOTS`]).
    pub fn new() -> Self {
        Self::with_slots(EventBuffer::DEFAULT_SLOTS)
    }

    /// Create a waiting area with `slots` futexes (rounded up to a power
    /// of two).
    pub fn with_slots(slots: usize) -> Self {
        Self {
            ev: EventBuffer::with_slots_and_counters(slots, &PRODUCER_COUNTERS),
        }
    }

    /// Number of futex slots (always a power of two).
    pub fn slot_count(&self) -> usize {
        self.ev.slot_count()
    }

    /// Best-effort count of producers currently parked (or registering).
    pub fn sleeper_count(&self) -> u64 {
        self.ev.sleeper_count()
    }

    /// Park until `has_room()` is (probably) true, a signal arrives, or
    /// the queue is closed. The caller re-attempts admission on *any*
    /// outcome except [`WaitOutcome::Closed`] — a wake is a hint, not a
    /// reservation.
    pub fn wait_for_room<F: FnMut() -> bool>(&self, has_room: F) -> WaitOutcome {
        // Chaos: stall between the caller's failed admission attempt and
        // sleeper registration, so a concurrent release+signal completes
        // entirely inside the gap (the producer lost-wake window).
        fault::fail_point!("producer.wake-lost");
        det::det_point!("producer.wait");
        self.ev.wait_until(has_room)
    }

    /// [`ProducerWait::wait_for_room`] with a bound on the park time.
    /// Returns [`WaitOutcome::TimedOut`] if the timeout elapsed with no
    /// signal.
    pub fn wait_for_room_timeout<F: FnMut() -> bool>(
        &self,
        has_room: F,
        timeout: std::time::Duration,
    ) -> WaitOutcome {
        fault::fail_point!("producer.wake-lost");
        det::det_point!("producer.wait");
        self.ev.wait_until_timeout(has_room, timeout)
    }

    /// Signal after an extraction released capacity. Call *after* the
    /// occupancy decrement is visible.
    #[inline]
    pub fn signal(&self) {
        self.ev.signal();
    }

    /// Close the waiting area: wake every parked producer, now and
    /// forever. Part of queue shutdown — parked producers observe
    /// [`WaitOutcome::Closed`] and surface `InsertError::Closed` instead
    /// of hanging.
    pub fn close(&self) {
        self.ev.close();
    }

    /// Whether [`ProducerWait::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.ev.is_closed()
    }

    /// Re-open after a close. Only sound when no producer can be inside
    /// `wait_for_room` (e.g. between benchmark phases).
    pub fn reopen(&self) {
        self.ev.reopen();
    }
}

impl Default for ProducerWait {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ProducerWait {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProducerWait")
            .field("slots", &self.slot_count())
            .field("sleepers", &self.sleeper_count())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// A minimal bounded cell: capacity `cap`, admission via CAS.
    struct Bounded {
        occupancy: AtomicUsize,
        cap: usize,
    }

    impl Bounded {
        fn new(cap: usize) -> Self {
            Self {
                occupancy: AtomicUsize::new(0),
                cap,
            }
        }
        fn try_admit(&self) -> bool {
            self.occupancy
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |o| {
                    (o < self.cap).then_some(o + 1)
                })
                .is_ok()
        }
        fn release(&self, pw: &ProducerWait) {
            self.occupancy.fetch_sub(1, Ordering::SeqCst);
            pw.signal();
        }
        fn has_room(&self) -> bool {
            self.occupancy.load(Ordering::SeqCst) < self.cap
        }
    }

    #[test]
    fn ready_when_room_exists() {
        let pw = ProducerWait::new();
        assert_eq!(pw.wait_for_room(|| true), WaitOutcome::Ready);
        assert_eq!(pw.sleeper_count(), 0);
    }

    #[test]
    fn closed_returns_closed() {
        let pw = ProducerWait::with_slots(3);
        assert_eq!(pw.slot_count(), 4, "rounded to power of two");
        pw.close();
        assert!(pw.is_closed());
        assert_eq!(pw.wait_for_room(|| false), WaitOutcome::Closed);
        pw.reopen();
        assert!(!pw.is_closed());
        assert_eq!(pw.wait_for_room(|| true), WaitOutcome::Ready);
    }

    #[test]
    fn timed_wait_reports_timeout() {
        let pw = ProducerWait::new();
        let t0 = std::time::Instant::now();
        let out = pw.wait_for_room_timeout(|| false, Duration::from_millis(30));
        assert_eq!(out, WaitOutcome::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(pw.sleeper_count(), 0, "deregistered after timeout");
    }

    /// The fundamental producer handoff: a producer blocked on a full
    /// cell is admitted after an extraction releases capacity.
    #[test]
    fn blocked_producer_admitted_after_release() {
        let pw = Arc::new(ProducerWait::with_slots(2));
        let cell = Arc::new(Bounded::new(1));
        assert!(cell.try_admit(), "first admission fills the cell");
        let (pw2, cell2) = (Arc::clone(&pw), Arc::clone(&cell));
        let producer = std::thread::spawn(move || loop {
            if cell2.try_admit() {
                return;
            }
            pw2.wait_for_room(|| cell2.has_room());
        });
        std::thread::sleep(Duration::from_millis(10));
        cell.release(&pw);
        producer.join().unwrap();
        assert_eq!(cell.occupancy.load(Ordering::SeqCst), 1);
    }

    /// Many producers contending for few slots: every producer finishes
    /// its quota, no wake is lost, nothing deadlocks.
    #[test]
    fn many_producers_drain_through_small_capacity() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let pw = Arc::new(ProducerWait::with_slots(2));
        let cell = Arc::new(Bounded::new(3));
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let (pw, cell) = (Arc::clone(&pw), Arc::clone(&cell));
            handles.push(std::thread::spawn(move || {
                for _ in 0..PER_PRODUCER {
                    loop {
                        if cell.try_admit() {
                            break;
                        }
                        pw.wait_for_room(|| cell.has_room());
                    }
                }
            }));
        }
        // The consumer: keep releasing until every admission happened.
        let total = PRODUCERS * PER_PRODUCER;
        let mut released = 0;
        while released < total {
            if cell.occupancy.load(Ordering::SeqCst) > 0 {
                cell.release(&pw);
                released += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.occupancy.load(Ordering::SeqCst), 0);
        assert_eq!(pw.sleeper_count(), 0);
    }

    /// close() must wake producers parked on a full cell — the shutdown
    /// half of the satellite regression (the queue-level test asserts
    /// the `InsertError::Closed` surface).
    #[test]
    fn close_wakes_parked_producers() {
        let pw = Arc::new(ProducerWait::with_slots(1));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let pw = Arc::clone(&pw);
            handles.push(std::thread::spawn(move || {
                loop {
                    match pw.wait_for_room(|| false) {
                        WaitOutcome::Closed => return true,
                        // Spurious wakes loop back to parking.
                        _ => continue,
                    }
                }
            }));
        }
        while pw.sleeper_count() < 3 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(5));
        pw.close();
        for h in handles {
            assert!(h.join().unwrap(), "producer saw Closed");
        }
        assert_eq!(pw.sleeper_count(), 0);
    }

    /// The producer lost-wake window: the release+signal lands entirely
    /// inside the injected delay between the failed admission and
    /// registration. The registration/re-check handshake must still
    /// admit the producer (never a permanent park on a queue with room).
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_wake_lost_window_cannot_strand_producer() {
        let _x = fault::exclusive();
        fault::set_seed(0x9A5C_0FFE);
        fault::configure(
            "producer.wake-lost",
            fault::Policy::new(fault::Trigger::Always).with_action(fault::Action::SleepMs(30)),
        );
        let pw = Arc::new(ProducerWait::with_slots(1));
        let cell = Arc::new(Bounded::new(1));
        assert!(cell.try_admit());
        let (pw2, cell2) = (Arc::clone(&pw), Arc::clone(&cell));
        let producer = std::thread::spawn(move || loop {
            if cell2.try_admit() {
                return;
            }
            pw2.wait_for_room(|| cell2.has_room());
        });
        // Land the release+signal inside the 30ms pre-registration delay.
        std::thread::sleep(Duration::from_millis(10));
        cell.release(&pw);
        producer.join().unwrap();
        assert!(fault::hit_count("producer.wake-lost") >= 1);
        fault::reset();
    }
}
