//! Observability exports for the sync substrate.
//!
//! The futex, event-buffer and trylock counters are process-global
//! `obs::Counter` statics (one set for the whole crate — recording must
//! stay a single relaxed `fetch_add`, so there is no per-instance
//! registry indirection on the hot path). This module snapshots them.

use crate::{event, futex, trylock};

/// Point-in-time copy of every sync-substrate counter, plus the derived
/// `trylock.contention_ratio` (failed / attempted `try_lock`s — the
/// restart pressure §4.1's trylock-and-restart policy responds to) and
/// the per-site wait attribution (`sync.wait_ns{site=…}`,
/// `sync.futex_wait_ns{site=…}`, `sync.trylock_fails{site=…}`).
pub fn snapshot() -> obs::Snapshot {
    let mut s = obs::Snapshot::new();
    crate::site::snapshot_into(&mut s);
    s.push_counter("futex.waits", futex::WAITS.get());
    s.push_counter("futex.wait_timeouts", futex::WAIT_TIMEOUTS.get());
    s.push_counter("futex.wakes", futex::WAKES.get());
    s.push_counter("futex.woken_threads", futex::WOKEN_THREADS.get());
    let ev = &event::CONSUMER_COUNTERS;
    s.push_counter("event.waits", ev.waits.get());
    s.push_counter("event.parks", ev.parks.get());
    s.push_counter("event.spurious_wakeups", ev.spurious_wakeups.get());
    s.push_counter("event.signals", ev.signals.get());
    s.push_counter("event.signals_no_sleeper", ev.signals_no_sleeper.get());
    let pr = &event::PRODUCER_COUNTERS;
    s.push_counter("producer.waits", pr.waits.get());
    s.push_counter("producer.parks", pr.parks.get());
    s.push_counter("producer.spurious_wakeups", pr.spurious_wakeups.get());
    s.push_counter("producer.signals", pr.signals.get());
    s.push_counter("producer.signals_no_sleeper", pr.signals_no_sleeper.get());
    let attempts = trylock::TRYLOCK_ATTEMPTS.get();
    let failures = trylock::TRYLOCK_FAILURES.get();
    s.push_counter("trylock.attempts", attempts);
    s.push_counter("trylock.failures", failures);
    s.push_ratio(
        "trylock.contention_ratio",
        if attempts == 0 {
            0.0
        } else {
            failures as f64 / attempts as f64
        },
    );
    s
}

#[cfg(test)]
mod tests {
    use crate::{futex_wake, EventBuffer, RawTryLock, TatasLock};
    use std::sync::atomic::AtomicU32;

    #[test]
    fn snapshot_reflects_substrate_activity() {
        // Counters are process-global and other tests run concurrently,
        // so assert deltas on a before/after pair of snapshots.
        let before = super::snapshot();
        let l = TatasLock::default();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        futex_wake(&AtomicU32::new(0), 1);
        let ev = EventBuffer::new();
        ev.signal();
        let after = super::snapshot();
        assert!(
            after.counter("trylock.attempts").unwrap()
                >= before.counter("trylock.attempts").unwrap() + 2
        );
        assert!(
            after.counter("trylock.failures").unwrap()
                > before.counter("trylock.failures").unwrap()
        );
        assert!(after.counter("futex.wakes").unwrap() > before.counter("futex.wakes").unwrap());
        assert!(after.counter("event.signals").unwrap() > before.counter("event.signals").unwrap());
        assert!(after.ratio("trylock.contention_ratio").unwrap() > 0.0);
    }

    #[test]
    fn producer_counters_separate_from_event_counters() {
        use crate::ProducerWait;
        let before = super::snapshot();
        let pw = ProducerWait::new();
        pw.signal(); // no sleeper: producer.signals_no_sleeper
        pw.wait_for_room(|| true); // registers: producer.waits
        let after = super::snapshot();
        assert!(
            after.counter("producer.signals").unwrap()
                > before.counter("producer.signals").unwrap()
        );
        assert!(
            after.counter("producer.waits").unwrap() > before.counter("producer.waits").unwrap()
        );
        // The consumer-side event.waits must NOT have moved from this
        // producer activity (other tests may move it concurrently, so
        // only assert the producer deltas are attributable).
        assert!(
            after.counter("producer.signals_no_sleeper").unwrap()
                > before.counter("producer.signals_no_sleeper").unwrap()
        );
    }
}
