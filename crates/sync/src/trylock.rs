//! The three lock implementations compared in Figure 2 of the paper.
//!
//! ZMSQ's `insert()` uses an optimistic read-before-lock pattern: a thread
//! reads `TNode.max` without the lock, locks the node, and re-validates.
//! §4.1 observes that when a target node is *already locked*, validation is
//! likely to fail anyway, so it pays to `try_lock` and restart immediately
//! (picking a different random path) rather than queue up on the lock.
//!
//! All three locks implement [`RawTryLock`]:
//!
//! * [`OsLock`] — an OS-parking mutex (the `std::mutex` arm of Fig. 2),
//!   a three-state futex mutex built on [`crate::futex`].
//! * [`TasLock`] — test-and-set: every acquisition attempt is an atomic
//!   `swap`, which invalidates the cache line even when the lock is held.
//! * [`TatasLock`] — test-and-test-and-set: spin on a plain load and only
//!   attempt the atomic `swap` when the lock is observed free. This is the
//!   winner in the paper's Figure 2b and ZMSQ's default.
//!
//! # Fault injection
//!
//! `trylock.spurious-fail` — fires inside `try_lock` of all three locks
//! and forces a `false` return even when the lock is free. Models losing
//! the acquisition race at the worst moment; ZMSQ's insert/extract paths
//! must treat it as ordinary contention (re-randomize and retry), never
//! as a correctness signal. Blocking `lock()` is deliberately exempt so
//! armed schedules cannot violate its acquisition guarantee.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::backoff::Backoff;
use crate::futex::{futex_wait, futex_wake};

/// `try_lock` attempts across all three lock types (always-on; the
/// contention ratio `failures / attempts` is exported through
/// [`crate::obs::snapshot`]).
pub(crate) static TRYLOCK_ATTEMPTS: obs::Counter = obs::Counter::new();
/// Failed `try_lock` attempts (contended or injected-spurious).
pub(crate) static TRYLOCK_FAILURES: obs::Counter = obs::Counter::new();

/// Count one attempt/outcome pair and emit the `lock_fail` trace event
/// on failure. Failures are also charged to the caller's current
/// [`crate::site`] so restart pressure is attributable.
#[inline]
fn note_try_lock(ok: bool) -> bool {
    TRYLOCK_ATTEMPTS.incr();
    if !ok {
        TRYLOCK_FAILURES.incr();
        crate::site::note_trylock_fail();
        obs::trace_event!(obs::EventKind::LockFail);
    }
    ok
}

/// A raw lock with both blocking and non-blocking acquisition.
///
/// `unlock` is safe to call only by the lock holder; the RAII
/// [`LockGuard`] enforces this in the common case, while the queue's
/// hand-over-hand paths (which must release locks out of scope order) call
/// `unlock` directly.
pub trait RawTryLock: Send + Sync + Default {
    /// Human-readable name used in benchmark rows (`mutex`, `tas`, `tatas`).
    const NAME: &'static str;

    /// Attempt to acquire without waiting. Returns `true` on success.
    fn try_lock(&self) -> bool;

    /// Acquire, waiting as long as necessary.
    fn lock(&self);

    /// Release.
    ///
    /// Must only be called by the thread that currently holds the lock;
    /// every internal call site in this workspace is matched 1:1 with an
    /// acquisition on the same thread.
    fn unlock(&self);

    /// Whether the lock is currently held (advisory; racy by nature).
    fn is_locked(&self) -> bool;

    /// Acquire and return an RAII guard.
    #[inline]
    fn guard(&self) -> LockGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock();
        LockGuard { lock: self }
    }

    /// Try to acquire and return an RAII guard.
    #[inline]
    fn try_guard(&self) -> Option<LockGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_lock() {
            Some(LockGuard { lock: self })
        } else {
            None
        }
    }
}

/// RAII guard releasing a [`RawTryLock`] on drop.
#[must_use = "the lock is released when the guard drops"]
pub struct LockGuard<'a, L: RawTryLock> {
    lock: &'a L,
}

impl<L: RawTryLock> Drop for LockGuard<'_, L> {
    #[inline]
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// Test-and-set spinlock: each attempt is an unconditional atomic `swap`.
///
/// Under contention the repeated swaps keep the cache line in modified
/// state and ping-pong it between cores — exactly the pathology Fig. 2
/// demonstrates relative to [`TatasLock`].
#[derive(Default)]
pub struct TasLock {
    held: AtomicBool,
}

impl TasLock {
    #[cold]
    fn lock_contended(&self) {
        let t0 = obs::recorder::now_ns();
        let mut backoff = Backoff::new();
        while self.held.swap(true, Ordering::Acquire) {
            backoff.wait();
        }
        crate::site::record_wait(obs::recorder::now_ns().saturating_sub(t0));
    }
}

impl RawTryLock for TasLock {
    const NAME: &'static str = "tas";

    #[inline]
    fn try_lock(&self) -> bool {
        det::det_point!("sync.trylock");
        fault::fail_point!("trylock.spurious-fail", return note_try_lock(false));
        // Acquire on success orders the critical section after the
        // previous holder's release store.
        note_try_lock(!self.held.swap(true, Ordering::Acquire))
    }

    #[inline]
    fn lock(&self) {
        // Uncontended fast path: one swap, no clock reads.
        if !self.held.swap(true, Ordering::Acquire) {
            return;
        }
        self.lock_contended();
    }

    #[inline]
    fn unlock(&self) {
        det::det_point!("sync.unlock");
        self.held.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }
}

/// Test-and-test-and-set spinlock: spin on a read, swap only when free.
///
/// The read-only spin keeps the line in shared state across waiters, so a
/// release triggers one invalidation instead of a storm. ZMSQ's default.
#[derive(Default)]
pub struct TatasLock {
    held: AtomicBool,
}

impl TatasLock {
    #[cold]
    fn lock_contended(&self) {
        let t0 = obs::recorder::now_ns();
        let mut backoff = Backoff::new();
        loop {
            while self.held.load(Ordering::Relaxed) {
                backoff.wait();
            }
            if !self.held.swap(true, Ordering::Acquire) {
                crate::site::record_wait(obs::recorder::now_ns().saturating_sub(t0));
                return;
            }
        }
    }
}

impl RawTryLock for TatasLock {
    const NAME: &'static str = "tatas";

    #[inline]
    fn try_lock(&self) -> bool {
        det::det_point!("sync.trylock");
        fault::fail_point!("trylock.spurious-fail", return note_try_lock(false));
        // The cheap load filters out attempts that would fail anyway; this
        // is what makes trylock-and-restart profitable in insert() (§4.1).
        note_try_lock(
            !self.held.load(Ordering::Relaxed) && !self.held.swap(true, Ordering::Acquire),
        )
    }

    #[inline]
    fn lock(&self) {
        // Uncontended fast path: load + swap, no clock reads.
        if !self.held.load(Ordering::Relaxed) && !self.held.swap(true, Ordering::Acquire) {
            return;
        }
        self.lock_contended();
    }

    #[inline]
    fn unlock(&self) {
        det::det_point!("sync.unlock");
        self.held.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }
}

/// OS-parking mutex — the `std::mutex` arm of the Figure 2 comparison.
///
/// A classic three-state futex mutex (Drepper, *Futexes Are Tricky*):
/// 0 = free, 1 = locked, 2 = locked with (possible) waiters. The fast
/// path is one CAS with no syscall; contended acquisition spins briefly
/// then parks in the kernel, and release only issues a wake when the
/// state says someone may be sleeping. Built on [`crate::futex`] rather
/// than `std::sync::Mutex` because the queue needs the raw
/// `lock`/`unlock` interface (guards cannot express the hand-over-hand
/// release order used during set migration).
#[derive(Default)]
pub struct OsLock {
    /// 0 = free, 1 = locked uncontended, 2 = locked contended.
    state: AtomicU32,
}

impl OsLock {
    #[cold]
    fn lock_contended(&self) {
        let t0 = obs::recorder::now_ns();
        // Brief spin: crossing into the kernel costs more than a short
        // critical section. Only loads, so waiters share the line.
        let mut backoff = Backoff::new();
        while !backoff.is_yielding() {
            if self.state.load(Ordering::Relaxed) == 0
                && self
                    .state
                    .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                crate::site::record_wait(obs::recorder::now_ns().saturating_sub(t0));
                return;
            }
            backoff.wait();
        }
        loop {
            // Advertise contention before sleeping. The swap both claims
            // the lock (if it was free) and upgrades 1 -> 2 so the holder's
            // unlock knows to issue a wake. Acquiring via this path leaves
            // state at 2 even when we might be the only waiter — a spare
            // wake later is benign, a missed wake is not.
            if self.state.swap(2, Ordering::Acquire) == 0 {
                crate::site::record_wait(obs::recorder::now_ns().saturating_sub(t0));
                return;
            }
            futex_wait(&self.state, 2);
        }
    }
}

impl RawTryLock for OsLock {
    const NAME: &'static str = "mutex";

    #[inline]
    fn try_lock(&self) -> bool {
        det::det_point!("sync.trylock");
        fault::fail_point!("trylock.spurious-fail", return note_try_lock(false));
        note_try_lock(
            self.state
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
        )
    }

    #[inline]
    fn lock(&self) {
        if self
            .state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.lock_contended();
        }
    }

    #[inline]
    fn unlock(&self) {
        det::det_point!("sync.unlock");
        if self.state.swap(0, Ordering::Release) == 2 {
            futex_wake(&self.state, 1);
        }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }
}

impl std::fmt::Debug for TasLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TasLock")
            .field("held", &self.is_locked())
            .finish()
    }
}
impl std::fmt::Debug for TatasLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TatasLock")
            .field("held", &self.is_locked())
            .finish()
    }
}
impl std::fmt::Debug for OsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsLock")
            .field("held", &self.is_locked())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn exercise_basic<L: RawTryLock>() {
        let l = L::default();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        assert!(l.is_locked());
        assert!(!l.try_lock(), "{} re-acquired while held", L::NAME);
        l.unlock();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        l.unlock();
    }

    #[test]
    fn basic_tas() {
        exercise_basic::<TasLock>();
    }
    #[test]
    fn basic_tatas() {
        exercise_basic::<TatasLock>();
    }
    #[test]
    fn basic_os() {
        exercise_basic::<OsLock>();
    }

    fn exercise_mutual_exclusion<L: RawTryLock + 'static>() {
        const THREADS: usize = 8;
        const ITERS: u64 = 20_000;
        let lock = Arc::new(L::default());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    lock.lock();
                    // Non-atomic read-modify-write protected by the lock:
                    // torn updates would show up as a lost count.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn mutual_exclusion_tas() {
        exercise_mutual_exclusion::<TasLock>();
    }
    #[test]
    fn mutual_exclusion_tatas() {
        exercise_mutual_exclusion::<TatasLock>();
    }
    #[test]
    fn mutual_exclusion_os() {
        exercise_mutual_exclusion::<OsLock>();
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = TatasLock::default();
        {
            let _g = l.guard();
            assert!(l.is_locked());
            assert!(l.try_guard().is_none());
        }
        assert!(!l.is_locked());
        let g = l.try_guard();
        assert!(g.is_some());
        drop(g);
        assert!(!l.is_locked());
    }

    #[test]
    fn trylock_contention_mix() {
        // Threads alternate try_lock and lock; every successful acquisition
        // must be exclusive.
        let lock = Arc::new(TatasLock::default());
        let inside = Arc::new(AtomicU64::new(0));
        let acquired = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..6 {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            let acquired = Arc::clone(&acquired);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let got = if (i + t) % 2 == 0 {
                        lock.try_lock()
                    } else {
                        lock.lock();
                        true
                    };
                    if got {
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        acquired.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(acquired.load(Ordering::Relaxed) >= 30_000);
    }

    #[test]
    fn os_lock_parks_and_wakes() {
        // Hold the lock long enough that the contender exhausts its spin
        // and parks, then verify unlock's wake reaches it.
        let lock = Arc::new(OsLock::default());
        lock.lock();
        let l2 = Arc::clone(&lock);
        let h = std::thread::spawn(move || {
            l2.lock();
            l2.unlock();
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        lock.unlock();
        h.join().unwrap();
    }

    /// An armed spurious-fail schedule must only ever produce false
    /// negatives from `try_lock` — never false positives, and never leak
    /// into blocking `lock()`.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_spurious_try_lock_failure() {
        fn check<L: RawTryLock>() {
            let l = L::default();
            assert!(!l.try_lock(), "{}: armed Always must fail", L::NAME);
            assert!(
                !l.is_locked(),
                "{}: spurious fail must not acquire",
                L::NAME
            );
            l.lock(); // blocking path is exempt from the failpoint
            assert!(l.is_locked());
            l.unlock();
        }
        let _x = fault::exclusive();
        fault::set_seed(3);
        fault::configure(
            "trylock.spurious-fail",
            fault::Policy::new(fault::Trigger::Always),
        );
        check::<TasLock>();
        check::<TatasLock>();
        check::<OsLock>();
        fault::reset();
        let l = TatasLock::default();
        assert!(l.try_lock(), "disarmed point must not fire");
        l.unlock();
    }
}
