//! The three lock implementations compared in Figure 2 of the paper.
//!
//! ZMSQ's `insert()` uses an optimistic read-before-lock pattern: a thread
//! reads `TNode.max` without the lock, locks the node, and re-validates.
//! §4.1 observes that when a target node is *already locked*, validation is
//! likely to fail anyway, so it pays to `try_lock` and restart immediately
//! (picking a different random path) rather than queue up on the lock.
//!
//! All three locks implement [`RawTryLock`]:
//!
//! * [`OsLock`] — an OS-parking mutex (the `std::mutex` arm of Fig. 2),
//!   built on `parking_lot::RawMutex`.
//! * [`TasLock`] — test-and-set: every acquisition attempt is an atomic
//!   `swap`, which invalidates the cache line even when the lock is held.
//! * [`TatasLock`] — test-and-test-and-set: spin on a plain load and only
//!   attempt the atomic `swap` when the lock is observed free. This is the
//!   winner in the paper's Figure 2b and ZMSQ's default.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::backoff::Backoff;

/// A raw lock with both blocking and non-blocking acquisition.
///
/// `unlock` is safe to call only by the lock holder; the RAII
/// [`LockGuard`] enforces this in the common case, while the queue's
/// hand-over-hand paths (which must release locks out of scope order) call
/// `unlock` directly.
pub trait RawTryLock: Send + Sync + Default {
    /// Human-readable name used in benchmark rows (`mutex`, `tas`, `tatas`).
    const NAME: &'static str;

    /// Attempt to acquire without waiting. Returns `true` on success.
    fn try_lock(&self) -> bool;

    /// Acquire, waiting as long as necessary.
    fn lock(&self);

    /// Release.
    ///
    /// Must only be called by the thread that currently holds the lock;
    /// every internal call site in this workspace is matched 1:1 with an
    /// acquisition on the same thread.
    fn unlock(&self);

    /// Whether the lock is currently held (advisory; racy by nature).
    fn is_locked(&self) -> bool;

    /// Acquire and return an RAII guard.
    #[inline]
    fn guard(&self) -> LockGuard<'_, Self>
    where
        Self: Sized,
    {
        self.lock();
        LockGuard { lock: self }
    }

    /// Try to acquire and return an RAII guard.
    #[inline]
    fn try_guard(&self) -> Option<LockGuard<'_, Self>>
    where
        Self: Sized,
    {
        if self.try_lock() {
            Some(LockGuard { lock: self })
        } else {
            None
        }
    }
}

/// RAII guard releasing a [`RawTryLock`] on drop.
#[must_use = "the lock is released when the guard drops"]
pub struct LockGuard<'a, L: RawTryLock> {
    lock: &'a L,
}

impl<L: RawTryLock> Drop for LockGuard<'_, L> {
    #[inline]
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

/// Test-and-set spinlock: each attempt is an unconditional atomic `swap`.
///
/// Under contention the repeated swaps keep the cache line in modified
/// state and ping-pong it between cores — exactly the pathology Fig. 2
/// demonstrates relative to [`TatasLock`].
#[derive(Default)]
pub struct TasLock {
    held: AtomicBool,
}

impl RawTryLock for TasLock {
    const NAME: &'static str = "tas";

    #[inline]
    fn try_lock(&self) -> bool {
        // Acquire on success orders the critical section after the
        // previous holder's release store.
        !self.held.swap(true, Ordering::Acquire)
    }

    #[inline]
    fn lock(&self) {
        let mut backoff = Backoff::new();
        while self.held.swap(true, Ordering::Acquire) {
            backoff.wait();
        }
    }

    #[inline]
    fn unlock(&self) {
        self.held.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }
}

/// Test-and-test-and-set spinlock: spin on a read, swap only when free.
///
/// The read-only spin keeps the line in shared state across waiters, so a
/// release triggers one invalidation instead of a storm. ZMSQ's default.
#[derive(Default)]
pub struct TatasLock {
    held: AtomicBool,
}

impl RawTryLock for TatasLock {
    const NAME: &'static str = "tatas";

    #[inline]
    fn try_lock(&self) -> bool {
        // The cheap load filters out attempts that would fail anyway; this
        // is what makes trylock-and-restart profitable in insert() (§4.1).
        !self.held.load(Ordering::Relaxed) && !self.held.swap(true, Ordering::Acquire)
    }

    #[inline]
    fn lock(&self) {
        let mut backoff = Backoff::new();
        loop {
            while self.held.load(Ordering::Relaxed) {
                backoff.wait();
            }
            if !self.held.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    #[inline]
    fn unlock(&self) {
        self.held.store(false, Ordering::Release);
    }

    #[inline]
    fn is_locked(&self) -> bool {
        self.held.load(Ordering::Relaxed)
    }
}

/// OS-parking mutex — the `std::mutex` arm of the Figure 2 comparison.
///
/// Built on `parking_lot::RawMutex` rather than `std::sync::Mutex` because
/// the queue needs the raw `lock`/`unlock` interface (guards cannot express
/// the hand-over-hand release order used during set migration).
pub struct OsLock {
    raw: parking_lot::RawMutex,
}

impl Default for OsLock {
    #[inline]
    fn default() -> Self {
        use parking_lot::lock_api::RawMutex as _;
        Self { raw: parking_lot::RawMutex::INIT }
    }
}

impl RawTryLock for OsLock {
    const NAME: &'static str = "mutex";

    #[inline]
    fn try_lock(&self) -> bool {
        use parking_lot::lock_api::RawMutex as _;
        self.raw.try_lock()
    }

    #[inline]
    fn lock(&self) {
        use parking_lot::lock_api::RawMutex as _;
        self.raw.lock();
    }

    #[inline]
    fn unlock(&self) {
        use parking_lot::lock_api::RawMutex as _;
        // SAFETY (API contract, not memory safety): RawTryLock::unlock is
        // documented to be called only by the holder.
        unsafe { self.raw.unlock() }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        use parking_lot::lock_api::RawMutex as _;
        self.raw.is_locked()
    }
}

impl std::fmt::Debug for TasLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TasLock").field("held", &self.is_locked()).finish()
    }
}
impl std::fmt::Debug for TatasLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TatasLock").field("held", &self.is_locked()).finish()
    }
}
impl std::fmt::Debug for OsLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsLock").field("held", &self.is_locked()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn exercise_basic<L: RawTryLock>() {
        let l = L::default();
        assert!(!l.is_locked());
        assert!(l.try_lock());
        assert!(l.is_locked());
        assert!(!l.try_lock(), "{} re-acquired while held", L::NAME);
        l.unlock();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        l.unlock();
    }

    #[test]
    fn basic_tas() {
        exercise_basic::<TasLock>();
    }
    #[test]
    fn basic_tatas() {
        exercise_basic::<TatasLock>();
    }
    #[test]
    fn basic_os() {
        exercise_basic::<OsLock>();
    }

    fn exercise_mutual_exclusion<L: RawTryLock + 'static>() {
        const THREADS: usize = 8;
        const ITERS: u64 = 20_000;
        let lock = Arc::new(L::default());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    lock.lock();
                    // Non-atomic read-modify-write protected by the lock:
                    // torn updates would show up as a lost count.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.unlock();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn mutual_exclusion_tas() {
        exercise_mutual_exclusion::<TasLock>();
    }
    #[test]
    fn mutual_exclusion_tatas() {
        exercise_mutual_exclusion::<TatasLock>();
    }
    #[test]
    fn mutual_exclusion_os() {
        exercise_mutual_exclusion::<OsLock>();
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = TatasLock::default();
        {
            let _g = l.guard();
            assert!(l.is_locked());
            assert!(l.try_guard().is_none());
        }
        assert!(!l.is_locked());
        let g = l.try_guard();
        assert!(g.is_some());
        drop(g);
        assert!(!l.is_locked());
    }

    #[test]
    fn trylock_contention_mix() {
        // Threads alternate try_lock and lock; every successful acquisition
        // must be exclusive.
        let lock = Arc::new(TatasLock::default());
        let inside = Arc::new(AtomicU64::new(0));
        let acquired = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..6 {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            let acquired = Arc::clone(&acquired);
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let got = if (i + t) % 2 == 0 {
                        lock.try_lock()
                    } else {
                        lock.lock();
                        true
                    };
                    if got {
                        assert_eq!(inside.fetch_add(1, Ordering::SeqCst), 0);
                        inside.fetch_sub(1, Ordering::SeqCst);
                        acquired.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(acquired.load(Ordering::Relaxed) >= 30_000);
    }
}
