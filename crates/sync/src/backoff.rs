//! Bounded exponential backoff for optimistic retry loops.
//!
//! The ZMSQ insertion path is built around an optimistic
//! read-before-lock pattern (§4.1): when a validation fails the operation
//! restarts, usually choosing a different random path through the tree.
//! Restarting immediately under contention wastes cache-coherence
//! bandwidth; this backoff spins briefly and doubles the spin budget up to
//! a cap, then optionally yields to the OS scheduler.

use std::hint;

/// Exponential backoff with a spin cap, after which it yields the thread.
///
/// Unlike `crossbeam_utils::Backoff` this exposes the step counter, which
/// the queue's statistics use to record contention, and its parameters are
/// tunable for the lock benchmarks.
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    spin_limit: u32,
    yield_limit: u32,
}

impl Backoff {
    /// Default cap: spin up to `2^6` iterations per step, yield after 10 steps.
    pub const DEFAULT_SPIN_LIMIT: u32 = 6;
    /// Default number of steps before each wait starts yielding to the OS.
    pub const DEFAULT_YIELD_LIMIT: u32 = 10;

    /// A backoff with the default limits.
    #[inline]
    pub fn new() -> Self {
        Self::with_limits(Self::DEFAULT_SPIN_LIMIT, Self::DEFAULT_YIELD_LIMIT)
    }

    /// A backoff with custom spin/yield limits (used by the lock benches).
    #[inline]
    pub fn with_limits(spin_limit: u32, yield_limit: u32) -> Self {
        Self {
            step: 0,
            spin_limit,
            yield_limit,
        }
    }

    /// Number of times [`Backoff::wait`] has been called since creation or
    /// the last [`Backoff::reset`].
    #[inline]
    pub fn steps(&self) -> u32 {
        self.step
    }

    /// Reset to the initial (shortest) wait.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once the spin budget is exhausted and waits have started
    /// yielding to the scheduler — the caller may prefer to block instead.
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step > self.yield_limit
    }

    /// Wait once: spin `2^min(step, spin_limit)` times, yielding to the OS
    /// once the yield limit is passed, then increment the step.
    #[inline]
    pub fn wait(&mut self) {
        det::det_point!("sync.backoff");
        if self.step <= self.yield_limit {
            let spins = 1u32 << self.step.min(self.spin_limit);
            for _ in 0..spins {
                hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }

    /// Spin-only wait that never yields; for very short critical sections
    /// (e.g. the pool's lagging-consumer wait) where losing the timeslice
    /// is worse than burning a few cycles.
    #[inline]
    pub fn spin(&mut self) {
        det::det_point!("sync.backoff");
        let spins = 1u32 << self.step.min(self.spin_limit);
        for _ in 0..spins {
            hint::spin_loop();
        }
        self.step = self.step.saturating_add(1);
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_advance_and_reset() {
        let mut b = Backoff::new();
        assert_eq!(b.steps(), 0);
        assert!(!b.is_yielding());
        for _ in 0..5 {
            b.wait();
        }
        assert_eq!(b.steps(), 5);
        b.reset();
        assert_eq!(b.steps(), 0);
    }

    #[test]
    fn yields_after_limit() {
        let mut b = Backoff::with_limits(2, 3);
        for _ in 0..4 {
            b.wait();
        }
        assert!(b.is_yielding());
        // Must still be callable (OS yield path).
        b.wait();
        assert_eq!(b.steps(), 5);
    }

    #[test]
    fn spin_never_yields_flag() {
        let mut b = Backoff::with_limits(1, 1);
        for _ in 0..10 {
            b.spin();
        }
        // `spin` advances the counter but the caller decides about blocking.
        assert_eq!(b.steps(), 10);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut b = Backoff::with_limits(1, 1);
        b.step = u32::MAX - 1;
        b.wait();
        b.wait();
        assert_eq!(b.steps(), u32::MAX);
    }
}
