//! A thin futex abstraction, with no libc dependency.
//!
//! The paper's blocking mechanism (§3.6) is built directly on the Linux
//! `futex(2)` syscall: "a circular buffer of futexes (the Linux kernel's
//! fast userspace mutex object)". On x86-64 and AArch64 Linux this module
//! issues the raw syscall itself (`FUTEX_WAIT_PRIVATE` /
//! `FUTEX_WAKE_PRIVATE` via inline assembly — the kernel ABI is stable,
//! and going direct removes the workspace's only reason to link `libc`).
//! Elsewhere it degrades to a mutex/condvar parking table keyed by the
//! atom's address — slower, but with identical semantics, so the
//! [`crate::event::EventBuffer`] logic is portable.
//!
//! # Fault injection
//!
//! `futex.spurious-wake` — fires in [`futex_wait`] / [`futex_wait_timeout`]
//! *instead of* parking: the call returns immediately as if the kernel
//! delivered a spurious wakeup or `EINTR`. Forces every caller's
//! re-check-the-predicate loop; a caller that treats "returned" as
//! "signalled" loses wakeups or spins forever under this schedule.
//!
//! # Observability
//!
//! Always-on counters `futex.waits`, `futex.wait_timeouts`,
//! `futex.wakes`, `futex.woken_threads` (exported through
//! [`crate::obs::snapshot`]) and, under `obs-trace`, `futex_wait` /
//! `futex_wake` flight-recorder events. Park durations are recorded
//! into the caller's current [`crate::site`] as
//! `sync.futex_wait_ns{site=…}`.

use std::sync::atomic::AtomicU32;

/// Completed [`futex_wait`] / [`futex_wait_timeout`] calls.
pub(crate) static WAITS: obs::Counter = obs::Counter::new();
/// Timed waits that expired without a wakeup.
pub(crate) static WAIT_TIMEOUTS: obs::Counter = obs::Counter::new();
/// [`futex_wake`] / [`futex_wake_all`] calls.
pub(crate) static WAKES: obs::Counter = obs::Counter::new();
/// Threads actually woken across all wake calls.
pub(crate) static WOKEN_THREADS: obs::Counter = obs::Counter::new();

/// Block the calling thread while `*atom == expected`.
///
/// Returns immediately if the value has already changed; otherwise sleeps
/// until a matching [`futex_wake`]. Spurious wakeups are possible and the
/// caller must re-check its predicate — the event buffer does.
#[inline]
pub fn futex_wait(atom: &AtomicU32, expected: u32) {
    WAITS.incr();
    obs::trace_event!(obs::EventKind::FutexWait);
    fault::fail_point!("futex.spurious-wake", return);
    if det::det_futex_wait!(atom, expected, None).is_some() {
        return;
    }
    let t0 = obs::recorder::now_ns();
    imp::wait(atom, None, expected);
    crate::site::record_futex_wait(obs::recorder::now_ns().saturating_sub(t0));
}

/// Like [`futex_wait`], with a relative timeout. Returns `false` if the
/// wait (probably) timed out, `true` if woken / value changed / spurious.
#[inline]
pub fn futex_wait_timeout(atom: &AtomicU32, expected: u32, timeout: std::time::Duration) -> bool {
    WAITS.incr();
    obs::trace_event!(obs::EventKind::FutexWait, 1);
    fault::fail_point!("futex.spurious-wake", return true);
    if let Some(woken) = det::det_futex_wait!(atom, expected, Some(timeout)) {
        if !woken {
            WAIT_TIMEOUTS.incr();
        }
        return woken;
    }
    let t0 = obs::recorder::now_ns();
    let woken = imp::wait(atom, Some(timeout), expected);
    crate::site::record_futex_wait(obs::recorder::now_ns().saturating_sub(t0));
    if !woken {
        WAIT_TIMEOUTS.incr();
    }
    woken
}

/// Wake up to `count` threads blocked in [`futex_wait`] on `atom`.
///
/// Returns the number of threads woken (best effort on the fallback path).
#[inline]
pub fn futex_wake(atom: &AtomicU32, count: u32) -> usize {
    WAKES.incr();
    if let Some(woken) = det::det_futex_wake!(atom, count) {
        WOKEN_THREADS.add(woken as u64);
        obs::trace_event!(obs::EventKind::FutexWake, woken as u32);
        return woken;
    }
    let woken = imp::wake(atom, count);
    WOKEN_THREADS.add(woken as u64);
    obs::trace_event!(obs::EventKind::FutexWake, woken as u32);
    woken
}

/// Wake every thread blocked on `atom`.
#[inline]
pub fn futex_wake_all(atom: &AtomicU32) -> usize {
    WAKES.incr();
    if let Some(woken) = det::det_futex_wake!(atom, u32::MAX) {
        WOKEN_THREADS.add(woken as u64);
        obs::trace_event!(obs::EventKind::FutexWake, woken as u32);
        return woken;
    }
    let woken = imp::wake(atom, u32::MAX);
    WOKEN_THREADS.add(woken as u64);
    obs::trace_event!(obs::EventKind::FutexWake, woken as u32);
    woken
}

#[cfg(all(
    target_os = "linux",
    not(miri),
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    const FUTEX_WAIT: usize = 0;
    const FUTEX_WAKE: usize = 1;
    const FUTEX_PRIVATE_FLAG: usize = 128;
    const ETIMEDOUT: isize = 110;

    /// `struct timespec` on 64-bit Linux: two 64-bit fields.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    /// Raw `futex(2)`: returns the kernel's value (negative = `-errno`).
    ///
    /// # Safety
    ///
    /// `uaddr` must point to a live, 4-byte-aligned futex word for the
    /// duration of the call; `timeout`, when non-null, must point to a
    /// valid `Timespec`.
    unsafe fn sys_futex(uaddr: *const u32, op: usize, val: u32, timeout: *const Timespec) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: x86-64 Linux syscall ABI — nr in rax (futex = 202),
        // args in rdi/rsi/rdx/r10; the kernel clobbers rcx and r11.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 202usize => ret,
                in("rdi") uaddr,
                in("rsi") op,
                in("rdx") val as usize,
                in("r10") timeout,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: AArch64 Linux syscall ABI — nr in x8 (futex = 98),
        // args in x0..x3, `svc 0`, result in x0.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") 98usize,
                inlateout("x0") uaddr as usize => ret,
                in("x1") op,
                in("x2") val as usize,
                in("x3") timeout,
                options(nostack),
            );
        }
        ret
    }

    /// Returns false only on (probable) timeout.
    pub fn wait(atom: &AtomicU32, timeout: Option<Duration>, expected: u32) -> bool {
        let ts = timeout.map(|d| Timespec {
            tv_sec: d.as_secs().min(i64::MAX as u64) as i64,
            tv_nsec: i64::from(d.subsec_nanos()),
        });
        let ts_ptr = ts
            .as_ref()
            .map_or(std::ptr::null(), |t| t as *const Timespec);
        // SAFETY: the futex word outlives the call (we hold a reference);
        // FUTEX_WAIT blocks until woken, value change, timeout, or signal.
        // EAGAIN/EINTR are benign (caller re-checks its predicate).
        let rc = unsafe {
            sys_futex(
                atom.as_ptr(),
                FUTEX_WAIT | FUTEX_PRIVATE_FLAG,
                expected,
                ts_ptr,
            )
        };
        rc != -ETIMEDOUT
    }

    pub fn wake(atom: &AtomicU32, count: u32) -> usize {
        // The kernel takes the wake count as a *signed* int: u32::MAX
        // would arrive as -1 and wake exactly one waiter (the comparison
        // `++woken >= nr_wake` trips immediately). Clamp to i32::MAX so
        // "wake all" really is unbounded.
        let count = count.min(i32::MAX as u32);
        // SAFETY: as above; FUTEX_WAKE reads no pointer arguments beyond
        // the futex word itself.
        let woken = unsafe {
            sys_futex(
                atom.as_ptr(),
                FUTEX_WAKE | FUTEX_PRIVATE_FLAG,
                count,
                std::ptr::null(),
            )
        };
        woken.max(0) as usize
    }
}

#[cfg(not(all(
    target_os = "linux",
    not(miri),
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    //! Portable fallback: a fixed-size hash table of (mutex, condvar)
    //! buckets keyed by futex-word address, in the style of parking lots.
    //! Collisions only cause extra wakeups, never missed ones, because a
    //! wake broadcasts the bucket and waiters re-check the futex word.

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};
    use std::time::Duration;

    const BUCKETS: usize = 256;

    struct Bucket {
        lock: Mutex<()>,
        cond: Condvar,
    }

    fn table() -> &'static Vec<Bucket> {
        static TABLE: OnceLock<Vec<Bucket>> = OnceLock::new();
        TABLE.get_or_init(|| {
            (0..BUCKETS)
                .map(|_| Bucket {
                    lock: Mutex::new(()),
                    cond: Condvar::new(),
                })
                .collect()
        })
    }

    fn bucket_for(atom: *const AtomicU32) -> &'static Bucket {
        // Fibonacci hash of the address.
        let h = (atom as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &table()[(h >> 48) % BUCKETS]
    }

    /// Returns false only on (probable) timeout of an explicit deadline.
    pub fn wait(atom: &AtomicU32, timeout: Option<Duration>, expected: u32) -> bool {
        let bucket = bucket_for(atom);
        let guard = bucket.lock.lock().unwrap();
        // The check must happen under the bucket lock: a waker that changed
        // the word and then broadcast holds/held the same lock, so either
        // we see the new value here or we are parked before its notify.
        if atom.load(Ordering::Acquire) != expected {
            return true;
        }
        // An untimed wait still uses a bounded sleep: it bounds the damage
        // of a hash-collision notify storm (callers re-check predicates).
        let dur = timeout.unwrap_or(Duration::from_millis(50));
        let (_g, res) = bucket.cond.wait_timeout(guard, dur).unwrap();
        timeout.is_none() || !res.timed_out()
    }

    pub fn wake(atom: &AtomicU32, count: u32) -> usize {
        let bucket = bucket_for(atom);
        let _guard = bucket.lock.lock().unwrap();
        if count == 1 {
            bucket.cond.notify_one();
            1
        } else {
            bucket.cond.notify_all();
            count as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_returns_when_value_differs() {
        let atom = AtomicU32::new(5);
        // Expected != current: must not block.
        futex_wait(&atom, 4);
    }

    #[test]
    fn wake_unblocks_waiter() {
        let atom = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&atom);
        let h = std::thread::spawn(move || {
            while a2.load(Ordering::Acquire) == 0 {
                futex_wait(&a2, 0);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        atom.store(1, Ordering::Release);
        futex_wake_all(&atom);
        h.join().unwrap();
    }

    #[test]
    fn timed_wait_expires() {
        let atom = AtomicU32::new(0);
        let t0 = std::time::Instant::now();
        let woken = futex_wait_timeout(&atom, 0, Duration::from_millis(30));
        assert!(!woken, "nothing woke us: must report timeout");
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn timed_wait_returns_early_on_wake() {
        let atom = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&atom);
        let h = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            while a2.load(Ordering::Acquire) == 0 {
                if !futex_wait_timeout(&a2, 0, Duration::from_secs(10)) {
                    panic!("timed out despite wake");
                }
            }
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        atom.store(1, Ordering::Release);
        futex_wake_all(&atom);
        let waited = h.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "woke well before the timeout"
        );
    }

    #[test]
    fn timed_wait_value_already_changed() {
        let atom = AtomicU32::new(7);
        assert!(futex_wait_timeout(&atom, 3, Duration::from_secs(10)));
    }

    #[test]
    fn wake_with_no_waiters_is_harmless() {
        let atom = AtomicU32::new(0);
        futex_wake(&atom, 1);
        futex_wake_all(&atom);
    }

    #[test]
    fn many_waiters_all_wake() {
        const WAITERS: usize = 8;
        let atom = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..WAITERS {
            let a = Arc::clone(&atom);
            handles.push(std::thread::spawn(move || {
                while a.load(Ordering::Acquire) == 0 {
                    futex_wait(&a, 0);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        atom.store(7, Ordering::Release);
        futex_wake_all(&atom);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Injected spurious wakeups must surface as "woken" (never as
    /// timeout) so predicate loops re-check instead of giving up.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_spurious_wake_reports_woken() {
        let _x = fault::exclusive();
        fault::set_seed(11);
        fault::configure(
            "futex.spurious-wake",
            fault::Policy::new(fault::Trigger::Always),
        );
        let atom = AtomicU32::new(0);
        let t0 = std::time::Instant::now();
        // Would park 10s if the failpoint did not preempt the syscall.
        assert!(futex_wait_timeout(&atom, 0, Duration::from_secs(10)));
        futex_wait(&atom, 0); // returns immediately, does not hang
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert!(fault::hit_count("futex.spurious-wake") >= 2);
        fault::reset();
    }
}
