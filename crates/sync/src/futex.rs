//! A thin futex abstraction.
//!
//! The paper's blocking mechanism (§3.6) is built directly on the Linux
//! `futex(2)` syscall: "a circular buffer of futexes (the Linux kernel's
//! fast userspace mutex object)". On Linux this module issues the raw
//! syscall (`FUTEX_WAIT_PRIVATE` / `FUTEX_WAKE_PRIVATE`). On other
//! platforms it degrades to a mutex/condvar parking table keyed by the
//! atom's address — slower, but with identical semantics, so the
//! [`crate::event::EventBuffer`] logic is portable.

use std::sync::atomic::AtomicU32;

/// Block the calling thread while `*atom == expected`.
///
/// Returns immediately if the value has already changed; otherwise sleeps
/// until a matching [`futex_wake`]. Spurious wakeups are possible and the
/// caller must re-check its predicate — the event buffer does.
#[inline]
pub fn futex_wait(atom: &AtomicU32, expected: u32) {
    imp::wait(atom, None, expected);
}

/// Like [`futex_wait`], with a relative timeout. Returns `false` if the
/// wait (probably) timed out, `true` if woken / value changed / spurious.
#[inline]
pub fn futex_wait_timeout(
    atom: &AtomicU32,
    expected: u32,
    timeout: std::time::Duration,
) -> bool {
    imp::wait(atom, Some(timeout), expected)
}

/// Wake up to `count` threads blocked in [`futex_wait`] on `atom`.
///
/// Returns the number of threads woken (best effort on the fallback path).
#[inline]
pub fn futex_wake(atom: &AtomicU32, count: u32) -> usize {
    imp::wake(atom, count)
}

/// Wake every thread blocked on `atom`.
#[inline]
pub fn futex_wake_all(atom: &AtomicU32) -> usize {
    imp::wake(atom, u32::MAX)
}

#[cfg(target_os = "linux")]
mod imp {
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    /// Returns false only on (probable) timeout.
    pub fn wait(atom: &AtomicU32, timeout: Option<Duration>, expected: u32) -> bool {
        let ts = timeout.map(|d| libc::timespec {
            tv_sec: d.as_secs().min(i64::MAX as u64) as libc::time_t,
            tv_nsec: libc::c_long::from(d.subsec_nanos() as i32),
        });
        let ts_ptr = ts
            .as_ref()
            .map_or(std::ptr::null(), |t| t as *const libc::timespec);
        // SAFETY: the futex word outlives the call (we hold a reference);
        // FUTEX_WAIT blocks until woken, value change, timeout, or signal.
        // EAGAIN/EINTR are benign (caller re-checks its predicate).
        let rc = unsafe {
            libc::syscall(
                libc::SYS_futex,
                atom.as_ptr(),
                libc::FUTEX_WAIT | libc::FUTEX_PRIVATE_FLAG,
                expected,
                ts_ptr,
            )
        };
        if rc == -1 {
            let errno = std::io::Error::last_os_error().raw_os_error();
            errno != Some(libc::ETIMEDOUT)
        } else {
            true
        }
    }

    pub fn wake(atom: &AtomicU32, count: u32) -> usize {
        // The kernel takes the wake count as a *signed* int: u32::MAX
        // would arrive as -1 and wake exactly one waiter (the comparison
        // `++woken >= nr_wake` trips immediately). Clamp to i32::MAX so
        // "wake all" really is unbounded.
        let count = count.min(i32::MAX as u32) as libc::c_int;
        // SAFETY: as above; FUTEX_WAKE takes no pointer arguments beyond
        // the futex word itself.
        let woken = unsafe {
            libc::syscall(
                libc::SYS_futex,
                atom.as_ptr(),
                libc::FUTEX_WAKE | libc::FUTEX_PRIVATE_FLAG,
                count,
            )
        };
        woken.max(0) as usize
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    //! Portable fallback: a fixed-size hash table of (mutex, condvar)
    //! buckets keyed by futex-word address, in the style of parking lots.
    //! Collisions only cause extra wakeups, never missed ones, because a
    //! wake broadcasts the bucket and waiters re-check the futex word.

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Condvar, Mutex, OnceLock};
    use std::time::Duration;

    const BUCKETS: usize = 256;

    struct Bucket {
        lock: Mutex<()>,
        cond: Condvar,
    }

    fn table() -> &'static Vec<Bucket> {
        static TABLE: OnceLock<Vec<Bucket>> = OnceLock::new();
        TABLE.get_or_init(|| {
            (0..BUCKETS)
                .map(|_| Bucket { lock: Mutex::new(()), cond: Condvar::new() })
                .collect()
        })
    }

    fn bucket_for(atom: *const AtomicU32) -> &'static Bucket {
        // Fibonacci hash of the address.
        let h = (atom as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &table()[(h >> 48) % BUCKETS]
    }

    /// Returns false only on (probable) timeout of an explicit deadline.
    pub fn wait(atom: &AtomicU32, timeout: Option<Duration>, expected: u32) -> bool {
        let bucket = bucket_for(atom);
        let guard = bucket.lock.lock().unwrap();
        // The check must happen under the bucket lock: a waker that changed
        // the word and then broadcast holds/held the same lock, so either
        // we see the new value here or we are parked before its notify.
        if atom.load(Ordering::Acquire) != expected {
            return true;
        }
        // An untimed wait still uses a bounded sleep: it bounds the damage
        // of a hash-collision notify storm (callers re-check predicates).
        let dur = timeout.unwrap_or(Duration::from_millis(50));
        let (_g, res) = bucket.cond.wait_timeout(guard, dur).unwrap();
        timeout.is_none() || !res.timed_out()
    }

    pub fn wake(atom: &AtomicU32, count: u32) -> usize {
        let bucket = bucket_for(atom);
        let _guard = bucket.lock.lock().unwrap();
        if count == 1 {
            bucket.cond.notify_one();
            1
        } else {
            bucket.cond.notify_all();
            count as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn wait_returns_when_value_differs() {
        let atom = AtomicU32::new(5);
        // Expected != current: must not block.
        futex_wait(&atom, 4);
    }

    #[test]
    fn wake_unblocks_waiter() {
        let atom = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&atom);
        let h = std::thread::spawn(move || {
            while a2.load(Ordering::Acquire) == 0 {
                futex_wait(&a2, 0);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        atom.store(1, Ordering::Release);
        futex_wake_all(&atom);
        h.join().unwrap();
    }

    #[test]
    fn timed_wait_expires() {
        let atom = AtomicU32::new(0);
        let t0 = std::time::Instant::now();
        let woken = futex_wait_timeout(&atom, 0, Duration::from_millis(30));
        assert!(!woken, "nothing woke us: must report timeout");
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn timed_wait_returns_early_on_wake() {
        let atom = Arc::new(AtomicU32::new(0));
        let a2 = Arc::clone(&atom);
        let h = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            while a2.load(Ordering::Acquire) == 0 {
                if !futex_wait_timeout(&a2, 0, Duration::from_secs(10)) {
                    panic!("timed out despite wake");
                }
            }
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(20));
        atom.store(1, Ordering::Release);
        futex_wake_all(&atom);
        let waited = h.join().unwrap();
        assert!(waited < Duration::from_secs(5), "woke well before the timeout");
    }

    #[test]
    fn timed_wait_value_already_changed() {
        let atom = AtomicU32::new(7);
        assert!(futex_wait_timeout(&atom, 3, Duration::from_secs(10)));
    }

    #[test]
    fn wake_with_no_waiters_is_harmless() {
        let atom = AtomicU32::new(0);
        futex_wake(&atom, 1);
        futex_wake_all(&atom);
    }

    #[test]
    fn many_waiters_all_wake() {
        const WAITERS: usize = 8;
        let atom = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..WAITERS {
            let a = Arc::clone(&atom);
            handles.push(std::thread::spawn(move || {
                while a.load(Ordering::Acquire) == 0 {
                    futex_wait(&a, 0);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        atom.store(7, Ordering::Release);
        futex_wake_all(&atom);
        for h in handles {
            h.join().unwrap();
        }
    }
}
