//! Scalable low-latency consumer blocking (paper §3.6, Listing 3).
//!
//! The mechanism is a circular buffer of cache-padded futex words plus two
//! monotonically increasing operation counters. Every `insert()` takes a
//! ticket from the wake counter and signals the futex that ticket maps to;
//! every `extract_max()` that finds the queue empty takes a ticket from the
//! sleep counter and parks on the futex *its* ticket maps to. The counters
//! disperse threads across the buffer so that (i) there is low contention
//! on any single futex word, and (ii) a signal wakes few threads.
//!
//! Each futex word encodes `(epoch << 8) | waiter_count`: reading the low
//! byte from userspace tells a producer whether anyone sleeps there, so the
//! common-case signal is one `fetch_add` plus two uncontended loads and no
//! syscall.
//!
//! The low byte is a *count*, not a bit, and that is load-bearing for
//! liveness. Every thread that registers on a slot increments the count
//! and — on **every** exit path (ready, woken, closed, timed out) —
//! decrements it again. A nonzero count therefore always means a live
//! thread that either holds an element already or will re-check the
//! predicate before parking again. With a single shared bit (the original
//! design), an early-exiting waiter left the bit set with nobody behind
//! it; a later signal would spend its one wake clearing that *ghost* bit
//! (waking nobody) while a genuinely parked thread on a later slot
//! starved. Consumers survived ghosts because insert-side signals are
//! plentiful; the producer-backpressure mirror ([`crate::ProducerWait`])
//! emits exactly one signal per freed capacity slot, so one eaten signal
//! became a permanent hang (the `producer_liveness_under_wake_lost`
//! chaos test).
//!
//! One deviation from the paper's sketch, for liveness: a signal whose own
//! slot has no sleepers sweeps forward to the next slot that does (bounded
//! by the buffer size, and only entered when the global sleeper count is
//! nonzero). Without this, a lone producer whose tickets happen to miss a
//! lone sleeper's slot would strand an element in the queue while the
//! consumer sleeps forever. The sweep costs nothing in the common case and
//! preserves the paper's "do not wake too many threads at once" property:
//! each signal wakes at most one slot.
//!
//! # Fault injection
//!
//! `event.pre-park-delay` — fires between the final closed/predicate
//! checks and the `futex_wait`, stretching the classic lost-wakeup window
//! so a concurrent `signal()`/`close()` completes entirely inside it.
//! Combined with `futex.spurious-wake` (which makes the park itself
//! return immediately), chaos schedules exercise both halves of the
//! sleep/wake handshake.
//!
//! # Observability
//!
//! Always-on counters (exported through [`crate::obs::snapshot`]):
//! `event.waits` (wait_until entries), `event.parks` (actual futex
//! sleeps), `event.spurious_wakeups` (parks that returned with the
//! predicate still false), `event.signals`, and
//! `event.signals_no_sleeper` (signals resolved by the sleeper-count
//! fast path with no futex work).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use crate::futex::{futex_wait, futex_wait_timeout, futex_wake_all};
use crate::pad::CachePadded;

/// The always-on counters one [`EventBuffer`] population reports into.
/// Two static sets exist: the consumer-side buffer inside the queues
/// (`event.*`) and the producer-side [`crate::ProducerWait`]
/// (`producer.*`) — the same machinery, observed separately so pressure
/// on one side is not mistaken for pressure on the other.
pub(crate) struct WaitCounters {
    /// `wait_until`/`wait_until_timeout` calls that registered as sleepers.
    pub waits: obs::Counter,
    /// Waits that reached the actual `futex_wait` (syscall parks).
    pub parks: obs::Counter,
    /// Parks that returned "woken" while the predicate was still false and
    /// the buffer open — the caller will loop and wait again.
    pub spurious_wakeups: obs::Counter,
    /// `signal` calls.
    pub signals: obs::Counter,
    /// Signals that saw no sleepers and skipped all futex work.
    pub signals_no_sleeper: obs::Counter,
}

impl WaitCounters {
    const fn new() -> Self {
        Self {
            waits: obs::Counter::new(),
            parks: obs::Counter::new(),
            spurious_wakeups: obs::Counter::new(),
            signals: obs::Counter::new(),
            signals_no_sleeper: obs::Counter::new(),
        }
    }
}

/// Counters for the consumer-blocking buffers (`event.*`).
pub(crate) static CONSUMER_COUNTERS: WaitCounters = WaitCounters::new();
/// Counters for the producer-backpressure buffers (`producer.*`).
pub(crate) static PRODUCER_COUNTERS: WaitCounters = WaitCounters::new();

/// Low byte of each futex word: the number of threads currently
/// registered on the slot (inside `wait_until`, between increment and
/// their exit-path decrement).
const WAITER_MASK: u32 = 0xFF;
/// One epoch step. The epoch lives in the high 24 bits so a signal can
/// bump it without disturbing the waiter count. 24 bits of epoch wrap
/// after ~16M signals to one slot; a wrap is only observable if a waiter
/// stalls between its slot load and `futex_wait` across the entire wrap,
/// and even then the failure mode is one extra spurious park-and-retry.
const EPOCH_ONE: u32 = 0x100;

/// Result of [`EventBuffer::wait_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The caller's predicate became true before sleeping; retry the
    /// extraction immediately.
    Ready,
    /// The thread slept and was woken by a signal (or spuriously); retry
    /// the extraction and wait again if it still finds nothing.
    Woken,
    /// The buffer was closed; no more signals will ever arrive.
    Closed,
    /// A timed wait elapsed without a signal (timed variant only).
    TimedOut,
}

/// A circular buffer of futexes used to block idle consumers.
///
/// ```
/// use zmsq_sync::{EventBuffer, WaitOutcome};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let ev = EventBuffer::new();
/// let items = AtomicU64::new(0);
///
/// std::thread::scope(|s| {
///     let (ev, items) = (&ev, &items);
///     let consumer = s.spawn(move || {
///         loop {
///             if items.fetch_update(Ordering::SeqCst, Ordering::SeqCst,
///                                   |v| v.checked_sub(1)).is_ok() {
///                 return "got an item";
///             }
///             ev.wait_until(|| items.load(Ordering::SeqCst) > 0);
///         }
///     });
///     items.fetch_add(1, Ordering::SeqCst); // publish the item...
///     ev.signal();                          // ...then signal (always this order)
///     assert_eq!(consumer.join().unwrap(), "got an item");
/// });
/// ```
pub struct EventBuffer {
    slots: Box<[CachePadded<AtomicU32>]>,
    /// Next-position-to-wake ticket counter (total inserts).
    wake_tickets: CachePadded<AtomicU64>,
    /// Next-position-to-sleep ticket counter (total empty extracts).
    sleep_tickets: CachePadded<AtomicU64>,
    /// Number of threads currently registered as (about to be) sleeping.
    /// Lets the signal fast path skip all futex work with a single load.
    sleepers: CachePadded<AtomicU64>,
    closed: AtomicBool,
    mask: u64,
    spin_before_block: u32,
    /// Which global counter set this buffer reports into (consumer-side
    /// `event.*` by default; `producer.*` for [`crate::ProducerWait`]).
    counters: &'static WaitCounters,
}

impl EventBuffer {
    /// Default number of futex slots; enough to disperse a socket's worth
    /// of consumers.
    pub const DEFAULT_SLOTS: usize = 16;
    /// Default bound on the optimistic spin before parking (paper's
    /// `trySpinBeforeBlock`).
    pub const DEFAULT_SPIN: u32 = 64;

    /// Create a buffer with the default slot count.
    pub fn new() -> Self {
        Self::with_slots(Self::DEFAULT_SLOTS)
    }

    /// Create a buffer with `slots` futexes (rounded up to a power of two).
    pub fn with_slots(slots: usize) -> Self {
        Self::with_slots_and_counters(slots, &CONSUMER_COUNTERS)
    }

    /// Create a buffer reporting into an explicit counter set (the
    /// producer-side wrapper uses `PRODUCER_COUNTERS`).
    pub(crate) fn with_slots_and_counters(slots: usize, counters: &'static WaitCounters) -> Self {
        let n = slots.max(1).next_power_of_two();
        Self {
            slots: (0..n)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            wake_tickets: CachePadded::new(AtomicU64::new(0)),
            sleep_tickets: CachePadded::new(AtomicU64::new(0)),
            sleepers: CachePadded::new(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            mask: (n - 1) as u64,
            spin_before_block: Self::DEFAULT_SPIN,
            counters,
        }
    }

    /// Number of futex slots (always a power of two).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Best-effort count of currently sleeping (or registering) threads.
    pub fn sleeper_count(&self) -> u64 {
        self.sleepers.load(Ordering::Relaxed)
    }

    /// Signal after a producer made an element available
    /// (`signalAfterInsert`). Call *after* the element is visible.
    #[inline]
    pub fn signal(&self) {
        det::det_point!("event.signal");
        self.counters.signals.incr();
        let ticket = self.wake_tickets.fetch_add(1, Ordering::Relaxed);
        // Dekker handshake with `wait_until`: the producer publishes its
        // element, fences, then reads the sleeper count; the waiter bumps
        // the sleeper count, fences, then re-reads the predicate. The
        // SeqCst fences forbid the store-buffering outcome where the
        // producer misses the sleeper AND the sleeper misses the element.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            self.counters.signals_no_sleeper.incr();
            return;
        }
        self.wake_one_from((ticket & self.mask) as usize);
    }

    /// Wake at most one slot's worth of sleepers, starting at `start` and
    /// sweeping forward until a slot with a nonzero waiter count is found.
    fn wake_one_from(&self, start: usize) {
        let n = self.slots.len();
        for i in 0..n {
            let slot = &self.slots[(start + i) & self.mask as usize];
            let mut w = slot.load(Ordering::Relaxed);
            while w & WAITER_MASK != 0 {
                // Bump the epoch, leaving the waiter count untouched — the
                // registered threads deregister themselves on exit. Parked
                // threads (and threads between registration and
                // futex_wait) observe a changed word and retry their
                // admission; because the count only ever reflects live
                // registrants, this wake can never be spent on a slot
                // nobody is behind.
                let next = w.wrapping_add(EPOCH_ONE);
                match slot.compare_exchange_weak(w, next, Ordering::AcqRel, Ordering::Relaxed) {
                    Ok(_) => {
                        futex_wake_all(slot);
                        return;
                    }
                    Err(cur) => w = cur,
                }
            }
        }
    }

    /// Block until `nonempty()` is (probably) true, a signal arrives, or
    /// the buffer is closed (`waitBeforeExtractMax`).
    ///
    /// The protocol: take a sleep ticket, register on that slot, then
    /// re-check the predicate *after* registration — this is the race-free
    /// handoff with [`EventBuffer::signal`]. A bounded spin runs before
    /// parking to absorb short producer gaps without a syscall.
    pub fn wait_until<F: FnMut() -> bool>(&self, nonempty: F) -> WaitOutcome {
        self.wait_until_impl(nonempty, None)
    }

    /// [`EventBuffer::wait_until`] with a bound on the park time. Returns
    /// [`WaitOutcome::TimedOut`] if the timeout elapsed with no signal.
    pub fn wait_until_timeout<F: FnMut() -> bool>(
        &self,
        nonempty: F,
        timeout: std::time::Duration,
    ) -> WaitOutcome {
        self.wait_until_impl(nonempty, Some(timeout))
    }

    fn wait_until_impl<F: FnMut() -> bool>(
        &self,
        mut nonempty: F,
        timeout: Option<std::time::Duration>,
    ) -> WaitOutcome {
        if self.closed.load(Ordering::Acquire) {
            return WaitOutcome::Closed;
        }
        self.counters.waits.incr();
        let ticket = self.sleep_tickets.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];

        // Register as a sleeper before the predicate re-check (see signal).
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
        // Drop-guard so every early return deregisters.
        struct Dereg<'a>(&'a AtomicU64);
        impl Drop for Dereg<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let _dereg = Dereg(&self.sleepers);

        // Register on the slot: bump the waiter count and remember the word
        // we will park on. The count (unlike the original shared bit) is
        // per-registrant state, so every exit path below must undo it —
        // that is the whole liveness fix: a signal sweeping for a nonzero
        // count can never land on a slot whose waiters have all left.
        let mut w = slot.load(Ordering::Relaxed);
        let (parked_word, registered) = loop {
            if w & WAITER_MASK == WAITER_MASK {
                // Count saturated (>255 registrants on one slot): share the
                // word without incrementing. Degrades to the old shared-bit
                // semantics for the excess threads only; the 255 counted
                // registrants still keep the slot live.
                break (w, false);
            }
            match slot.compare_exchange_weak(
                w,
                w.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break (w.wrapping_add(1), true),
                Err(cur) => w = cur,
            }
        };
        // Slot-level drop-guard: every return below deregisters from the
        // slot word (the counterpart of `_dereg` for the global count).
        struct SlotDereg<'a>(&'a AtomicU32, bool);
        impl Drop for SlotDereg<'_> {
            fn drop(&mut self) {
                if self.1 {
                    // Our registration incremented the count, so it is
                    // nonzero until this decrement; the subtraction cannot
                    // borrow into the epoch bits.
                    self.0.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
        let _slot_dereg = SlotDereg(slot, registered);

        // Predicate re-check after registration: a concurrent signal either
        // sees our sleeper count or we see its element here.
        if nonempty() {
            return WaitOutcome::Ready;
        }

        // trySpinBeforeBlock: absorb short gaps without a syscall. Compare
        // epoch bits only — other waiters registering/deregistering churn
        // the count byte, and treating that as a wake would turn
        // contention into spurious retries.
        for _ in 0..self.spin_before_block {
            std::hint::spin_loop();
            if (slot.load(Ordering::Acquire) ^ parked_word) & !WAITER_MASK != 0 {
                return WaitOutcome::Woken;
            }
            if nonempty() {
                return WaitOutcome::Ready;
            }
        }

        if self.closed.load(Ordering::Acquire) {
            return WaitOutcome::Closed;
        }

        // Chaos: stall in the window between the closed/predicate checks
        // and parking. A concurrent close() or signal() lands entirely
        // inside the gap; only the epoch-in-the-futex-word protocol makes
        // the delayed futex_wait below return instead of sleeping forever.
        fault::fail_point!("event.pre-park-delay");
        det::det_point!("event.pre-park");

        self.counters.parks.incr();
        // The kernel compares the full word, so count churn from other
        // registrants can make the park return immediately — that surfaces
        // as a spurious wake (caller loops), never a missed one.
        let woken = match timeout {
            None => {
                futex_wait(slot, parked_word);
                true
            }
            Some(t) => futex_wait_timeout(slot, parked_word, t),
        };

        if self.closed.load(Ordering::Acquire) {
            WaitOutcome::Closed
        } else if woken {
            // A wake with the predicate still false sends the caller
            // straight back to sleep — the spurious-wakeup rate the
            // paper's dispersal scheme is designed to keep low.
            if !nonempty() {
                self.counters.spurious_wakeups.incr();
                obs::trace_event!(obs::EventKind::SpuriousWake);
            }
            WaitOutcome::Woken
        } else {
            WaitOutcome::TimedOut
        }
    }

    /// Close the buffer: wake every sleeper, now and forever. Used for
    /// shutdown of consumer pools.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for slot in self.slots.iter() {
            // Unconditionally bump the epoch (leaving the waiter count to
            // the registrants themselves) so even threads that registered
            // concurrently with close observe a changed word.
            slot.fetch_add(EPOCH_ONE, Ordering::AcqRel);
            futex_wake_all(slot);
        }
    }

    /// Whether [`EventBuffer::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Re-open after a close. Only sound when no waiters can be inside
    /// `wait_until` (e.g. between benchmark phases).
    pub fn reopen(&self) {
        self.closed.store(false, Ordering::Release);
    }
}

impl Default for EventBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EventBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBuffer")
            .field("slots", &self.slots.len())
            .field("sleepers", &self.sleeper_count())
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn slot_count_rounds_to_power_of_two() {
        assert_eq!(EventBuffer::with_slots(1).slot_count(), 1);
        assert_eq!(EventBuffer::with_slots(3).slot_count(), 4);
        assert_eq!(EventBuffer::with_slots(16).slot_count(), 16);
        assert_eq!(EventBuffer::with_slots(17).slot_count(), 32);
    }

    #[test]
    fn ready_when_predicate_true() {
        let ev = EventBuffer::new();
        assert_eq!(ev.wait_until(|| true), WaitOutcome::Ready);
        assert_eq!(ev.sleeper_count(), 0);
    }

    #[test]
    fn closed_buffer_returns_closed() {
        let ev = EventBuffer::new();
        ev.close();
        assert_eq!(ev.wait_until(|| false), WaitOutcome::Closed);
        ev.reopen();
        assert_eq!(ev.wait_until(|| true), WaitOutcome::Ready);
    }

    #[test]
    fn timed_wait_reports_timeout() {
        let ev = EventBuffer::new();
        let t0 = std::time::Instant::now();
        let out = ev.wait_until_timeout(|| false, Duration::from_millis(30));
        assert_eq!(out, WaitOutcome::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(ev.sleeper_count(), 0, "deregistered after timeout");
    }

    #[test]
    fn timed_wait_wakes_on_signal() {
        let ev = Arc::new(EventBuffer::new());
        let flag = Arc::new(AtomicU64::new(0));
        let (ev2, flag2) = (Arc::clone(&ev), Arc::clone(&flag));
        let h = std::thread::spawn(move || {
            ev2.wait_until_timeout(|| flag2.load(Ordering::SeqCst) > 0, Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(20));
        flag.store(1, Ordering::SeqCst);
        ev.signal();
        let out = h.join().unwrap();
        assert_ne!(out, WaitOutcome::TimedOut);
    }

    #[test]
    fn signal_with_no_sleepers_is_cheap_and_harmless() {
        let ev = EventBuffer::new();
        for _ in 0..1000 {
            ev.signal();
        }
        assert_eq!(ev.sleeper_count(), 0);
    }

    /// The fundamental handoff: one producer item, one sleeping consumer,
    /// arbitrary ticket alignment. Exercises the forward-sweep liveness fix.
    #[test]
    fn single_producer_single_consumer_handoff() {
        for skew in 0..5u64 {
            let ev = Arc::new(EventBuffer::with_slots(8));
            // Skew the wake counter so the producer's ticket lands on a
            // different slot than the consumer's.
            for _ in 0..skew {
                ev.signal();
            }
            let items = Arc::new(AtomicU64::new(0));
            let ev2 = Arc::clone(&ev);
            let items2 = Arc::clone(&items);
            let consumer = std::thread::spawn(move || loop {
                if items2
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    return;
                }
                ev2.wait_until(|| items2.load(Ordering::SeqCst) > 0);
            });
            std::thread::sleep(Duration::from_millis(10));
            items.fetch_add(1, Ordering::SeqCst);
            ev.signal();
            consumer.join().unwrap();
        }
    }

    #[test]
    fn many_consumers_all_drain_and_exit_on_close() {
        const CONSUMERS: usize = 8;
        const ITEMS: u64 = 10_000;
        let ev = Arc::new(EventBuffer::with_slots(4));
        let items = Arc::new(AtomicU64::new(0));
        let taken = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..CONSUMERS {
            let ev = Arc::clone(&ev);
            let items = Arc::clone(&items);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || loop {
                if items
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    taken.fetch_add(1, Ordering::SeqCst);
                    continue;
                }
                match ev.wait_until(|| items.load(Ordering::SeqCst) > 0) {
                    WaitOutcome::Closed => return,
                    WaitOutcome::Ready | WaitOutcome::Woken | WaitOutcome::TimedOut => {}
                }
            }));
        }
        for _ in 0..ITEMS {
            items.fetch_add(1, Ordering::SeqCst);
            ev.signal();
        }
        // Wait until everything is consumed, then close.
        while taken.load(Ordering::SeqCst) < ITEMS {
            std::thread::yield_now();
        }
        ev.close();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::SeqCst), ITEMS);
        assert_eq!(ev.sleeper_count(), 0);
    }

    /// Producers and consumers racing: no element may be stranded while a
    /// consumer sleeps forever (the lost-wakeup test).
    #[test]
    fn no_lost_wakeups_under_race() {
        const ROUNDS: u64 = 2_000;
        let ev = Arc::new(EventBuffer::with_slots(2));
        let items = Arc::new(AtomicU64::new(0));
        let ev_c = Arc::clone(&ev);
        let items_c = Arc::clone(&items);
        let consumer = std::thread::spawn(move || {
            let mut got = 0u64;
            while got < ROUNDS {
                if items_c
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    got += 1;
                    continue;
                }
                ev_c.wait_until(|| items_c.load(Ordering::SeqCst) > 0);
            }
            got
        });
        for _ in 0..ROUNDS {
            items.fetch_add(1, Ordering::SeqCst);
            ev.signal();
            if fastrand_bit() {
                std::thread::yield_now();
            }
        }
        assert_eq!(consumer.join().unwrap(), ROUNDS);
    }

    fn fastrand_bit() -> bool {
        use std::cell::Cell;
        thread_local! {
            static S: Cell<u64> = const { Cell::new(0x243F_6A88_85A3_08D3) };
        }
        S.with(|s| {
            let mut x = s.get();
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.set(x);
            x & 1 == 0
        })
    }

    #[test]
    fn sweep_finds_waiter_on_distant_slot() {
        // Directly exercise wake_one_from: a waiter parks on some slot; a
        // signal starting from every other slot must still find it.
        let ev = Arc::new(EventBuffer::with_slots(8));
        let woken = Arc::new(AtomicUsize::new(0));
        let ev2 = Arc::clone(&ev);
        let woken2 = Arc::clone(&woken);
        let h = std::thread::spawn(move || {
            let out = ev2.wait_until(|| false);
            assert_ne!(out, WaitOutcome::Ready);
            woken2.store(1, Ordering::SeqCst);
        });
        while ev.sleeper_count() == 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(10));
        ev.signal();
        h.join().unwrap();
        assert_eq!(woken.load(Ordering::SeqCst), 1);
    }

    /// Regression for the `producer_liveness_under_wake_lost` hang: a
    /// deterministic replay of the captured bad state. Early-exiting
    /// waiters (Ready and TimedOut returns) pass through slots 0–2; a real
    /// waiter then parks on slot 3; exactly ONE signal is sent with a wake
    /// ticket landing on slot 0, so the sweep crosses the residue slots
    /// first. Under the original shared-waiter-bit protocol the early
    /// exits left ghost bits behind and the signal was spent clearing the
    /// slot-0 ghost (waking nobody) — the memory dump of the hung chaos
    /// run showed exactly that shape: residue slots one epoch ahead, the
    /// parked slot's bit still set. With per-registrant waiter counts the
    /// residue slots read zero and the sweep must reach the parked waiter.
    #[test]
    fn early_exit_residue_cannot_eat_a_scarce_signal() {
        let ev = Arc::new(EventBuffer::with_slots(8));
        // Sleep tickets 0 and 1 → slots 0 and 1: Ready exits (predicate
        // true at the post-registration re-check).
        assert_eq!(ev.wait_until(|| true), WaitOutcome::Ready);
        assert_eq!(ev.wait_until(|| true), WaitOutcome::Ready);
        // Sleep ticket 2 → slot 2: a timed-out park.
        assert_eq!(
            ev.wait_until_timeout(|| false, Duration::from_millis(1)),
            WaitOutcome::TimedOut
        );
        // Sleep ticket 3 → slot 3: a genuine waiter, parked for real.
        let flag = Arc::new(AtomicU64::new(0));
        let (ev2, flag2) = (Arc::clone(&ev), Arc::clone(&flag));
        let h = std::thread::spawn(move || ev2.wait_until(|| flag2.load(Ordering::SeqCst) > 0));
        while ev.sleeper_count() == 0 {
            std::thread::yield_now();
        }
        // Get it past the bounded spin and into the futex.
        std::thread::sleep(Duration::from_millis(20));
        // Publish, then exactly one signal. Wake ticket 0 starts the sweep
        // at slot 0, crossing every residue slot before the parked one —
        // the scarce-signal shape of the producer-backpressure path.
        flag.store(1, Ordering::SeqCst);
        ev.signal();
        // Join with a deadline: on a lost wake, unstick the thread so the
        // test fails instead of hanging the suite.
        let t0 = std::time::Instant::now();
        while !h.is_finished() {
            if t0.elapsed() > Duration::from_secs(10) {
                ev.close();
                let _ = h.join();
                panic!("single signal never reached the parked waiter (ghost residue ate it)");
            }
            std::thread::yield_now();
        }
        let out = h.join().unwrap();
        assert!(
            matches!(out, WaitOutcome::Woken | WaitOutcome::Ready),
            "unexpected outcome {out:?}"
        );
        assert_eq!(ev.sleeper_count(), 0);
    }

    /// close() must wake threads at *every* stage of wait_until —
    /// registering, spinning, or parked — and reopen() must leave the
    /// buffer fully usable by the same threads. Cycles the close/reopen
    /// race against a pack of sleepers that re-enter as fast as they can.
    #[test]
    fn close_reopen_races_with_sleepers() {
        const SLEEPERS: usize = 4;
        const CYCLES: usize = 100;
        let ev = Arc::new(EventBuffer::with_slots(2));
        let stop = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..SLEEPERS {
            let ev = Arc::clone(&ev);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while stop.load(Ordering::SeqCst) == 0 {
                    // Any outcome is legal (a fast close/reopen pair can
                    // surface as Woken, or as Ready via the predicate);
                    // what close() owes us is a prompt return — re-enter
                    // immediately to race the reopen.
                    ev.wait_until(|| stop.load(Ordering::SeqCst) > 0);
                }
            }));
        }
        for _ in 0..CYCLES {
            // Let at least one thread get past registration sometimes, but
            // deliberately do not wait every cycle — close() must also be
            // correct against threads mid-registration.
            if ev.sleeper_count() == 0 {
                std::thread::yield_now();
            }
            ev.close();
            ev.reopen();
        }
        stop.store(1, Ordering::SeqCst);
        ev.close();
        for h in handles {
            // If a sleeper missed a close-wake it hangs here and the test
            // times out — that IS the failure mode under test.
            h.join().unwrap();
        }
        assert_eq!(ev.sleeper_count(), 0);
        ev.reopen();
        assert_eq!(
            ev.wait_until(|| true),
            WaitOutcome::Ready,
            "usable after final reopen"
        );
    }

    /// Injected spurious wakeups must never be mistaken for timeouts, and
    /// a producer/consumer handoff must still complete when *every* park
    /// returns immediately (wait_until degrades to polling, not to hanging
    /// or to dropping items).
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_spurious_wakeups_do_not_break_handoff() {
        let _x = fault::exclusive();
        fault::set_seed(7);
        fault::configure(
            "futex.spurious-wake",
            fault::Policy::new(fault::Trigger::Always),
        );

        // 1. A spuriously-woken timed wait reports Woken, not TimedOut.
        let ev = EventBuffer::with_slots(2);
        let out = ev.wait_until_timeout(|| false, Duration::from_secs(10));
        assert_eq!(out, WaitOutcome::Woken);
        assert_eq!(ev.sleeper_count(), 0);

        // 2. Handoff completes even though no real futex sleep ever happens.
        let ev = Arc::new(EventBuffer::with_slots(2));
        let items = Arc::new(AtomicU64::new(0));
        let (ev2, items2) = (Arc::clone(&ev), Arc::clone(&items));
        let consumer = std::thread::spawn(move || {
            let mut got = 0u64;
            while got < 200 {
                if items2
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    got += 1;
                    continue;
                }
                ev2.wait_until(|| items2.load(Ordering::SeqCst) > 0);
            }
            got
        });
        for _ in 0..200 {
            items.fetch_add(1, Ordering::SeqCst);
            ev.signal();
        }
        assert_eq!(consumer.join().unwrap(), 200);
        assert!(fault::hit_count("futex.spurious-wake") > 0);
        fault::reset();
    }

    /// The pre-park delay window: close() fires entirely between a
    /// sleeper's last checks and its park. The epoch bump in the futex
    /// word is what keeps the delayed park from sleeping forever.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_pre_park_delay_cannot_lose_close() {
        let _x = fault::exclusive();
        fault::set_seed(13);
        fault::configure(
            "event.pre-park-delay",
            fault::Policy::new(fault::Trigger::Always).with_action(fault::Action::SleepMs(40)),
        );
        let ev = Arc::new(EventBuffer::with_slots(1));
        let ev2 = Arc::clone(&ev);
        let h = std::thread::spawn(move || ev2.wait_until(|| false));
        // Land the close inside the 40ms delay window.
        std::thread::sleep(Duration::from_millis(15));
        ev.close();
        let out = h.join().unwrap();
        assert_eq!(out, WaitOutcome::Closed);
        fault::reset();
    }
}
