//! Concurrency substrate for the ZMSQ reproduction.
//!
//! This crate packages the low-level synchronization building blocks the
//! paper relies on, independent of the queue itself, so they can be tested
//! and benchmarked in isolation:
//!
//! * [`trylock`] — the three lock implementations compared in Figure 2
//!   (an OS-parking mutex, a test-and-set trylock and a
//!   test-and-test-and-set trylock) behind a single [`RawTryLock`] trait.
//! * [`futex`] — a thin wrapper over the Linux `futex(2)` syscall with a
//!   portable mutex/condvar fallback for other platforms.
//! * [`event`] — the circular buffer of cache-padded futexes from
//!   Listing 3, used to block idle consumers (§3.6).
//! * [`producer`] — the mirror image for bounded queues: producers that
//!   find the queue full park on a [`ProducerWait`], woken by
//!   extractions and by close.
//! * [`backoff`] — bounded exponential backoff for optimistic retry loops.
//! * [`pad`] — cache-line padding to stop false sharing between hot atomics.
//! * [`site`] — per-site lock-wait attribution: named [`site::SiteId`]
//!   scopes charge contended-acquisition and futex-park time to the
//!   subsystem that paid it (`sync.wait_ns{site=…}`).
//! * [`slotvec`] — an append-only concurrent slot vector with stable
//!   references, the registry behind every thread-local-component queue
//!   (k-LSM locals, sticky/buffered operation buffers).
//!
//! With `--features fault-inject` the substrate compiles in named
//! failpoints (`trylock.spurious-fail`, `futex.spurious-wake`,
//! `event.pre-park-delay`, `producer.wake-lost`) that chaos tests arm
//! through the `fault` crate; without the feature they expand to nothing.
//!
//! Always-on counters (futex waits/wakes, event parks and spurious
//! wakeups, trylock contention) are exported by [`obs::snapshot`]; with
//! `obs/obs-trace` the same sites also emit flight-recorder events.
//!
//! [`RawTryLock`]: trylock::RawTryLock

#![warn(missing_docs)]

pub mod backoff;
pub mod event;
pub mod futex;
pub mod obs;
pub mod pad;
pub mod producer;
pub mod site;
pub mod slotvec;
pub mod trylock;

pub use backoff::Backoff;
pub use event::{EventBuffer, WaitOutcome};
pub use futex::{futex_wait, futex_wait_timeout, futex_wake, futex_wake_all};
pub use pad::CachePadded;
pub use producer::ProducerWait;
pub use site::{SiteId, SiteScope};
pub use slotvec::{thread_tag, SlotVec};
pub use trylock::{LockGuard, OsLock, RawTryLock, TasLock, TatasLock};
