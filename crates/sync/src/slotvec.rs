//! A tiny append-only concurrent slot vector (enough of `boxcar` for
//! this workspace): `push` returns a stable index; `get` is lock-free.
//! Slots are never moved — storage is a chain of fixed-size chunks.
//!
//! Shared by the thread-local-component queues: the k-LSM's per-thread
//! locals and the sticky/buffered fast paths of `ShardedZmsq` and
//! `MultiQueue` all register one slot per `(thread, queue instance)`
//! and need `&T` references that survive concurrent registration.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Mutex;

const CHUNK: usize = 32;

struct Chunk<T> {
    /// Capacity CHUNK, only grown under the push lock; readers access
    /// initialized prefix elements by shared reference.
    items: UnsafeCell<Vec<T>>,
    next: AtomicPtr<Chunk<T>>,
}

/// Append-only vector with stable references.
pub struct SlotVec<T> {
    head: AtomicPtr<Chunk<T>>,
    len: AtomicUsize,
    push_lock: Mutex<()>,
}

impl<T> SlotVec<T> {
    /// An empty vector (allocates nothing until the first push).
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
            push_lock: Mutex::new(()),
        }
    }

    /// Number of slots pushed so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no slot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slot, returning its stable index.
    pub fn push(&self, value: T) -> usize {
        let _g = self.push_lock.lock().unwrap();
        let idx = self.len.load(Ordering::Relaxed);
        // Walk to the chunk that should hold `idx`.
        let mut link = &self.head;
        let mut base = 0usize;
        loop {
            let p = link.load(Ordering::Acquire);
            if p.is_null() {
                let chunk = Box::into_raw(Box::new(Chunk {
                    items: UnsafeCell::new(Vec::with_capacity(CHUNK)),
                    next: AtomicPtr::new(std::ptr::null_mut()),
                }));
                link.store(chunk, Ordering::Release);
                continue;
            }
            // SAFETY: chunks are never freed before Drop.
            let chunk = unsafe { &*p };
            if idx < base + CHUNK {
                // SAFETY: single pusher (lock held); the Vec has spare
                // capacity (len within chunk < CHUNK) so pushing never
                // reallocates, keeping references from `get` stable.
                let items = unsafe { &mut *chunk.items.get() };
                debug_assert!(items.len() < CHUNK);
                items.push(value);
                break;
            }
            base += CHUNK;
            link = &chunk.next;
        }
        self.len.store(idx + 1, Ordering::Release);
        idx
    }

    /// A stable reference to slot `idx`. Panics when out of bounds.
    pub fn get(&self, idx: usize) -> &T {
        assert!(idx < self.len(), "slot {idx} out of bounds");
        let mut p = self.head.load(Ordering::Acquire);
        let mut base = 0usize;
        loop {
            // SAFETY: idx < len implies the chunk chain covers it.
            let chunk = unsafe { &*p };
            if idx < base + CHUNK {
                // SAFETY: idx < len (checked above) means this element
                // was fully initialized before `len`'s release store,
                // and it will never move or be mutated again.
                let items: &Vec<T> = unsafe { &*chunk.items.get() };
                return &items[idx - base];
            }
            base += CHUNK;
            p = chunk.next.load(Ordering::Acquire);
        }
    }

    /// Iterate over every slot pushed so far.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len()).map(move |i| self.get(i))
    }
}

impl<T> Default for SlotVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for SlotVec<T> {
    fn drop(&mut self) {
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: chunks allocated via Box::into_raw, freed once.
            let chunk = unsafe { Box::from_raw(p) };
            p = chunk.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: SlotVec hands out &T only; interior growth is serialized by
// the push lock and never invalidates existing &T.
unsafe impl<T: Send + Sync> Sync for SlotVec<T> {}
unsafe impl<T: Send> Send for SlotVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_across_chunks() {
        let v: SlotVec<usize> = SlotVec::new();
        assert!(v.is_empty());
        for i in 0..(CHUNK * 3 + 5) {
            assert_eq!(v.push(i), i);
        }
        assert_eq!(v.len(), CHUNK * 3 + 5);
        for i in 0..v.len() {
            assert_eq!(*v.get(i), i);
        }
        assert_eq!(v.iter().copied().sum::<usize>(), (0..v.len()).sum());
    }

    #[test]
    fn references_stay_stable_across_growth() {
        let v: SlotVec<u64> = SlotVec::new();
        v.push(7);
        let first = v.get(0) as *const u64;
        for i in 0..(CHUNK * 4) as u64 {
            v.push(i);
        }
        assert_eq!(first, v.get(0) as *const u64, "slot 0 moved");
        assert_eq!(*v.get(0), 7);
    }

    #[test]
    fn concurrent_push_assigns_unique_slots() {
        use std::sync::Arc;
        let v: Arc<SlotVec<u64>> = Arc::new(SlotVec::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                (0..50).map(|i| v.push(t * 1_000 + i)).collect::<Vec<_>>()
            }));
        }
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for idx in h.join().unwrap() {
                assert!(seen.insert(idx), "index {idx} handed out twice");
            }
        }
        assert_eq!(v.len(), 200);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v: SlotVec<u8> = SlotVec::new();
        v.push(1);
        let _ = v.get(1);
    }
}
