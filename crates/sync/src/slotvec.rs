//! A tiny append-only concurrent slot vector (enough of `boxcar` for
//! this workspace): `push` returns a stable index; `get` is lock-free.
//! Slots are never moved — storage is a chain of fixed-size chunks.
//!
//! Shared by the thread-local-component queues: the k-LSM's per-thread
//! locals and the sticky/buffered fast paths of `ShardedZmsq` and
//! `MultiQueue` all register one slot per `(thread, queue instance)`
//! and need `&T` references that survive concurrent registration.
//!
//! Memory-model discipline: readers are gated *solely* on the
//! acquire-loaded `len` — a chunk is a fixed array of
//! `UnsafeCell<MaybeUninit<T>>`, so `get` never touches state a
//! concurrent `push` mutates (an earlier revision grew a `Vec<T>` per
//! chunk under the push lock, which made every `get` read the `Vec`
//! header racily — UB under the Rust memory model even though the
//! element itself was fenced by `len`'s release store).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

const CHUNK: usize = 32;

/// A process-unique, never-reused tag for the calling thread. Unlike
/// `std::thread::ThreadId` it is a plain dense `u64`, cheap to compare
/// and store next to a slot: the registries built on [`SlotVec`] tag
/// each slot with its owner so a thread whose `(instance, slot)` cache
/// entry was evicted can *reuse* its old slot on re-registration
/// instead of leaking a fresh one per return.
pub fn thread_tag() -> u64 {
    use std::cell::Cell;
    static NEXT_TAG: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TAG: Cell<u64> = const { Cell::new(0) };
    }
    TAG.with(|t| {
        let mut tag = t.get();
        if tag == 0 {
            tag = NEXT_TAG.fetch_add(1, Ordering::Relaxed);
            t.set(tag);
        }
        tag
    })
}

struct Chunk<T> {
    /// Fixed storage; slot `i` is written exactly once (by the pusher
    /// holding the lock, before `len`'s release store publishes it) and
    /// never mutated or moved afterwards.
    slots: [UnsafeCell<MaybeUninit<T>>; CHUNK],
    next: AtomicPtr<Chunk<T>>,
}

impl<T> Chunk<T> {
    fn alloc() -> *mut Self {
        Box::into_raw(Box::new(Self {
            slots: std::array::from_fn(|_| UnsafeCell::new(MaybeUninit::uninit())),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

/// Append-only vector with stable references, plus an index free-list
/// for registries whose slots outlive their logical owners: storage is
/// never reclaimed (references stay stable), but a slot whose contents
/// were reset can be [`release`](Self::release)d and handed to the next
/// registrant by [`try_acquire`](Self::try_acquire) instead of growing
/// the vector.
pub struct SlotVec<T> {
    head: AtomicPtr<Chunk<T>>,
    len: AtomicUsize,
    push_lock: Mutex<()>,
    /// Released slot indices awaiting reuse. A plain mutexed vec: both
    /// ends are registration-path cold (eviction / first touch).
    free: Mutex<Vec<usize>>,
}

impl<T> SlotVec<T> {
    /// An empty vector (allocates nothing until the first push).
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
            push_lock: Mutex::new(()),
            free: Mutex::new(Vec::new()),
        }
    }

    /// Number of slots pushed so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether no slot has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slot, returning its stable index.
    pub fn push(&self, value: T) -> usize {
        let _g = self.push_lock.lock().unwrap();
        let idx = self.len.load(Ordering::Relaxed);
        // Walk to the chunk that should hold `idx`.
        let mut link = &self.head;
        let mut base = 0usize;
        loop {
            let p = link.load(Ordering::Acquire);
            if p.is_null() {
                link.store(Chunk::alloc(), Ordering::Release);
                continue;
            }
            // SAFETY: chunks are never freed before Drop.
            let chunk = unsafe { &*p };
            if idx < base + CHUNK {
                // SAFETY: single pusher (lock held); slot `idx` is above
                // the published `len`, so no reader aliases it yet, and
                // it was never written before (len only grows).
                unsafe { (*chunk.slots[idx - base].get()).write(value) };
                break;
            }
            base += CHUNK;
            link = &chunk.next;
        }
        self.len.store(idx + 1, Ordering::Release);
        idx
    }

    /// A stable reference to slot `idx`. Panics when out of bounds.
    pub fn get(&self, idx: usize) -> &T {
        assert!(idx < self.len(), "slot {idx} out of bounds");
        let mut p = self.head.load(Ordering::Acquire);
        let mut base = 0usize;
        loop {
            // SAFETY: idx < len implies the chunk chain covers it.
            let chunk = unsafe { &*p };
            if idx < base + CHUNK {
                // SAFETY: idx < len (acquire, checked above) means this
                // slot was fully initialized before `len`'s release
                // store, and it is never moved or written again.
                return unsafe { (*chunk.slots[idx - base].get()).assume_init_ref() };
            }
            base += CHUNK;
            p = chunk.next.load(Ordering::Acquire);
        }
    }

    /// Iterate over every slot pushed so far.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Mark slot `idx` reusable. The caller must have reset the slot's
    /// contents to a state safe for a new owner (slots are `&T`-shared,
    /// so "reset" means through the slot's own interior mutability) and
    /// must not use its own references to the slot afterwards. Releasing
    /// an index twice, or one still in use, hands the same slot to two
    /// registrants — a logic error, though never memory-unsafe.
    pub fn release(&self, idx: usize) {
        debug_assert!(idx < self.len(), "releasing unpushed slot {idx}");
        self.free.lock().unwrap().push(idx);
    }

    /// Claim a previously [`release`](Self::release)d slot, if any. The
    /// returned index is owned exclusively by the caller (each release
    /// is handed out once).
    pub fn try_acquire(&self) -> Option<usize> {
        self.free.lock().unwrap().pop()
    }

    /// Released slots currently awaiting reuse.
    pub fn free_count(&self) -> usize {
        self.free.lock().unwrap().len()
    }
}

impl<T> Default for SlotVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for SlotVec<T> {
    fn drop(&mut self) {
        let mut remaining = *self.len.get_mut();
        let mut p = *self.head.get_mut();
        while !p.is_null() {
            // SAFETY: chunks allocated via Box::into_raw, freed once;
            // exactly the first `len` slots (chain-wide) were initialized.
            let chunk = unsafe { Box::from_raw(p) };
            for slot in chunk.slots.iter().take(remaining) {
                unsafe { (*slot.get()).assume_init_drop() };
            }
            remaining = remaining.saturating_sub(CHUNK);
            p = chunk.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: SlotVec hands out &T only; slot initialization is serialized
// by the push lock, published by `len`'s release store, and never
// invalidates existing &T.
unsafe impl<T: Send + Sync> Sync for SlotVec<T> {}
unsafe impl<T: Send> Send for SlotVec<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_across_chunks() {
        let v: SlotVec<usize> = SlotVec::new();
        assert!(v.is_empty());
        for i in 0..(CHUNK * 3 + 5) {
            assert_eq!(v.push(i), i);
        }
        assert_eq!(v.len(), CHUNK * 3 + 5);
        for i in 0..v.len() {
            assert_eq!(*v.get(i), i);
        }
        assert_eq!(v.iter().copied().sum::<usize>(), (0..v.len()).sum());
    }

    #[test]
    fn references_stay_stable_across_growth() {
        let v: SlotVec<u64> = SlotVec::new();
        v.push(7);
        let first = v.get(0) as *const u64;
        for i in 0..(CHUNK * 4) as u64 {
            v.push(i);
        }
        assert_eq!(first, v.get(0) as *const u64, "slot 0 moved");
        assert_eq!(*v.get(0), 7);
    }

    #[test]
    fn concurrent_push_assigns_unique_slots() {
        use std::sync::Arc;
        let v: Arc<SlotVec<u64>> = Arc::new(SlotVec::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let v = Arc::clone(&v);
            handles.push(std::thread::spawn(move || {
                (0..50).map(|i| v.push(t * 1_000 + i)).collect::<Vec<_>>()
            }));
        }
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for idx in h.join().unwrap() {
                assert!(seen.insert(idx), "index {idx} handed out twice");
            }
        }
        assert_eq!(v.len(), 200);
    }

    #[test]
    fn concurrent_readers_while_pushing() {
        use std::sync::Arc;
        let v: Arc<SlotVec<u64>> = Arc::new(SlotVec::new());
        v.push(0);
        let writer = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                for i in 1..(CHUNK as u64 * 8) {
                    v.push(i);
                }
            })
        };
        let reader = {
            let v = Arc::clone(&v);
            std::thread::spawn(move || {
                // Only indices below the acquire-loaded len are touched;
                // each must read back its own pushed value.
                for _ in 0..10_000 {
                    let n = v.len();
                    assert_eq!(*v.get(n - 1), (n - 1) as u64);
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn drop_runs_destructors_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let n = CHUNK * 2 + 3; // partial final chunk
        {
            let v: SlotVec<D> = SlotVec::new();
            for _ in 0..n {
                v.push(D);
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), n);
    }

    #[test]
    fn thread_tags_are_stable_and_distinct() {
        let mine = thread_tag();
        assert_ne!(mine, 0);
        assert_eq!(mine, thread_tag(), "tag must be stable per thread");
        let other = std::thread::spawn(thread_tag).join().unwrap();
        assert_ne!(mine, other, "tags must be distinct across threads");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let v: SlotVec<u8> = SlotVec::new();
        v.push(1);
        let _ = v.get(1);
    }

    #[test]
    fn release_acquire_recycles_indices() {
        let v: SlotVec<u64> = SlotVec::new();
        assert_eq!(v.try_acquire(), None);
        let a = v.push(10);
        let b = v.push(20);
        v.release(a);
        assert_eq!(v.free_count(), 1);
        assert_eq!(v.try_acquire(), Some(a));
        assert_eq!(v.try_acquire(), None, "each release hands out once");
        v.release(b);
        v.release(a);
        let mut got = [v.try_acquire().unwrap(), v.try_acquire().unwrap()];
        got.sort_unstable();
        assert_eq!(got, [a, b]);
        // Recycling never shrinks storage: references stay valid.
        assert_eq!(v.len(), 2);
        assert_eq!(*v.get(a), 10);
    }
}
