//! Randomized property tests for the graph substrate, driven by seeded
//! deterministic RNG streams (replayable from the printed seed).

use fault::DetRng;
use zmsq_graph::{gen, sequential_sssp, CsrGraph, INFINITY};

/// CSR construction is a faithful multigraph representation: the
/// degree sums match the (self-loop-filtered) edge list, every edge
/// appears under its source, weights stay in range.
#[test]
fn csr_faithful_to_edge_list() {
    let mut rng = DetRng::seed_from_u64(0xC5A_0001);
    for case in 0..64 {
        let n = rng.random_range(2usize..100);
        let m = rng.random_range(0usize..300);
        let edges: Vec<(u32, u32, u32)> = (0..m)
            .map(|_| {
                (
                    rng.random_range(0u32..100) % n as u32,
                    rng.random_range(0u32..100) % n as u32,
                    rng.random_range(0u32..50),
                )
            })
            .collect();
        let g = CsrGraph::from_edges(n, &edges);
        let expect: Vec<(u32, u32, u32)> = edges
            .iter()
            .filter(|&&(s, d, _)| s != d)
            .map(|&(s, d, w)| (s, d, w.max(1)))
            .collect();
        assert_eq!(g.num_edges(), expect.len(), "case {case}");
        let mut got: Vec<(u32, u32, u32)> = (0..n as u32)
            .flat_map(|v| g.neighbors(v).map(move |(t, w)| (v, t, w)))
            .collect();
        let mut expect = expect;
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect, "case {case}");
    }
}

/// Dijkstra output is a fixed point of relaxation: no edge can
/// improve any distance, and every finite distance is witnessed by
/// an incoming relaxed edge (or is the source).
#[test]
fn dijkstra_fixed_point() {
    for seed in 0u64..50 {
        let g = gen::erdos_renyi(300, 2000, 30, seed);
        let dist = sequential_sssp(&g, 0);
        assert_eq!(dist[0], 0);
        for v in 0..300u32 {
            if dist[v as usize] == INFINITY {
                continue;
            }
            for (t, w) in g.neighbors(v) {
                assert!(dist[t as usize] <= dist[v as usize] + w as u64);
            }
        }
        // Witness check.
        let mut witnessed = vec![false; 300];
        witnessed[0] = true;
        for v in 0..300u32 {
            if dist[v as usize] == INFINITY {
                continue;
            }
            for (t, w) in g.neighbors(v) {
                if dist[t as usize] == dist[v as usize] + w as u64 {
                    witnessed[t as usize] = true;
                }
            }
        }
        for v in 0..300usize {
            if dist[v] != INFINITY {
                assert!(witnessed[v], "seed {seed}: node {v} has no witness");
            }
        }
    }
}

/// Generators are deterministic in their seed and respect node counts.
#[test]
fn generators_deterministic() {
    for seed in 0u64..20 {
        let a = gen::barabasi_albert(500, 3, 20, seed);
        let b = gen::barabasi_albert(500, 3, 20, seed);
        assert_eq!(a.num_nodes(), 500);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..500u32 {
            assert!(a.neighbors(v).eq(b.neighbors(v)), "seed {seed} node {v}");
        }
    }
}

/// Parallel SSSP equals sequential on randomized graphs across thread
/// counts and queue relaxation levels — the cross-crate E2E property.
#[test]
fn parallel_equals_sequential_randomized() {
    use zmsq::{Zmsq, ZmsqConfig};
    for seed in 0..5u64 {
        let g = gen::rmat(10, 8_000, (0.45, 0.22, 0.22), 40, seed);
        let src = g.max_degree_node();
        let reference = sequential_sssp(&g, src);
        for batch in [0usize, 8, 64] {
            let q: Zmsq<u32> =
                Zmsq::with_config(ZmsqConfig::default().batch(batch).target_len(batch.max(8)));
            let r = zmsq_graph::parallel_sssp(&g, src, &q, 3);
            assert_eq!(r.dist, reference, "seed={seed} batch={batch}");
        }
    }
}
