//! Deterministic random graph generators.
//!
//! Stand-ins for the paper's datasets (DESIGN.md substitution #1):
//! social graphs are power-law, so [`barabasi_albert`] and [`rmat`]
//! reproduce the degree skew that shapes SSSP frontier behaviour;
//! [`erdos_renyi`] provides a uniform control. All are seeded — the same
//! `(generator, parameters, seed)` triple always yields the same graph.

use fault::DetRng;

use crate::CsrGraph;

/// Uniformly random digraph with `n` nodes and ~`m` edges, weights in
/// `[1, max_weight]`.
pub fn erdos_renyi(n: usize, m: usize, max_weight: u32, seed: u64) -> CsrGraph {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let src = rng.random_range(0..n as u32);
        let dst = rng.random_range(0..n as u32);
        let w = rng.random_range(1..=max_weight.max(1));
        edges.push((src, dst, w));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: each new node attaches
/// `attach` undirected edges, preferring high-degree targets (sampled by
/// picking a uniformly random *endpoint* of an existing edge). Produces
/// the power-law degree distribution typical of social graphs such as
/// the paper's Artist / Politician / LiveJournal datasets.
pub fn barabasi_albert(n: usize, attach: usize, max_weight: u32, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let attach = attach.max(1);
    let mut rng = DetRng::seed_from_u64(seed);
    // endpoint pool: every time an edge (u,v) is added, push u and v —
    // sampling the pool is degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * attach);
    let mut edges: Vec<(u32, u32, u32)> = Vec::with_capacity(2 * n * attach);
    let mut add = |u: u32, v: u32, pool: &mut Vec<u32>, rng: &mut DetRng| {
        let w = rng.random_range(1..=max_weight.max(1));
        edges.push((u, v, w));
        edges.push((v, u, w));
        pool.push(u);
        pool.push(v);
    };
    add(0, 1, &mut pool, &mut rng);
    for v in 2..n as u32 {
        for _ in 0..attach {
            let idx = rng.random_range(0..pool.len());
            let target = pool[idx];
            if target != v {
                add(v, target, &mut pool, &mut rng);
            } else {
                // Rare self-pick: attach to a uniformly random earlier node.
                let t = rng.random_range(0..v);
                add(v, t, &mut pool, &mut rng);
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// R-MAT (recursive matrix) generator — the standard synthetic model for
/// scale-free networks (Graph500 uses a=0.57, b=c=0.19, d=0.05).
/// `scale` gives `n = 2^scale` nodes.
pub fn rmat(
    scale: u32,
    edges_count: usize,
    (a, b, c): (f64, f64, f64),
    max_weight: u32,
    seed: u64,
) -> CsrGraph {
    let n = 1usize << scale;
    let mut rng = DetRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(edges_count);
    for _ in 0..edges_count {
        let (mut src, mut dst) = (0u32, 0u32);
        for _ in 0..scale {
            src <<= 1;
            dst <<= 1;
            let r: f64 = rng.random();
            if r < a {
                // top-left quadrant: neither bit set
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        let w = rng.random_range(1..=max_weight.max(1));
        edges.push((src, dst, w));
    }
    CsrGraph::from_edges(n, &edges)
}

/// The paper's graph lineup, by the node counts it reports.
pub mod paper {
    use super::*;

    /// "Artist" stand-in: 50K nodes (§4.6).
    pub fn artist_like(seed: u64) -> CsrGraph {
        barabasi_albert(50_000, 12, 100, seed)
    }

    /// "Politician" stand-in: 6K nodes (§4.6) — too small to afford real
    /// speedup opportunities, per the paper's own observation.
    pub fn politician_like(seed: u64) -> CsrGraph {
        barabasi_albert(6_000, 12, 100, seed)
    }

    /// LiveJournal stand-in (§4.7): 3.8M nodes at `scale = 1.0`;
    /// smaller `scale` shrinks proportionally for quick runs.
    pub fn livejournal_like(scale: f64, seed: u64) -> CsrGraph {
        let n = (3_800_000.0 * scale).max(1000.0) as usize;
        barabasi_albert(n, 9, 100, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_shape_and_determinism() {
        let g1 = erdos_renyi(1000, 5000, 100, 42);
        let g2 = erdos_renyi(1000, 5000, 100, 42);
        assert_eq!(g1.num_nodes(), 1000);
        assert!(g1.num_edges() <= 5000 && g1.num_edges() > 4900); // few self-loops dropped
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in 0..1000u32 {
            assert!(
                g1.neighbors(v).eq(g2.neighbors(v)),
                "determinism at node {v}"
            );
        }
        let g3 = erdos_renyi(1000, 5000, 100, 43);
        assert!(
            !(0..1000u32).all(|v| g1.neighbors(v).eq(g3.neighbors(v))),
            "different seeds should differ"
        );
    }

    #[test]
    fn barabasi_albert_is_power_law_ish() {
        let g = barabasi_albert(5000, 4, 50, 7);
        assert_eq!(g.num_nodes(), 5000);
        // Degree skew: the max degree should dwarf the average.
        let max_deg = (0..5000u32).map(|v| g.degree(v)).max().unwrap();
        let avg = g.avg_degree();
        assert!(
            max_deg as f64 > 8.0 * avg,
            "power-law skew expected: max {max_deg} vs avg {avg:.1}"
        );
        // Undirected construction: every edge has its reverse.
        let mut fwd: Vec<(u32, u32)> = Vec::new();
        for v in 0..5000u32 {
            for (t, _) in g.neighbors(v) {
                fwd.push((v, t));
            }
        }
        let set: std::collections::HashSet<(u32, u32)> = fwd.iter().copied().collect();
        for &(u, v) in fwd.iter().take(1000) {
            assert!(set.contains(&(v, u)), "missing reverse of ({u},{v})");
        }
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(12, 40_000, (0.57, 0.19, 0.19), 100, 3);
        assert_eq!(g.num_nodes(), 4096);
        assert!(g.num_edges() > 35_000);
        let max_deg = (0..4096u32).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn weights_in_range() {
        let g = erdos_renyi(200, 2000, 7, 1);
        for v in 0..200u32 {
            for (_, w) in g.neighbors(v) {
                assert!((1..=7).contains(&w));
            }
        }
    }

    #[test]
    fn paper_graphs_have_reported_node_counts() {
        // Small-scale check only (full LiveJournal scale is a bench-time
        // concern).
        let g = paper::politician_like(1);
        assert_eq!(g.num_nodes(), 6_000);
        let lj = paper::livejournal_like(0.001, 1);
        assert_eq!(lj.num_nodes(), 3_800);
    }
}
