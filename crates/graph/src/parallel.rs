//! Concurrent SSSP over any concurrent priority queue (§4.6).
//!
//! The driver mirrors the SprayList authors' harness the paper reuses:
//! worker threads repeatedly extract the (approximately) closest frontier
//! node and relax its edges with CAS-min updates to a shared distance
//! array. With a *relaxed* queue, nodes can be processed out of order —
//! the algorithm still converges to exact distances (re-processing is
//! the cost, not wrongness; §1's Dijkstra discussion), and the driver
//! counts that wasted work so benchmarks can report it.
//!
//! Priorities: the queues are max-queues, so a tentative distance `d`
//! maps to priority `u64::MAX - d` (closest node = highest priority).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pq_traits::ConcurrentPriorityQueue;

use crate::{CsrGraph, INFINITY};

/// Outcome of a parallel SSSP run.
#[derive(Debug)]
pub struct SsspResult {
    /// Final distances (exact shortest distances on success).
    pub dist: Vec<u64>,
    /// Pops whose node was still at its best known distance.
    pub processed: u64,
    /// Stale pops (node already improved past this entry) — the wasted
    /// work a relaxed queue trades for scalability.
    pub wasted: u64,
    /// Edge relaxations that improved a distance.
    pub relaxations: u64,
    /// Wall-clock time of the parallel phase.
    pub elapsed: Duration,
}

impl SsspResult {
    /// Fraction of pops that were stale.
    pub fn waste_ratio(&self) -> f64 {
        let total = self.processed + self.wasted;
        if total == 0 {
            0.0
        } else {
            self.wasted as f64 / total as f64
        }
    }
}

#[inline]
fn prio_of(dist: u64) -> u64 {
    u64::MAX - dist
}

#[inline]
fn dist_of(prio: u64) -> u64 {
    u64::MAX - prio
}

/// Run SSSP from `source` with `threads` workers sharing `queue`.
///
/// ```
/// use zmsq_graph::{gen, parallel_sssp, sequential_sssp};
/// # use std::{sync::Mutex, collections::BinaryHeap};
/// # struct H(Mutex<BinaryHeap<(u64, u32)>>);
/// # impl pq_traits::ConcurrentPriorityQueue<u32> for H {
/// #   fn insert(&self, p: u64, v: u32) { self.0.lock().unwrap().push((p, v)); }
/// #   fn extract_max(&self) -> Option<(u64, u32)> { self.0.lock().unwrap().pop() }
/// #   fn name(&self) -> String { "heap".into() }
/// # }
/// let g = gen::erdos_renyi(500, 3_000, 20, 42);
/// let q = H(Mutex::new(BinaryHeap::new()));
/// let result = parallel_sssp(&g, 0, &q, 2);
/// assert_eq!(result.dist, sequential_sssp(&g, 0)); // always exact
/// ```
///
/// The queue must be empty; it is drained on return. Termination uses a
/// pending-work counter (incremented before each insert, decremented
/// after the corresponding pop is fully processed), so queues with
/// spurious extraction failures (SprayList, k-LSM) terminate correctly:
/// workers keep polling until the counter hits zero.
pub fn parallel_sssp<Q>(graph: &CsrGraph, source: u32, queue: &Q, threads: usize) -> SsspResult
where
    Q: ConcurrentPriorityQueue<u32> + Sync,
{
    let n = graph.num_nodes();
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INFINITY)).collect();
    let pending = AtomicU64::new(0);
    let processed = AtomicU64::new(0);
    let wasted = AtomicU64::new(0);
    let relaxations = AtomicU64::new(0);

    dist[source as usize].store(0, Ordering::Relaxed);
    pending.fetch_add(1, Ordering::SeqCst);
    queue.insert(prio_of(0), source);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                let mut local_processed = 0u64;
                let mut local_wasted = 0u64;
                let mut local_relax = 0u64;
                let mut idle_spins = 0u32;
                loop {
                    let Some((prio, node)) = queue.extract_max() else {
                        // Spurious failure or momentary emptiness: only
                        // pending == 0 proves completion.
                        if pending.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                        continue;
                    };
                    idle_spins = 0;
                    let d = dist_of(prio);
                    if d > dist[node as usize].load(Ordering::Acquire) {
                        local_wasted += 1;
                        pending.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    for (t, w) in graph.neighbors(node) {
                        let nd = d + w as u64;
                        let cell = &dist[t as usize];
                        let mut cur = cell.load(Ordering::Relaxed);
                        while nd < cur {
                            match cell.compare_exchange_weak(
                                cur,
                                nd,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => {
                                    local_relax += 1;
                                    pending.fetch_add(1, Ordering::SeqCst);
                                    queue.insert(prio_of(nd), t);
                                    break;
                                }
                                Err(c) => cur = c,
                            }
                        }
                    }
                    local_processed += 1;
                    pending.fetch_sub(1, Ordering::SeqCst);
                }
                processed.fetch_add(local_processed, Ordering::Relaxed);
                wasted.fetch_add(local_wasted, Ordering::Relaxed);
                relaxations.fetch_add(local_relax, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    SsspResult {
        dist: dist.into_iter().map(AtomicU64::into_inner).collect(),
        processed: processed.into_inner(),
        wasted: wasted.into_inner(),
        relaxations: relaxations.into_inner(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::sequential_sssp;
    use std::collections::BinaryHeap;
    use std::sync::Mutex;

    /// Minimal strict queue for driver tests (no cross-crate dev-deps).
    struct LockedHeap(Mutex<BinaryHeap<(u64, u32)>>);
    impl ConcurrentPriorityQueue<u32> for LockedHeap {
        fn insert(&self, prio: u64, value: u32) {
            self.0.lock().unwrap().push((prio, value));
        }
        fn extract_max(&self) -> Option<(u64, u32)> {
            self.0.lock().unwrap().pop()
        }
        fn name(&self) -> String {
            "locked-heap".into()
        }
    }

    fn check(graph: &CsrGraph, source: u32, threads: usize) -> SsspResult {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        let result = parallel_sssp(graph, source, &q, threads);
        assert_eq!(result.dist, sequential_sssp(graph, source));
        result
    }

    #[test]
    fn matches_sequential_on_diamond() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 4), (1, 3, 2), (2, 3, 1)]);
        let r = check(&g, 0, 1);
        assert_eq!(r.processed + r.wasted, r.relaxations + 1);
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(2000, 16_000, 50, seed);
            check(&g, 0, 1);
        }
    }

    #[test]
    fn multithreaded_matches_sequential() {
        let g = gen::barabasi_albert(3000, 5, 30, 11);
        for threads in [2, 4] {
            check(&g, g.max_degree_node(), threads);
        }
    }

    #[test]
    fn strict_queue_has_zero_waste_single_thread() {
        // With a strict queue and one thread this *is* Dijkstra: a popped
        // stale entry only occurs for superseded heap entries.
        let g = gen::erdos_renyi(1000, 8000, 20, 5);
        let r = check(&g, 0, 1);
        // Wasted pops are exactly the superseded duplicates, which exist
        // in this driver because we insert on every improvement.
        assert!(r.waste_ratio() < 0.5);
    }

    #[test]
    fn disconnected_nodes_stay_infinite() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 2)]);
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        let r = parallel_sssp(&g, 0, &q, 2);
        assert_eq!(r.dist, vec![0, 2, INFINITY, INFINITY]);
    }
}
