//! Compressed-sparse-row weighted directed graphs.

/// A weighted directed graph in CSR form. Node ids are dense `u32`;
/// weights are positive `u32` (Dijkstra requires non-negative; we forbid
/// zero to keep path lengths strictly increasing).
#[derive(Clone)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
    weights: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list. Self-loops are dropped; parallel edges
    /// are kept (harmless for SSSP). Zero weights are bumped to one.
    pub fn from_edges(n: usize, edges: &[(u32, u32, u32)]) -> Self {
        assert!(n <= u32::MAX as usize);
        let mut degree = vec![0u64; n + 1];
        for &(src, dst, _) in edges {
            if src != dst {
                assert!(
                    (src as usize) < n && (dst as usize) < n,
                    "edge out of range"
                );
                degree[src as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            degree[i] += degree[i - 1];
        }
        let m = degree[n] as usize;
        let mut targets = vec![0u32; m];
        let mut weights = vec![0u32; m];
        let mut cursor = degree.clone();
        for &(src, dst, w) in edges {
            if src == dst {
                continue;
            }
            let at = cursor[src as usize] as usize;
            targets[at] = dst;
            weights[at] = w.max(1);
            cursor[src as usize] += 1;
        }
        Self {
            offsets: degree,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn degree(&self, node: u32) -> usize {
        let i = node as usize;
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate over `(target, weight)` pairs of `node`'s out-edges.
    #[inline]
    pub fn neighbors(&self, node: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let i = node as usize;
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        self.num_edges() as f64 / self.num_nodes().max(1) as f64
    }

    /// The node with the largest out-degree — a good SSSP source for
    /// social graphs (reaches most of the graph quickly).
    pub fn max_degree_node(&self) -> u32 {
        (0..self.num_nodes() as u32)
            .max_by_key(|&v| self.degree(v))
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1 (w1), 0 -> 2 (w4), 1 -> 3 (w2), 2 -> 3 (w1)
        CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 4), (1, 3, 2), (2, 3, 1)])
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        let nbrs: Vec<_> = g.neighbors(0).collect();
        assert_eq!(nbrs, vec![(1, 1), (2, 4)]);
    }

    #[test]
    fn self_loops_dropped_zero_weights_bumped() {
        let g = CsrGraph::from_edges(3, &[(0, 0, 5), (0, 1, 0), (1, 2, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(
            g.neighbors(0).next(),
            Some((1, 1)),
            "zero weight bumped to 1"
        );
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(5, &[]);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(3).count(), 0);
    }

    #[test]
    fn max_degree_node() {
        let g = diamond();
        assert_eq!(g.max_degree_node(), 0);
    }

    #[test]
    fn unsorted_edge_list_groups_by_source() {
        let g = CsrGraph::from_edges(3, &[(2, 0, 1), (0, 1, 1), (2, 1, 2), (0, 2, 3)]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 2);
        let mut n2: Vec<_> = g.neighbors(2).collect();
        n2.sort_unstable();
        assert_eq!(n2, vec![(0, 1), (1, 2)]);
    }
}
