//! Sequential Dijkstra — the reference oracle for the parallel driver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{CsrGraph, INFINITY};

/// Exact single-source shortest path distances from `source`.
/// Unreachable nodes get [`INFINITY`].
pub fn sequential_sssp(graph: &CsrGraph, source: u32) -> Vec<u64> {
    let n = graph.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        for (t, w) in graph.neighbors(v) {
            let nd = d + w as u64;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse((nd, t)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_distances() {
        let g = CsrGraph::from_edges(4, &[(0, 1, 1), (0, 2, 4), (1, 3, 2), (2, 3, 1)]);
        assert_eq!(sequential_sssp(&g, 0), vec![0, 1, 4, 3]);
    }

    #[test]
    fn unreachable_is_infinity() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 5)]);
        let d = sequential_sssp(&g, 0);
        assert_eq!(d, vec![0, 5, INFINITY]);
    }

    #[test]
    fn shorter_path_through_more_hops() {
        // 0->2 direct w10; 0->1->2 w1+1=2.
        let g = CsrGraph::from_edges(3, &[(0, 2, 10), (0, 1, 1), (1, 2, 1)]);
        assert_eq!(sequential_sssp(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn source_choice_matters() {
        let g = CsrGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        assert_eq!(sequential_sssp(&g, 1), vec![INFINITY, 0, 1]);
    }

    #[test]
    fn random_graph_satisfies_triangle_inequality() {
        let g = crate::gen::erdos_renyi(500, 4000, 20, 9);
        let d = sequential_sssp(&g, 0);
        for v in 0..500u32 {
            if d[v as usize] == INFINITY {
                continue;
            }
            for (t, w) in g.neighbors(v) {
                assert!(
                    d[t as usize] <= d[v as usize] + w as u64,
                    "edge ({v},{t},{w}) violates optimality"
                );
            }
        }
    }
}
