//! Graph substrate for the SSSP experiments (paper §4.6–4.7).
//!
//! The paper runs concurrent single-source shortest paths over priority
//! queues on Facebook's Artist/Politician graphs and the LiveJournal
//! social network. Those datasets are not redistributable, so this crate
//! provides deterministic synthetic stand-ins with the same node counts
//! and a comparable power-law degree structure (see DESIGN.md,
//! substitution #1), plus:
//!
//! * [`CsrGraph`] — compressed-sparse-row weighted digraphs;
//! * [`gen`] — Erdős–Rényi, Barabási–Albert and R-MAT generators seeded
//!   for reproducibility;
//! * [`dijkstra`] — the sequential reference solution;
//! * [`parallel`] — the concurrent SSSP driver generic over any
//!   [`pq_traits::ConcurrentPriorityQueue`], with wasted-work accounting
//!   (the price a *relaxed* queue pays in re-expansions).

#![warn(missing_docs)]

pub mod csr;
pub mod dijkstra;
pub mod gen;
pub mod parallel;

pub use csr::CsrGraph;
pub use dijkstra::sequential_sssp;
pub use parallel::{parallel_sssp, SsspResult};

/// Distance value for unreachable nodes.
pub const INFINITY: u64 = u64::MAX;
