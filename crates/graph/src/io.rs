//! Graph file I/O: SNAP edge lists and DIMACS shortest-path format.
//!
//! The paper's LiveJournal graph is publicly available from the SNAP
//! collection (`soc-LiveJournal1.txt`), and the 9th DIMACS challenge
//! distributes weighted road networks in `.gr` format. These readers let
//! a user with the real datasets run the Fig. 7/8 harnesses on them
//! (`fig8_tuning --snap path/to/soc-LiveJournal1.txt`) instead of the
//! synthetic stand-ins.
//!
//! Formats:
//!
//! * **SNAP**: one `src<TAB>dst` pair per line, `#` comments. Unweighted
//!   — weights are synthesized deterministically from the endpoint ids
//!   (the paper's SSSP harness also runs on an originally-unweighted
//!   social graph, so it must have synthesized weights too).
//! * **DIMACS .gr**: `c` comments, `p sp <n> <m>` header, `a <u> <v> <w>`
//!   arcs, 1-indexed.

use std::io::{BufRead, BufReader, Read, Write};

use crate::CsrGraph;

/// Errors from graph parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file, with a line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "malformed graph file at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Deterministic synthetic weight for an unweighted edge, in
/// `[1, max_weight]`.
fn synth_weight(src: u32, dst: u32, max_weight: u32) -> u32 {
    let h = (u64::from(src) << 32 | u64::from(dst))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 40) % u64::from(max_weight.max(1))) as u32 + 1
}

/// Read a SNAP-style edge list (`src\tdst` per line, `#` comments).
/// Node ids are compacted to a dense range; weights synthesized in
/// `[1, max_weight]`.
pub fn read_snap_edges<R: Read>(reader: R, max_weight: u32) -> Result<CsrGraph, ParseError> {
    let mut raw: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(ParseError::Malformed {
                line: idx + 1,
                reason: "expected `src dst`".into(),
            });
        };
        let src: u32 = a.parse().map_err(|_| ParseError::Malformed {
            line: idx + 1,
            reason: format!("bad source id {a:?}"),
        })?;
        let dst: u32 = b.parse().map_err(|_| ParseError::Malformed {
            line: idx + 1,
            reason: format!("bad target id {b:?}"),
        })?;
        max_id = max_id.max(src).max(dst);
        raw.push((src, dst));
    }
    // Compact ids: many SNAP files have sparse id spaces.
    let mut used = vec![false; max_id as usize + 1];
    for &(s, d) in &raw {
        used[s as usize] = true;
        used[d as usize] = true;
    }
    let mut remap = vec![u32::MAX; max_id as usize + 1];
    let mut next = 0u32;
    for (id, &u) in used.iter().enumerate() {
        if u {
            remap[id] = next;
            next += 1;
        }
    }
    let edges: Vec<(u32, u32, u32)> = raw
        .into_iter()
        .map(|(s, d)| {
            let (s, d) = (remap[s as usize], remap[d as usize]);
            (s, d, synth_weight(s, d, max_weight))
        })
        .collect();
    Ok(CsrGraph::from_edges(next as usize, &edges))
}

/// Read a DIMACS shortest-path `.gr` file (`p sp n m` header, `a u v w`
/// arcs, 1-indexed node ids).
pub fn read_dimacs_gr<R: Read>(reader: R) -> Result<CsrGraph, ParseError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        let mut it = t.split_whitespace();
        match it.next() {
            Some("p") => {
                let _sp = it.next();
                let nn = it.next().and_then(|v| v.parse::<usize>().ok());
                let Some(nn) = nn else {
                    return Err(ParseError::Malformed {
                        line: idx + 1,
                        reason: "bad `p sp n m` header".into(),
                    });
                };
                n = Some(nn);
            }
            Some("a") => {
                let vals: Vec<u64> = it.filter_map(|v| v.parse().ok()).collect();
                if vals.len() != 3 {
                    return Err(ParseError::Malformed {
                        line: idx + 1,
                        reason: "arc line needs `a u v w`".into(),
                    });
                }
                let (u, v, w) = (vals[0], vals[1], vals[2]);
                if u == 0 || v == 0 {
                    return Err(ParseError::Malformed {
                        line: idx + 1,
                        reason: "DIMACS ids are 1-indexed".into(),
                    });
                }
                edges.push(((u - 1) as u32, (v - 1) as u32, w as u32));
            }
            Some(other) => {
                return Err(ParseError::Malformed {
                    line: idx + 1,
                    reason: format!("unknown record type {other:?}"),
                })
            }
            None => {}
        }
    }
    let Some(n) = n else {
        return Err(ParseError::Malformed { line: 0, reason: "missing `p sp` header".into() });
    };
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Write a graph in DIMACS `.gr` format (for interchange with other
/// SSSP implementations).
pub fn write_dimacs_gr<W: Write>(graph: &CsrGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "c generated by zmsq-graph")?;
    writeln!(w, "p sp {} {}", graph.num_nodes(), graph.num_edges())?;
    for v in 0..graph.num_nodes() as u32 {
        for (t, weight) in graph.neighbors(v) {
            writeln!(w, "a {} {} {}", v + 1, t + 1, weight)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential_sssp;

    #[test]
    fn snap_roundtrip_with_comments_and_gaps() {
        let text = "\
# SNAP-style comment
# src\tdst
0\t5
5\t9
9\t0
0\t9
";
        let g = read_snap_edges(text.as_bytes(), 10).unwrap();
        // ids {0,5,9} compact to {0,1,2}
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        for v in 0..3u32 {
            for (_, w) in g.neighbors(v) {
                assert!((1..=10).contains(&w));
            }
        }
    }

    #[test]
    fn snap_weights_deterministic() {
        let text = "0\t1\n1\t2\n";
        let a = read_snap_edges(text.as_bytes(), 100).unwrap();
        let b = read_snap_edges(text.as_bytes(), 100).unwrap();
        assert!(a.neighbors(0).eq(b.neighbors(0)));
        assert!(a.neighbors(1).eq(b.neighbors(1)));
    }

    #[test]
    fn snap_rejects_garbage() {
        let err = read_snap_edges("0\tbanana\n".as_bytes(), 10).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }), "{err}");
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = crate::gen::erdos_renyi(50, 300, 20, 3);
        let mut buf = Vec::new();
        write_dimacs_gr(&g, &mut buf).unwrap();
        let g2 = read_dimacs_gr(&buf[..]).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(sequential_sssp(&g, 0), sequential_sssp(&g2, 0));
    }

    #[test]
    fn dimacs_parses_reference_format() {
        let text = "\
c example from the DIMACS spec
p sp 4 4
a 1 2 3
a 2 3 4
a 3 4 5
a 4 1 6
";
        let g = read_dimacs_gr(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(sequential_sssp(&g, 0), vec![0, 3, 7, 12]);
    }

    #[test]
    fn dimacs_rejects_zero_index() {
        let err = read_dimacs_gr("p sp 2 1\na 0 1 5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn dimacs_requires_header() {
        let err = read_dimacs_gr("a 1 2 3\n".as_bytes());
        assert!(err.is_err());
    }
}
