//! Log-bucketed latency histogram.
//!
//! The paper reports mean handoff latency (Fig. 4a); production queue
//! evaluations also care about tails. This is a lock-free, fixed-size,
//! log₂-bucketed histogram: 4 sub-buckets per octave over 1 ns – ~17 s,
//! constant memory, relaxed-atomic recording from any thread, and
//! percentile queries with ≤ ~19% bucket error (half a quarter-octave).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const SUB_BITS: u32 = 2; // 4 sub-buckets per octave
const SUB: usize = 1 << SUB_BITS;
const OCTAVES: usize = 35; // up to 2^34 ns ≈ 17 s
const BUCKETS: usize = OCTAVES * SUB;

/// Concurrent log-bucketed histogram of nanosecond latencies.
///
/// ```
/// use workloads::latency::LatencyHistogram;
/// let h = LatencyHistogram::new();
/// for ns in [120u64, 80, 95, 4000, 110] { h.record_ns(ns); }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile_ns(0.5) <= 128);
/// assert_eq!(h.max_ns(), 4000);
/// ```
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns < SUB as u64 {
            return ns as usize; // exact for tiny values
        }
        let octave = 63 - ns.leading_zeros();
        let sub = (ns >> (octave - SUB_BITS)) as usize & (SUB - 1);
        (((octave as usize).saturating_sub(SUB_BITS as usize)) * SUB + sub + SUB).min(BUCKETS - 1)
    }

    /// Lower edge (ns) represented by bucket `i` — used for reporting.
    fn bucket_floor(i: usize) -> u64 {
        if i < SUB {
            return i as u64;
        }
        let i = i - SUB;
        let octave = (i / SUB) as u32 + SUB_BITS;
        let sub = (i % SUB) as u64;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.record_ns(ns);
    }

    /// Record one sample in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Maximum recorded sample (exact).
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Approximate percentile (0.0–1.0) in nanoseconds, accurate to the
    /// bucket resolution (≤ ~19%).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_floor(i);
            }
        }
        self.max_ns()
    }

    /// One-line summary: `count mean p50 p99 p999 max` (ns).
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.0}ns p50={}ns p99={}ns p99.9={}ns max={}ns",
            self.count(),
            self.mean_ns(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.99),
            self.percentile_ns(0.999),
            self.max_ns()
        )
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.percentile_ns(0.99), 0);
    }

    #[test]
    fn bucket_roundtrip_monotone() {
        // bucket_of must be monotone and bucket_floor(bucket_of(x)) <= x.
        let mut prev = 0;
        for exp in 0..34u32 {
            for off in [0u64, 1, 3] {
                let x = (1u64 << exp) + off * (1 << exp) / 4;
                let b = LatencyHistogram::bucket_of(x);
                assert!(b >= prev, "bucket index not monotone at {x}");
                prev = b;
                let floor = LatencyHistogram::bucket_floor(b);
                assert!(floor <= x, "floor {floor} > sample {x}");
                assert!(
                    x < floor * 2 + 4,
                    "sample {x} far above bucket floor {floor}"
                );
            }
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = LatencyHistogram::new();
        for ns in 1..=100_000u64 {
            h.record_ns(ns);
        }
        let p50 = h.percentile_ns(0.50) as f64;
        let p99 = h.percentile_ns(0.99) as f64;
        assert!((40_000.0..=60_000.0).contains(&p50), "p50 {p50}");
        assert!((80_000.0..=99_001.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.max_ns(), 100_000);
        assert!((h.mean_ns() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn concurrent_recording_counts_exactly() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..25_000u64 {
                    h.record_ns(t * 1000 + i % 997 + 1);
                }
            }));
        }
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.count(), 100_000);
    }

    #[test]
    fn extreme_values_clamped() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        // Does not panic; lands in the last bucket.
        assert!(h.percentile_ns(1.0) > 0);
    }

    #[test]
    fn summary_formats() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(5));
        let s = h.summary();
        assert!(s.contains("n=1"), "{s}");
    }
}
