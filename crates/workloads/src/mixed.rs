//! Mixed insert / extract throughput driver (Figs. 2, 3, 5).
//!
//! Runs `total_ops` operations split evenly across `threads`, each op
//! being an insert with probability `insert_pct` (per-thread seeded
//! streams), against any queue. The paper's variants map directly:
//! 100% inserts, 66% inserts, and the 50/50 mix with prefill.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fault::DetRng;
use pq_traits::ConcurrentPriorityQueue;

use crate::keys::{KeyDist, KeyStream};

/// Parameters of a mixed run.
#[derive(Clone)]
pub struct MixedConfig {
    /// Total operations across all threads.
    pub total_ops: u64,
    /// Worker thread count.
    pub threads: usize,
    /// Percentage of inserts, 0–100 (100 = insert-only).
    pub insert_pct: u32,
    /// Elements inserted before timing starts.
    pub prefill: u64,
    /// Key distribution for inserts (prefill uses the same).
    pub keys: KeyDist,
    /// Base seed; thread `i` uses `seed + i + 1`.
    pub seed: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        Self {
            total_ops: 1_000_000,
            threads: 1,
            insert_pct: 50,
            prefill: 0,
            keys: KeyDist::UniformBits { bits: 20 },
            seed: 0xBEEF,
        }
    }
}

/// Outcome of a mixed run.
#[derive(Debug, Clone, Copy)]
pub struct MixedResult {
    /// Operations actually performed.
    pub ops: u64,
    /// Wall-clock duration of the timed phase.
    pub elapsed: Duration,
    /// Inserts performed.
    pub inserts: u64,
    /// Extractions that returned an element.
    pub extract_hits: u64,
    /// Extractions that returned `None`.
    pub extract_misses: u64,
}

impl MixedResult {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// Run the mixed workload. The queue should be empty on entry.
pub fn run_mixed<Q: ConcurrentPriorityQueue<u64> + Sync>(
    queue: &Q,
    cfg: &MixedConfig,
) -> MixedResult {
    // Prefill (untimed).
    let mut prefill_keys = KeyStream::new(cfg.keys.clone(), cfg.seed);
    for _ in 0..cfg.prefill {
        let k = prefill_keys.next_key();
        queue.insert(k, k);
    }

    let inserts = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let threads = cfg.threads.max(1);
    let per_thread = cfg.total_ops / threads as u64;

    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let inserts = &inserts;
            let hits = &hits;
            let misses = &misses;
            scope.spawn(move || {
                let mut keys = KeyStream::new(cfg.keys.clone(), cfg.seed + t as u64 + 1);
                let mut coin = DetRng::seed_from_u64(cfg.seed ^ (t as u64) << 32);
                let mut local = (0u64, 0u64, 0u64);
                for _ in 0..per_thread {
                    if coin.random_range(0..100u32) < cfg.insert_pct {
                        let k = keys.next_key();
                        queue.insert(k, k);
                        local.0 += 1;
                    } else if queue.extract_max().is_some() {
                        local.1 += 1;
                    } else {
                        local.2 += 1;
                    }
                }
                inserts.fetch_add(local.0, Ordering::Relaxed);
                hits.fetch_add(local.1, Ordering::Relaxed);
                misses.fetch_add(local.2, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    MixedResult {
        ops: per_thread * threads as u64,
        elapsed,
        inserts: inserts.into_inner(),
        extract_hits: hits.into_inner(),
        extract_misses: misses.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::CoarseHeap;
    use zmsq::{Zmsq, ZmsqConfig};

    #[test]
    fn insert_only_counts() {
        let q: CoarseHeap<u64> = CoarseHeap::new();
        let cfg = MixedConfig {
            total_ops: 10_000,
            threads: 2,
            insert_pct: 100,
            ..Default::default()
        };
        let r = run_mixed(&q, &cfg);
        assert_eq!(r.inserts, 10_000);
        assert_eq!(r.extract_hits + r.extract_misses, 0);
        assert_eq!(q.len_hint(), 10_000);
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn mixed_conserves_elements() {
        let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(16).target_len(24));
        let cfg = MixedConfig {
            total_ops: 40_000,
            threads: 4,
            insert_pct: 50,
            prefill: 1_000,
            ..Default::default()
        };
        let r = run_mixed(&q, &cfg);
        let remaining = q.drain_count() as u64;
        assert_eq!(cfg.prefill + r.inserts, r.extract_hits + remaining);
    }

    #[test]
    fn ratio_respected_approximately() {
        let q: CoarseHeap<u64> = CoarseHeap::new();
        let cfg = MixedConfig {
            total_ops: 30_000,
            threads: 3,
            insert_pct: 66,
            prefill: 100,
            ..Default::default()
        };
        let r = run_mixed(&q, &cfg);
        let frac = r.inserts as f64 / r.ops as f64;
        assert!((0.60..0.72).contains(&frac), "insert fraction {frac}");
    }
}
