//! Rank-quality (accuracy) measurement — Table 1.
//!
//! "We initialize each queue with 1K and 64K randomly generated keys
//! without duplicates. For the 1K sized queues, we execute 102 (10%) and
//! 512 (50%) extractMax() operations, and report the number of returned
//! keys that are in the top 102 and 512 respectively."
//!
//! The harness inserts `keys` (distinct), performs `extract_count`
//! *successful* extractions across `threads` threads, and counts how many
//! returned keys rank within the true top `extract_count`.

use std::sync::atomic::{AtomicU64, Ordering};

use pq_traits::ConcurrentPriorityQueue;

/// Result of one accuracy run.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyResult {
    /// Successful extractions performed.
    pub extracted: usize,
    /// How many of them were within the true top `extracted` keys.
    pub in_top: usize,
    /// Spurious `None` results encountered (SprayList/k-LSM can fail on
    /// a nonempty queue; ZMSQ never does).
    pub spurious_failures: u64,
}

impl AccuracyResult {
    /// Fraction of extractions that hit the top set (Table 1's metric).
    pub fn hit_rate(&self) -> f64 {
        if self.extracted == 0 {
            0.0
        } else {
            self.in_top as f64 / self.extracted as f64
        }
    }
}

/// Run the Table 1 accuracy protocol against `queue`.
///
/// `keys` must be duplicate-free. The queue should be empty on entry and
/// retains `keys.len() - extract_count` elements on return.
pub fn measure_accuracy<Q: ConcurrentPriorityQueue<u64> + Sync>(
    queue: &Q,
    keys: &[u64],
    extract_count: usize,
    threads: usize,
) -> AccuracyResult {
    assert!(extract_count <= keys.len());
    for &k in keys {
        queue.insert(k, k);
    }
    // The rank threshold: the extract_count-th largest key.
    let mut sorted: Vec<u64> = keys.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let threshold = sorted[extract_count - 1];

    let budget = AtomicU64::new(extract_count as u64);
    let in_top = AtomicU64::new(0);
    let spurious = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let budget = &budget;
            let in_top = &in_top;
            let spurious = &spurious;
            scope.spawn(move || {
                let mut local_top = 0u64;
                let mut local_spurious = 0u64;
                loop {
                    // Claim one extraction from the budget.
                    if budget
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |b| b.checked_sub(1))
                        .is_err()
                    {
                        break;
                    }
                    loop {
                        match queue.extract_max() {
                            Some((k, _)) => {
                                if k >= threshold {
                                    local_top += 1;
                                }
                                break;
                            }
                            None => {
                                // The queue is definitely nonempty
                                // (extract_count <= keys.len()), so this
                                // is a spurious failure; retry.
                                local_spurious += 1;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                in_top.fetch_add(local_top, Ordering::Relaxed);
                spurious.fetch_add(local_spurious, Ordering::Relaxed);
            });
        }
    });

    AccuracyResult {
        extracted: extract_count,
        in_top: in_top.into_inner() as usize,
        spurious_failures: spurious.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::distinct_keys;
    use baselines::{CoarseHeap, FifoQueue, SprayList};
    use zmsq::{Zmsq, ZmsqConfig};

    #[test]
    fn strict_queue_is_perfect() {
        let q: CoarseHeap<u64> = CoarseHeap::new();
        let keys = distinct_keys(1024, 1);
        let r = measure_accuracy(&q, &keys, 102, 1);
        assert_eq!(r.in_top, 102);
        assert!((r.hit_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(r.spurious_failures, 0);
    }

    #[test]
    fn fifo_is_poor_on_random_keys() {
        let q: FifoQueue<u64> = FifoQueue::new();
        let keys = distinct_keys(1024, 2);
        let r = measure_accuracy(&q, &keys, 102, 1);
        // FIFO returns arrival order: expected hit rate ≈ 10%.
        assert!(r.hit_rate() < 0.35, "fifo hit rate {}", r.hit_rate());
    }

    #[test]
    fn zmsq_beats_fifo_decisively() {
        let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(32).target_len(64));
        let keys = distinct_keys(1024, 3);
        let r = measure_accuracy(&q, &keys, 102, 1);
        assert!(
            r.hit_rate() > 0.5,
            "ZMSQ accuracy {} (paper: more than half meet the threshold)",
            r.hit_rate()
        );
        assert_eq!(r.spurious_failures, 0, "ZMSQ never fails on nonempty");
    }

    #[test]
    fn zmsq_strict_mode_is_perfect() {
        let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::strict());
        let keys = distinct_keys(1024, 4);
        let r = measure_accuracy(&q, &keys, 512, 1);
        assert_eq!(r.in_top, 512);
    }

    #[test]
    fn spraylist_accuracy_depends_on_threads() {
        let keys = distinct_keys(4096, 5);
        let narrow = {
            let q: SprayList<u64> = SprayList::new(2);
            measure_accuracy(&q, &keys, 409, 1).hit_rate()
        };
        let wide = {
            let q: SprayList<u64> = SprayList::new(128);
            measure_accuracy(&q, &keys, 409, 1).hit_rate()
        };
        assert!(
            narrow > wide,
            "spray accuracy must degrade with thread count: {narrow} vs {wide}"
        );
    }

    #[test]
    #[should_panic]
    fn extracting_more_than_inserted_is_a_bug() {
        let q: CoarseHeap<u64> = CoarseHeap::new();
        let keys = distinct_keys(10, 6);
        measure_accuracy(&q, &keys, 11, 1);
    }
}
