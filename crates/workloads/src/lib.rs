//! Workload drivers and measurement harnesses for the evaluation (§4).
//!
//! Each submodule corresponds to a family of experiments:
//!
//! * [`keys`] — the key distributions the paper draws from: uniform
//!   n-bit keys (7-bit / 20-bit in §4.5.1) and the normal distribution
//!   used for the lock study (§4.1).
//! * [`mixed`] — mixed insert / extract throughput runs (Figs. 2, 3, 5).
//! * [`prodcons`] — dedicated producer / consumer threads with handoff
//!   latency and CPU-time measurement (Figs. 4, 6).
//! * [`accuracy`] — rank-quality measurement (Table 1).
//! * [`cpu`] — process CPU-time sampling via `getrusage` (Fig. 4b).
//! * [`latency`] — a concurrent log-bucketed histogram for tail-latency
//!   reporting beyond the paper's means.
//! * [`oracle`] — quiescent-consistency and rank-error oracles shared by
//!   the deterministic schedule suite and the stress tests.
//! * [`quality`] — seeded estimator-vs-oracle harness validating the
//!   queue's sampled `obs::RankEstimator` against the exact
//!   [`oracle::RankOracle`].

#![warn(missing_docs)]

pub mod accuracy;
pub mod cpu;
pub mod keys;
pub mod latency;
pub mod mixed;
pub mod oracle;
pub mod prodcons;
pub mod quality;
