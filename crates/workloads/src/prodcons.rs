//! Producer / consumer drivers (Figs. 4 and 6).
//!
//! Dedicated producer threads push `total_items` stamped items; dedicated
//! consumers extract until everything is received. Each item's value is
//! its enqueue timestamp (nanoseconds since a shared epoch), so consumers
//! measure **handoff latency** exactly as §4.4 does. The run also reports
//! process CPU time (Fig. 4b's metric): spinning consumers burn CPU while
//! idle, blocking consumers don't.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pq_traits::ConcurrentPriorityQueue;
use zmsq::{NodeSet, RawTryLock, Zmsq};

use crate::cpu::measure_cpu;
use crate::keys::{KeyDist, KeyStream};
use crate::latency::LatencyHistogram;

/// Parameters for a producer/consumer run.
#[derive(Clone)]
pub struct ProdConsConfig {
    /// Producer thread count.
    pub producers: usize,
    /// Consumer thread count.
    pub consumers: usize,
    /// Total items transferred (split across producers).
    pub total_items: u64,
    /// Priority distribution.
    pub keys: KeyDist,
    /// Base seed.
    pub seed: u64,
}

impl Default for ProdConsConfig {
    fn default() -> Self {
        Self {
            producers: 1,
            consumers: 1,
            total_items: 100_000,
            keys: KeyDist::UniformBits { bits: 20 },
            seed: 0xFACE,
        }
    }
}

/// Outcome of a producer/consumer run.
#[derive(Debug, Clone, Copy)]
pub struct ProdConsResult {
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// CPU time (user+system) consumed during the run — the Fig. 4b metric.
    pub cpu_time: Duration,
    /// Items received (equals `total_items` on success).
    pub received: u64,
    /// Mean producer→consumer handoff latency in nanoseconds.
    pub mean_handoff_ns: f64,
    /// Median handoff latency (bucketed) in nanoseconds.
    pub p50_handoff_ns: u64,
    /// 99th-percentile handoff latency (bucketed) in nanoseconds.
    pub p99_handoff_ns: u64,
    /// Extract calls that returned `None` (spurious misses + idle polls).
    pub misses: u64,
}

fn run_inner(
    insert: impl Fn(u64, u64) + Sync,
    extract: impl Fn() -> Option<(u64, u64)> + Sync,
    on_producers_done: impl Fn() + Sync,
    cfg: &ProdConsConfig,
) -> ProdConsResult {
    let total = cfg.total_items;
    let producers = cfg.producers.max(1);
    let consumers = cfg.consumers.max(1);
    let received = AtomicU64::new(0);
    let latencies = LatencyHistogram::new();
    let misses = AtomicU64::new(0);
    let epoch = Instant::now();

    let (_, cpu_time) = measure_cpu(|| {
        std::thread::scope(|scope| {
            for p in 0..producers {
                let insert = &insert;
                scope.spawn(move || {
                    let mut keys = KeyStream::new(cfg.keys.clone(), cfg.seed + p as u64);
                    let share =
                        total / producers as u64 + u64::from((p as u64) < total % producers as u64);
                    for _ in 0..share {
                        let stamp = epoch.elapsed().as_nanos() as u64;
                        insert(keys.next_key(), stamp);
                    }
                });
            }
            for _ in 0..consumers {
                let extract = &extract;
                let received = &received;
                let latencies = &latencies;
                let misses = &misses;
                scope.spawn(move || {
                    let mut local_miss = 0u64;
                    loop {
                        match extract() {
                            Some((_, stamp)) => {
                                let now = epoch.elapsed().as_nanos() as u64;
                                latencies.record_ns(now.saturating_sub(stamp));
                                if received.fetch_add(1, Ordering::AcqRel) + 1 == total {
                                    break;
                                }
                            }
                            None => {
                                local_miss += 1;
                                if received.load(Ordering::Acquire) >= total {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    misses.fetch_add(local_miss, Ordering::Relaxed);
                });
            }
            // A watcher closes blocking queues once everything is taken so
            // parked consumers wake up and exit.
            {
                let received = &received;
                let on_producers_done = &on_producers_done;
                scope.spawn(move || {
                    while received.load(Ordering::Acquire) < total {
                        std::thread::yield_now();
                    }
                    on_producers_done();
                });
            }
        });
    });
    let elapsed = epoch.elapsed();

    let got = received.into_inner();
    ProdConsResult {
        elapsed,
        cpu_time,
        received: got,
        mean_handoff_ns: latencies.mean_ns(),
        p50_handoff_ns: latencies.percentile_ns(0.50),
        p99_handoff_ns: latencies.percentile_ns(0.99),
        misses: misses.into_inner(),
    }
}

/// Producer/consumer with **spinning** consumers, for any queue.
pub fn run_prodcons_spin<Q: ConcurrentPriorityQueue<u64> + Sync>(
    queue: &Q,
    cfg: &ProdConsConfig,
) -> ProdConsResult {
    run_inner(
        |k, v| queue.insert(k, v),
        || queue.extract_max(),
        || {},
        cfg,
    )
}

/// Producer/consumer with **blocking** consumers (ZMSQ's §3.6 mechanism).
/// The queue must have been built with `ZmsqConfig::blocking(true)`.
pub fn run_prodcons_blocking<S, L>(queue: &Zmsq<u64, S, L>, cfg: &ProdConsConfig) -> ProdConsResult
where
    S: NodeSet<u64> + 'static,
    L: RawTryLock + 'static,
{
    run_inner(
        |k, v| queue.insert(k, v),
        || queue.extract_max_blocking(),
        || queue.close(),
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::CoarseHeap;
    use zmsq::ZmsqConfig;

    #[test]
    fn spin_transfers_everything() {
        let q: CoarseHeap<u64> = CoarseHeap::new();
        let cfg = ProdConsConfig {
            producers: 2,
            consumers: 2,
            total_items: 20_000,
            ..Default::default()
        };
        let r = run_prodcons_spin(&q, &cfg);
        assert_eq!(r.received, 20_000);
        assert!(r.mean_handoff_ns > 0.0);
        assert_eq!(q.len_hint(), 0);
    }

    #[test]
    fn blocking_transfers_everything_and_wakes_all() {
        let q: Zmsq<u64> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(32)
                .target_len(48)
                .blocking(true),
        );
        let cfg = ProdConsConfig {
            producers: 2,
            consumers: 4,
            total_items: 20_000,
            ..Default::default()
        };
        let r = run_prodcons_blocking(&q, &cfg);
        assert_eq!(r.received, 20_000, "no consumer may hang or lose items");
    }

    #[test]
    fn uneven_split_still_exact() {
        let q: CoarseHeap<u64> = CoarseHeap::new();
        let cfg = ProdConsConfig {
            producers: 3,
            consumers: 2,
            total_items: 10_001, // not divisible by producers
            ..Default::default()
        };
        let r = run_prodcons_spin(&q, &cfg);
        assert_eq!(r.received, 10_001);
    }

    #[test]
    fn spin_with_relaxed_queue() {
        let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().batch(32).target_len(48));
        let cfg = ProdConsConfig {
            producers: 1,
            consumers: 3,
            total_items: 15_000,
            ..Default::default()
        };
        let r = run_prodcons_spin(&q, &cfg);
        assert_eq!(r.received, 15_000);
    }
}
