//! Relaxation-quality oracles for concurrency tests.
//!
//! Two reusable checkers consumed by the deterministic schedule suite
//! (and usable from ordinary stress tests):
//!
//! * [`QcChecker`] — quiescent-consistency bookkeeping: every extracted
//!   element was inserted exactly once (same key, same token), nothing
//!   is duplicated, and a drained run conserves the multiset. Threads
//!   record into private [`ThreadLog`]s (no synchronization on the hot
//!   path beyond one global sequence stamp) which the checker merges at
//!   the end.
//! * [`RankOracle`] — rank-error measurement: for each `extract_max`,
//!   how many strictly greater keys were present in the shadow multiset
//!   at the moment the operation was recorded. ZMSQ's structural bound
//!   is O(batch) per extraction, independent of thread count — the det
//!   suite asserts exactly that.
//!
//! Under the deterministic scheduler operations are serialized, so
//! recording adjacent to the operation *is* the linearization point and
//! the rank numbers are exact. Under real concurrency the shadow update
//! races the queue by the width of the instrumentation window, so
//! assertions there must carry slack.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What one thread saw, in program order. Obtain via
/// [`QcChecker::handle`], fill during the run, hand back with
/// [`QcChecker::absorb`].
pub struct ThreadLog {
    seq: Arc<AtomicU64>,
    events: Vec<Event>,
}

#[derive(Clone, Copy)]
struct Event {
    insert: bool,
    key: u64,
    token: u64,
    seq: u64,
}

impl ThreadLog {
    /// Record an insertion of `(key, token)`. Call immediately *before*
    /// the queue's `insert`: the element becomes visible at some point
    /// inside the op, so only a pre-op stamp is guaranteed to precede
    /// any extraction's post-op stamp. `token` must be unique per
    /// element (e.g. `producer_id << 32 | i`).
    pub fn on_insert(&mut self, key: u64, token: u64) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.events.push(Event {
            insert: true,
            key,
            token,
            seq,
        });
    }

    /// Record a successful extraction of `(key, token)`. Call
    /// immediately *after* `extract_max` returns the element (the
    /// mirror-image of [`ThreadLog::on_insert`]'s pre-op rule).
    pub fn on_extract(&mut self, key: u64, token: u64) {
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.events.push(Event {
            insert: false,
            key,
            token,
            seq,
        });
    }
}

/// Counts from a passing [`QcChecker::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QcStats {
    /// Insertions recorded across all absorbed logs.
    pub inserts: usize,
    /// Extractions recorded across all absorbed logs.
    pub extracts: usize,
}

/// Quiescent-consistency checker (see module docs).
pub struct QcChecker {
    seq: Arc<AtomicU64>,
    logs: Mutex<Vec<Vec<Event>>>,
}

impl QcChecker {
    /// An empty checker.
    pub fn new() -> Self {
        Self {
            seq: Arc::new(AtomicU64::new(0)),
            logs: Mutex::new(Vec::new()),
        }
    }

    /// A fresh per-thread log stamped by this checker's global sequence.
    pub fn handle(&self) -> ThreadLog {
        ThreadLog {
            seq: Arc::clone(&self.seq),
            events: Vec::new(),
        }
    }

    /// Merge a finished thread's log back in.
    pub fn absorb(&self, log: ThreadLog) {
        self.logs.lock().unwrap().push(log.events);
    }

    /// Validate all absorbed logs. With `drained` the queue must have
    /// been emptied, so conservation is exact: every inserted token was
    /// extracted. Returns a description of the first violation found.
    ///
    /// Checks, in order: no token inserted twice; every extraction
    /// matches a prior insertion's key; no token extracted twice; each
    /// extraction's stamp follows its insertion's stamp; conservation
    /// when drained.
    pub fn check(&self, drained: bool) -> Result<QcStats, String> {
        let logs = self.logs.lock().unwrap();
        let mut inserted: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut extracted: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let (mut n_ins, mut n_ext) = (0usize, 0usize);
        for events in logs.iter() {
            for e in events {
                if e.insert {
                    n_ins += 1;
                    if let Some((k, s)) = inserted.insert(e.token, (e.key, e.seq)) {
                        return Err(format!(
                            "token {} inserted twice (key {} @seq {}, key {} @seq {})",
                            e.token, k, s, e.key, e.seq
                        ));
                    }
                } else {
                    n_ext += 1;
                    if let Some((k, s)) = extracted.insert(e.token, (e.key, e.seq)) {
                        return Err(format!(
                            "token {} extracted twice (@seq {} and @seq {}, key {})",
                            e.token, s, e.seq, k
                        ));
                    }
                }
            }
        }
        for (token, &(key, eseq)) in &extracted {
            match inserted.get(token) {
                None => {
                    return Err(format!(
                        "extracted token {token} (key {key}) never inserted"
                    ));
                }
                Some(&(ikey, iseq)) => {
                    if ikey != key {
                        return Err(format!(
                            "token {token} inserted with key {ikey} but extracted with key {key}"
                        ));
                    }
                    if eseq <= iseq {
                        return Err(format!(
                            "token {token} extracted (@seq {eseq}) before its insertion (@seq {iseq})"
                        ));
                    }
                }
            }
        }
        if drained {
            for (token, &(key, _)) in &inserted {
                if !extracted.contains_key(token) {
                    return Err(format!(
                        "drained run lost token {token} (key {key}): inserted, never extracted"
                    ));
                }
            }
        }
        Ok(QcStats {
            inserts: n_ins,
            extracts: n_ext,
        })
    }
}

impl Default for QcChecker {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary of a [`RankOracle`] run.
#[derive(Debug, Clone, Copy)]
pub struct RankStats {
    /// Extractions observed.
    pub extracts: u64,
    /// Worst rank error: the most strictly-greater keys present when an
    /// element was handed out. 0 for a strict queue.
    pub max_rank: usize,
    /// Mean rank error across all extractions.
    pub mean_rank: f64,
}

struct Shadow {
    /// key -> multiplicity of elements currently (believed) in the queue.
    multiset: BTreeMap<u64, u64>,
    /// key -> extractions recorded before their matching insertion
    /// record (possible under real concurrency; impossible under det).
    debts: BTreeMap<u64, u64>,
    /// Every per-extraction rank, in record order (for exact quantiles).
    ranks: Vec<u32>,
    extracts: u64,
    rank_total: u64,
    max_rank: usize,
}

/// Shadow-multiset rank-error oracle (see module docs).
pub struct RankOracle {
    inner: Mutex<Shadow>,
}

impl RankOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Shadow {
                multiset: BTreeMap::new(),
                debts: BTreeMap::new(),
                ranks: Vec::new(),
                extracts: 0,
                rank_total: 0,
                max_rank: 0,
            }),
        }
    }

    /// Record an insertion of `key`. Call adjacent to the queue op.
    pub fn note_insert(&self, key: u64) {
        let mut s = self.inner.lock().unwrap();
        // An extraction of this key may have been recorded first by a
        // racing thread; settle that debt instead of growing the shadow.
        if let Some(d) = s.debts.get_mut(&key) {
            *d -= 1;
            if *d == 0 {
                s.debts.remove(&key);
            }
            return;
        }
        *s.multiset.entry(key).or_insert(0) += 1;
    }

    /// Record an extraction of `key`; returns its rank error — how many
    /// strictly greater keys the shadow held at this instant.
    pub fn note_extract(&self, key: u64) -> usize {
        let mut s = self.inner.lock().unwrap();
        let rank: u64 = s
            .multiset
            .range((std::ops::Bound::Excluded(key), std::ops::Bound::Unbounded))
            .map(|(_, &n)| n)
            .sum();
        let rank = rank as usize;
        match s.multiset.get_mut(&key) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                s.multiset.remove(&key);
            }
            None => {
                // Extraction seen before the matching insertion record.
                *s.debts.entry(key).or_insert(0) += 1;
            }
        }
        s.extracts += 1;
        s.rank_total += rank as u64;
        s.max_rank = s.max_rank.max(rank);
        s.ranks.push(rank.min(u32::MAX as usize) as u32);
        rank
    }

    /// Exact quantile over every per-extraction rank recorded so far
    /// (`0.99` for the rank p99), using the same semantics as the live
    /// `obs` histograms: the value at position `ceil(p * n)` (1-based)
    /// of the sorted ranks. `None` before the first extraction.
    ///
    /// This is the ground truth the sampled `obs::RankEstimator`'s
    /// `quality.est_rank` quantiles are validated against.
    pub fn rank_quantile(&self, p: f64) -> Option<usize> {
        let s = self.inner.lock().unwrap();
        if s.ranks.is_empty() {
            return None;
        }
        let mut sorted = s.ranks.clone();
        sorted.sort_unstable();
        let target = ((p * sorted.len() as f64).ceil() as usize)
            .max(1)
            .min(sorted.len());
        Some(sorted[target - 1] as usize)
    }

    /// Elements the shadow still believes are queued.
    pub fn remaining(&self) -> u64 {
        self.inner.lock().unwrap().multiset.values().sum()
    }

    /// Statistics over every [`RankOracle::note_extract`] so far.
    pub fn stats(&self) -> RankStats {
        let s = self.inner.lock().unwrap();
        RankStats {
            extracts: s.extracts,
            max_rank: s.max_rank,
            mean_rank: if s.extracts == 0 {
                0.0
            } else {
                s.rank_total as f64 / s.extracts as f64
            },
        }
    }
}

impl Default for RankOracle {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qc_passes_a_clean_sequential_run() {
        let qc = QcChecker::new();
        let mut log = qc.handle();
        for i in 0..10u64 {
            log.on_insert(i, i);
        }
        for i in (0..10u64).rev() {
            log.on_extract(i, i);
        }
        qc.absorb(log);
        let stats = qc.check(true).unwrap();
        assert_eq!(
            stats,
            QcStats {
                inserts: 10,
                extracts: 10
            }
        );
    }

    #[test]
    fn qc_catches_phantom_extraction() {
        let qc = QcChecker::new();
        let mut log = qc.handle();
        log.on_extract(5, 99);
        qc.absorb(log);
        let err = qc.check(false).unwrap_err();
        assert!(err.contains("never inserted"), "{err}");
    }

    #[test]
    fn qc_catches_duplicate_extraction() {
        let qc = QcChecker::new();
        let mut log = qc.handle();
        log.on_insert(1, 7);
        log.on_extract(1, 7);
        log.on_extract(1, 7);
        qc.absorb(log);
        let err = qc.check(false).unwrap_err();
        assert!(err.contains("extracted twice"), "{err}");
    }

    #[test]
    fn qc_catches_key_mismatch_and_loss() {
        let qc = QcChecker::new();
        let mut log = qc.handle();
        log.on_insert(3, 1);
        log.on_extract(4, 1);
        qc.absorb(log);
        let err = qc.check(false).unwrap_err();
        assert!(err.contains("inserted with key 3"), "{err}");

        let qc = QcChecker::new();
        let mut log = qc.handle();
        log.on_insert(3, 1);
        qc.absorb(log);
        assert!(qc.check(false).is_ok());
        let err = qc.check(true).unwrap_err();
        assert!(err.contains("lost token"), "{err}");
    }

    #[test]
    fn rank_oracle_is_zero_for_strict_order() {
        let ro = RankOracle::new();
        for k in 0..100u64 {
            ro.note_insert(k);
        }
        for k in (0..100u64).rev() {
            assert_eq!(ro.note_extract(k), 0);
        }
        let s = ro.stats();
        assert_eq!(s.max_rank, 0);
        assert_eq!(s.extracts, 100);
        assert_eq!(ro.remaining(), 0);
    }

    #[test]
    fn rank_oracle_counts_strictly_greater_keys() {
        let ro = RankOracle::new();
        for k in [10u64, 20, 30, 30] {
            ro.note_insert(k);
        }
        // Extracting 10 with {20, 30, 30} still queued: rank 3.
        assert_eq!(ro.note_extract(10), 3);
        // Extracting 30 with {20, 30} queued: the other 30 is equal, not
        // greater — rank 0.
        assert_eq!(ro.note_extract(30), 0);
        assert_eq!(ro.note_extract(20), 1);
        assert_eq!(ro.note_extract(30), 0);
        let s = ro.stats();
        assert_eq!(s.max_rank, 3);
        assert!((s.mean_rank - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rank_quantile_matches_sorted_ranks() {
        let ro = RankOracle::new();
        assert_eq!(ro.rank_quantile(0.99), None);
        // Extract ascending keys from a full shadow: element k has
        // 99 - k strictly greater keys queued, so the recorded ranks
        // are 99, 98, ..., 0.
        for k in 0..100u64 {
            ro.note_insert(k);
        }
        for k in 0..100u64 {
            assert_eq!(ro.note_extract(k), (99 - k) as usize);
        }
        assert_eq!(ro.rank_quantile(0.50), Some(49));
        assert_eq!(ro.rank_quantile(0.99), Some(98));
        assert_eq!(ro.rank_quantile(1.0), Some(99));
        assert_eq!(ro.rank_quantile(0.0), Some(0));
    }

    #[test]
    fn rank_oracle_settles_out_of_order_records() {
        let ro = RankOracle::new();
        // Extraction recorded before its insertion (racy instrumentation
        // order): the debt must cancel, leaving the shadow empty.
        ro.note_extract(42);
        ro.note_insert(42);
        assert_eq!(ro.remaining(), 0);
        ro.note_insert(7);
        assert_eq!(ro.note_extract(7), 0);
    }
}
