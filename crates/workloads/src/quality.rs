//! Estimator-vs-oracle validation harness.
//!
//! The `obs::RankEstimator` inside a ZMSQ reports *estimated* rank
//! errors from a sampled shadow reservoir; the [`RankOracle`] computes
//! *exact* rank errors from a full shadow multiset. This module drives
//! both from the same seeded, single-threaded workload so tests can
//! bound how far the cheap estimate drifts from the ground truth.
//!
//! Determinism: the workload keys come from a seeded [`DetRng`], the
//! estimator's sampling decision is a pure hash of the key, its
//! reservoir cursor advances deterministically, and a single thread
//! removes all scheduling nondeterminism — a given `(config, seed)`
//! pair always produces the same [`QualityReport`], so tests can assert
//! tight windows without flaking.

use fault::DetRng;
use pq_traits::ConcurrentPriorityQueue;
use zmsq::{ShardedConfig, ShardedZmsq, Zmsq, ZmsqConfig};

use crate::oracle::RankOracle;

/// What one [`estimator_vs_oracle`] run measured.
#[derive(Debug, Clone, Copy)]
pub struct QualityReport {
    /// Successful extractions performed.
    pub extracts: u64,
    /// Exact rank p99 across all extractions (the oracle's truth).
    pub oracle_p99: usize,
    /// The estimator's rank p99 over its sampled extractions, `None`
    /// when nothing was sampled (e.g. tiny run at a coarse shift).
    pub estimator_p99: Option<u64>,
    /// How many extractions the estimator sampled.
    pub sampled_extracts: u64,
}

/// Drive `rounds` bursts of `burst` inserts then `burst` extractions
/// (after `prefill` seeded insertions) against a fresh `Zmsq<u64>`
/// built from `cfg`, mirroring every operation into a [`RankOracle`].
/// Keys are uniform over `key_bits` bits.
///
/// `cfg` must carry a rank estimator
/// ([`ZmsqConfig::rank_estimator`] — on by default); panics otherwise,
/// since a report without an estimate is meaningless.
pub fn estimator_vs_oracle(
    cfg: ZmsqConfig,
    seed: u64,
    prefill: u64,
    rounds: u64,
    burst: u64,
    key_bits: u32,
) -> QualityReport {
    let q: Zmsq<u64> = Zmsq::with_config(cfg);
    assert!(
        q.rank_estimator().is_some(),
        "estimator_vs_oracle needs cfg.rank_estimator set"
    );
    let oracle = RankOracle::new();
    let mut rng = DetRng::seed_from_u64(seed);
    let mask = (1u64 << key_bits.min(63)) - 1;

    for _ in 0..prefill {
        let k = rng.next_u64() & mask;
        oracle.note_insert(k);
        q.insert(k, k);
    }
    let mut extracts = 0u64;
    for _ in 0..rounds {
        for _ in 0..burst {
            let k = rng.next_u64() & mask;
            oracle.note_insert(k);
            q.insert(k, k);
        }
        for _ in 0..burst {
            if let Some((k, _)) = q.extract_max() {
                oracle.note_extract(k);
                extracts += 1;
            }
        }
    }

    let est = q.rank_estimator().expect("checked above");
    let sampled_extracts = est.counters().3;
    QualityReport {
        extracts,
        oracle_p99: oracle.rank_quantile(0.99).unwrap_or(0),
        estimator_p99: (sampled_extracts > 0).then(|| est.rank_quantile(0.99)),
        sampled_extracts,
    }
}

/// Tuned-sharded variant of [`estimator_vs_oracle`]: drives a
/// [`ShardedZmsq`] built with `tuning` (stickiness + operation
/// buffers) through the same seeded burst workload, mirroring every
/// operation into a [`RankOracle`], and reads the estimate from the
/// merged per-shard `quality.est_rank` histogram.
///
/// The returned `estimator_p99` is a *per-shard* estimate taken where
/// elements cross the shard's publication boundary; the oracle
/// measures the *global* hand-out rank. With elements spread roughly
/// evenly across shards, the global rank of a shard-rank-`r` element
/// is ≈ `r × shards`, so callers comparing the two must scale the
/// estimate by `shards` first (the shootout's oracle cross-check does
/// the same — see DESIGN.md, "Stickiness & operation buffers").
/// `sampled_extracts` reports the merged histogram's sample count.
#[allow(clippy::too_many_arguments)] // mirrors estimator_vs_oracle + the sharded knobs
pub fn tuned_estimator_vs_oracle(
    shards: usize,
    cfg: ZmsqConfig,
    tuning: ShardedConfig,
    seed: u64,
    prefill: u64,
    rounds: u64,
    burst: u64,
    key_bits: u32,
) -> QualityReport {
    let q: ShardedZmsq<u64> = ShardedZmsq::with_tuning(shards, cfg, tuning);
    let oracle = RankOracle::new();
    let mut rng = DetRng::seed_from_u64(seed);
    let mask = (1u64 << key_bits.min(63)) - 1;

    for _ in 0..prefill {
        let k = rng.next_u64() & mask;
        oracle.note_insert(k);
        q.insert(k, k);
    }
    let mut extracts = 0u64;
    for _ in 0..rounds {
        for _ in 0..burst {
            let k = rng.next_u64() & mask;
            oracle.note_insert(k);
            q.insert(k, k);
        }
        for _ in 0..burst {
            if let Some((k, _)) = q.extract_max() {
                oracle.note_extract(k);
                extracts += 1;
            }
        }
    }

    let hist = q.metrics().and_then(|m| {
        m.hist("quality.est_rank")
            .filter(|h| h.count > 0)
            .map(|h| (h.count, h.quantile(0.99)))
    });
    QualityReport {
        extracts,
        oracle_p99: oracle.rank_quantile(0.99).unwrap_or(0),
        estimator_p99: hist.map(|(_, p99)| p99),
        sampled_extracts: hist.map_or(0, |(count, _)| count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shift 0 samples every key, so inside an un-overflowed reservoir
    /// the "estimate" is an exact count of strictly greater live keys —
    /// it must agree with the oracle's p99 exactly.
    #[test]
    fn shift_zero_matches_oracle_exactly() {
        // Live population stays ≤ prefill + burst = 320, well under the
        // estimator's 512-slot reservoir: nothing is ever dropped.
        let cfg = ZmsqConfig::default().batch(16).rank_estimator(0);
        let r = estimator_vs_oracle(cfg, 0xC0FFEE, 256, 40, 64, 16);
        assert_eq!(r.sampled_extracts, r.extracts, "shift 0 samples all");
        // The estimator reports quantiles through a log-linear
        // histogram, so its p99 is the *bucket floor* of the exact p99
        // (quantiles commute with the monotone bucket mapping). Push
        // the oracle's exact value through the same bucketing.
        let quantized = obs::Histogram::new();
        quantized.record(r.oracle_p99 as u64);
        assert_eq!(
            r.estimator_p99,
            Some(quantized.quantile(1.0)),
            "exact sampling must reproduce the oracle up to bucketing: {r:?}"
        );
    }

    /// The ISSUE's acceptance bound: at the default 1/64 sampling the
    /// estimated rank p99 stays within 2x of the exact oracle p99 (one
    /// 64-wide sampling quantum of slack on each side). Deterministic
    /// for a fixed seed — see the module docs.
    #[test]
    fn default_shift_within_2x_of_oracle() {
        // batch 64 against bursty interleaving keeps the true rank p99
        // comfortably above the 64-wide sampling quantum, so the 2x
        // window is a real statement and not `0 <= 0`.
        let cfg = ZmsqConfig::default().batch(64).rank_estimator(6);
        let r = estimator_vs_oracle(cfg, 0x5EED, 20_000, 400, 256, 20);
        assert!(
            r.sampled_extracts >= 500,
            "too few samples to quote a p99: {r:?}"
        );
        assert!(r.oracle_p99 >= 64, "workload too strict to test: {r:?}");
        let est = r.estimator_p99.expect("sampled_extracts > 0") as f64;
        let exact = r.oracle_p99 as f64;
        assert!(
            est <= exact * 2.0 + 64.0 && est >= exact / 2.0 - 64.0,
            "estimated p99 {est} outside the 2x window of exact {exact}: {r:?}"
        );
    }

    /// The tuned fast path must not blind the telemetry: with
    /// stickiness and operation buffers on, the shard-scaled
    /// `quality.est_rank` p99 stays within the same 2x window of the
    /// exact oracle p99. The configuration mirrors the shootout's
    /// oracle cross-check (2 shards, stickiness 8, 16-deep buffers);
    /// sticky insert runs inflate the true rank error, and the
    /// per-shard estimator — sampling at the publication boundary,
    /// after buffered elements flush — must track that inflation
    /// rather than report the untuned baseline's figure.
    #[test]
    fn tuned_sharded_shift_within_2x_of_oracle() {
        let shards = 2;
        let cfg = ZmsqConfig::default().batch(64).rank_estimator(6);
        let tuning = ShardedConfig::new()
            .stickiness(8)
            .insert_buffer(16)
            .delete_buffer(16);
        let r = tuned_estimator_vs_oracle(shards, cfg, tuning, 0x5EED, 20_000, 400, 256, 20);
        assert!(
            r.sampled_extracts >= 500,
            "too few samples to quote a p99: {r:?}"
        );
        assert!(r.oracle_p99 >= 64, "workload too strict to test: {r:?}");
        // Per-shard estimate × shard count ≈ global rank (see
        // `tuned_estimator_vs_oracle`'s docs).
        let est = (r.estimator_p99.expect("sampled_extracts > 0") * shards as u64) as f64;
        let exact = r.oracle_p99 as f64;
        assert!(
            est <= exact * 2.0 + 64.0 && est >= exact / 2.0 - 64.0,
            "shard-scaled estimated p99 {est} outside the 2x window of exact {exact}: {r:?}"
        );
    }
}
