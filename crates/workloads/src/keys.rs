//! Key distributions used across the evaluation.
//!
//! §4.1 draws insert keys from a normal distribution; §4.5.1 uses 20-bit
//! (and 7-bit) uniform keys; Table 1 needs N *distinct* random keys.

use fault::DetRng;

/// A seeded stream of priorities.
#[derive(Clone)]
pub enum KeyDist {
    /// Uniform over `[0, 2^bits)`.
    UniformBits {
        /// Number of key bits (7 and 20 in the paper).
        bits: u32,
    },
    /// Normal distribution (the §4.1 lock experiments), truncated to
    /// non-negative and rounded.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Monotonically decreasing keys — the mound's published worst-case
    /// input pattern (§3.7: "inserts ordered decreasing by value lead to
    /// sets of size 1").
    Decreasing {
        /// First (largest) key.
        start: u64,
    },
    /// Monotonically increasing keys.
    Increasing,
}

/// A stateful generator of keys from a [`KeyDist`].
pub struct KeyStream {
    dist: KeyDist,
    rng: DetRng,
    counter: u64,
}

impl KeyStream {
    /// Create a stream; distinct seeds give independent streams.
    pub fn new(dist: KeyDist, seed: u64) -> Self {
        Self {
            dist,
            rng: DetRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Next key.
    pub fn next_key(&mut self) -> u64 {
        self.counter += 1;
        match &self.dist {
            KeyDist::UniformBits { bits } => {
                let mask = if *bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                self.rng.random::<u64>() & mask
            }
            KeyDist::Normal { mean, std_dev } => {
                // Box–Muller.
                let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = self.rng.random::<f64>();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + std_dev * z).max(0.0).round() as u64
            }
            KeyDist::Decreasing { start } => start.saturating_sub(self.counter),
            KeyDist::Increasing => self.counter,
        }
    }
}

/// `n` *distinct* uniformly random keys (Table 1 initializes queues
/// "with 1K and 64K randomly generated keys without duplicates").
pub fn distinct_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut set = std::collections::HashSet::with_capacity(n * 2);
    let mut keys = Vec::with_capacity(n);
    while keys.len() < n {
        let k: u64 = rng.random::<u64>();
        if set.insert(k) {
            keys.push(k);
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bit_width() {
        let mut s = KeyStream::new(KeyDist::UniformBits { bits: 7 }, 1);
        for _ in 0..1000 {
            assert!(s.next_key() < 128);
        }
        let mut s = KeyStream::new(KeyDist::UniformBits { bits: 20 }, 1);
        let mut any_large = false;
        for _ in 0..1000 {
            let k = s.next_key();
            assert!(k < (1 << 20));
            any_large |= k > (1 << 19);
        }
        assert!(any_large);
    }

    #[test]
    fn normal_centers_on_mean() {
        let mut s = KeyStream::new(
            KeyDist::Normal {
                mean: 1000.0,
                std_dev: 50.0,
            },
            2,
        );
        let n = 10_000;
        let sum: u64 = (0..n).map(|_| s.next_key()).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 10.0, "sample mean {mean}");
    }

    #[test]
    fn decreasing_monotone() {
        let mut s = KeyStream::new(KeyDist::Decreasing { start: 1000 }, 0);
        let a = s.next_key();
        let b = s.next_key();
        let c = s.next_key();
        assert!(a > b && b > c);
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = KeyStream::new(KeyDist::UniformBits { bits: 20 }, 9);
        let mut b = KeyStream::new(KeyDist::UniformBits { bits: 20 }, 9);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn distinct_keys_are_distinct() {
        let keys = distinct_keys(10_000, 3);
        let set: std::collections::HashSet<u64> = keys.iter().copied().collect();
        assert_eq!(set.len(), 10_000);
        // Deterministic.
        assert_eq!(keys, distinct_keys(10_000, 3));
    }
}
