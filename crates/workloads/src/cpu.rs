//! Process CPU-time measurement (Fig. 4b).
//!
//! The paper "used the `time` command in Linux to calculate the CPU
//! execution time for 1M handoffs" — the point being that blocked
//! consumers burn no cycles while spinning ones do. We sample the
//! process's `utime + stime` from `/proc/self/stat` around the measured
//! phase, which is the same quantity `time` reports.

use std::time::Duration;

/// Total CPU time (user + system) consumed by this process so far.
pub fn process_cpu_time() -> Duration {
    imp::process_cpu_time()
}

/// Measure the CPU time consumed while running `f`.
pub fn measure_cpu<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let before = process_cpu_time();
    let out = f();
    let after = process_cpu_time();
    (out, after.saturating_sub(before))
}

#[cfg(all(target_os = "linux", not(miri)))]
mod imp {
    use std::time::Duration;

    /// Kernel `USER_HZ`: the unit of the `utime`/`stime` fields. Fixed
    /// at 100 on every Linux ABI regardless of the scheduler tick.
    const USER_HZ: u64 = 100;

    pub fn process_cpu_time() -> Duration {
        parse_stat(&std::fs::read_to_string("/proc/self/stat").unwrap_or_default())
            .unwrap_or(Duration::ZERO)
    }

    /// Extract `utime + stime` (fields 14 and 15) from a
    /// `/proc/<pid>/stat` line. The comm field (2) may contain spaces
    /// and parentheses, so fields are counted from the *last* `)`.
    fn parse_stat(stat: &str) -> Option<Duration> {
        let rest = &stat[stat.rfind(')')? + 1..];
        let mut fields = rest.split_ascii_whitespace();
        // `rest` starts at field 3 (state); utime/stime are fields 14/15.
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        let ticks = utime + stime;
        Some(Duration::from_nanos(ticks * (1_000_000_000 / USER_HZ)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_stat_with_hostile_comm() {
            // comm contains spaces and a ')': fields must be counted
            // from the last close-paren.
            let line = "1234 (a b) c) R 1 1 1 0 -1 4194560 100 0 0 0 \
                        250 50 0 0 20 0 1 0 100 1000000 100";
            let d = parse_stat(line).unwrap();
            // (250 + 50) ticks at 100 Hz = 3 s.
            assert_eq!(d, Duration::from_secs(3));
        }

        #[test]
        fn own_stat_parses() {
            assert!(parse_stat(&std::fs::read_to_string("/proc/self/stat").unwrap()).is_some());
        }
    }
}

#[cfg(not(all(target_os = "linux", not(miri))))]
mod imp {
    use std::time::{Duration, Instant};

    // Fallback: wall-clock based (coarse), keeps the harness portable
    // (and spares Miri the `/proc` filesystem read).
    pub fn process_cpu_time() -> Duration {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotone() {
        let a = process_cpu_time();
        // Burn some CPU deterministically.
        let mut x = 1u64;
        for i in 1..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = process_cpu_time();
        assert!(b >= a);
    }

    #[test]
    fn measure_cpu_attributes_work() {
        let ((), spent) = measure_cpu(|| {
            let mut x = 0u64;
            for i in 0..5_000_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        // Some CPU must have been charged (granularity can be coarse, so
        // just require non-regression).
        assert!(spent >= Duration::ZERO);
    }
}
