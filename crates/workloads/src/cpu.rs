//! Process CPU-time measurement (Fig. 4b).
//!
//! The paper "used the `time` command in Linux to calculate the CPU
//! execution time for 1M handoffs" — the point being that blocked
//! consumers burn no cycles while spinning ones do. We sample
//! `getrusage(RUSAGE_SELF)` (user + system) around the measured phase,
//! which is the same quantity `time` reports.

use std::time::Duration;

/// Total CPU time (user + system) consumed by this process so far.
pub fn process_cpu_time() -> Duration {
    imp::process_cpu_time()
}

/// Measure the CPU time consumed while running `f`.
pub fn measure_cpu<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let before = process_cpu_time();
    let out = f();
    let after = process_cpu_time();
    (out, after.saturating_sub(before))
}

#[cfg(target_os = "linux")]
mod imp {
    use std::time::Duration;

    pub fn process_cpu_time() -> Duration {
        // SAFETY: getrusage only writes into the zeroed struct we pass.
        let mut usage: libc::rusage = unsafe { std::mem::zeroed() };
        let rc = unsafe { libc::getrusage(libc::RUSAGE_SELF, &mut usage) };
        if rc != 0 {
            return Duration::ZERO;
        }
        let tv = |t: libc::timeval| {
            Duration::new(t.tv_sec as u64, (t.tv_usec as u32) * 1000)
        };
        tv(usage.ru_utime) + tv(usage.ru_stime)
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::time::{Duration, Instant};

    // Fallback: wall-clock based (coarse), keeps the harness portable.
    pub fn process_cpu_time() -> Duration {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotone() {
        let a = process_cpu_time();
        // Burn some CPU deterministically.
        let mut x = 1u64;
        for i in 1..2_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = process_cpu_time();
        assert!(b >= a);
    }

    #[test]
    fn measure_cpu_attributes_work() {
        let ((), spent) = measure_cpu(|| {
            let mut x = 0u64;
            for i in 0..5_000_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        // Some CPU must have been charged (granularity can be coarse, so
        // just require non-regression).
        assert!(spent >= Duration::ZERO);
    }
}
