//! Small, fast, seeded PRNG used across the workspace wherever
//! deterministic randomness is needed (fault schedules, graph generators,
//! workload key streams, property-test drivers).
//!
//! xoshiro256** seeded through SplitMix64 — the standard pairing: the
//! SplitMix stage decorrelates adjacent integer seeds, so `seed` and
//! `seed + 1` give independent streams. Not cryptographic; statistical
//! quality is far beyond what any test or benchmark here can detect.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — also usable standalone for cheap seed derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Construct from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly random value of a supported primitive type.
    #[inline]
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, like `rand`.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Uniform in `[0, bound)` by widening multiply (bias < 2⁻⁶⁴·bound —
    /// unobservable at our scales).
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types [`DetRng::random`] can produce.
pub trait Sample: Sized {
    /// Draw one uniformly random value.
    fn sample(rng: &mut DetRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64()
    }
}
impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Sample for usize {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() as usize
    }
}
impl Sample for bool {
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample(rng: &mut DetRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`DetRng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Out;
    /// Draw one uniformly random element.
    fn sample(self, rng: &mut DetRng) -> Self::Out;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Out = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Out = $t;
            #[inline]
            fn sample(self, rng: &mut DetRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u32, u64, usize);

impl SampleRange for Range<f64> {
    type Out = f64;
    #[inline]
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let z = r.random_range(0usize..3);
            assert!(z < 3);
            let f = r.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = DetRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut r = DetRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% expected, got {hits}");
    }
}
