//! The failpoint registry — compiled only with `--features fault-inject`.
//!
//! A failpoint is a *named* program location (e.g. `pool.refill-delay`)
//! that tests arm with a [`Policy`]: a [`Trigger`] deciding *when* it
//! fires and an [`Action`] deciding *what* happens. Determinism comes
//! from a global seed ([`set_seed`]) expanded into per-thread xoshiro
//! streams: the same (seed, thread-spawn order, policy) always produces
//! the same fault schedule on a given interleaving, and probabilistic
//! triggers never share RNG state across threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::rng::DetRng;

/// When an armed failpoint fires.
#[derive(Clone, Copy, Debug)]
pub enum Trigger {
    /// Every evaluation.
    Always,
    /// Each evaluation independently with this probability (per-thread
    /// deterministic streams).
    Prob(f64),
    /// Every `n`-th evaluation, counted globally across threads.
    EveryNth(u64),
    /// Exactly the first evaluation, globally.
    Once,
}

/// What a firing failpoint does, beyond returning `true` to the macro.
#[derive(Clone, Debug)]
pub enum Action {
    /// Nothing — the `fail_point!` body (if any) is the whole effect.
    Nothing,
    /// `std::thread::yield_now()` — surrenders the timeslice so another
    /// thread can race into the window.
    Yield,
    /// Bounded sleep — holds the window open long enough for slower
    /// threads to march through it.
    SleepMs(u64),
    /// Panic with this message — drives the unwind-safety paths.
    Panic(&'static str),
}

/// A complete failpoint arming: when × what.
#[derive(Clone, Debug)]
pub struct Policy {
    /// Firing schedule.
    pub trigger: Trigger,
    /// Effect on fire.
    pub action: Action,
}

impl Policy {
    /// Policy with the given trigger and no built-in action.
    pub fn new(trigger: Trigger) -> Self {
        Self {
            trigger,
            action: Action::Nothing,
        }
    }

    /// Attach an action.
    pub fn with_action(mut self, action: Action) -> Self {
        self.action = action;
        self
    }
}

struct Point {
    policy: Policy,
    hits: AtomicU64,
    fired_once: AtomicBool,
}

struct Registry {
    points: Mutex<HashMap<&'static str, Arc<Point>>>,
    /// Fast-path gate: evaluations short-circuit without locking while no
    /// point is armed.
    armed: AtomicBool,
    seed: AtomicU64,
    /// Bumped by [`reset`]/[`set_seed`] so per-thread RNGs re-derive.
    generation: AtomicU64,
    /// Serializes tests that arm global failpoints.
    test_mutex: Mutex<()>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        points: Mutex::new(HashMap::new()),
        armed: AtomicBool::new(false),
        seed: AtomicU64::new(0),
        generation: AtomicU64::new(0),
        test_mutex: Mutex::new(()),
    })
}

/// Set the global fault seed (also clears all armed points, so a test
/// always starts from `set_seed` + `configure` calls).
pub fn set_seed(seed: u64) {
    let r = registry();
    let mut map = r.points.lock().unwrap();
    map.clear();
    r.armed.store(false, Ordering::SeqCst);
    r.seed.store(seed, Ordering::SeqCst);
    r.generation.fetch_add(1, Ordering::SeqCst);
}

/// Arm (or re-arm) the named failpoint.
pub fn configure(name: &'static str, policy: Policy) {
    let r = registry();
    let mut map = r.points.lock().unwrap();
    map.insert(
        name,
        Arc::new(Point {
            policy,
            hits: AtomicU64::new(0),
            fired_once: AtomicBool::new(false),
        }),
    );
    r.armed.store(true, Ordering::SeqCst);
}

/// Disarm one failpoint.
pub fn remove(name: &str) {
    let r = registry();
    let mut map = r.points.lock().unwrap();
    map.remove(name);
    if map.is_empty() {
        r.armed.store(false, Ordering::SeqCst);
    }
}

/// Disarm everything.
pub fn reset() {
    let r = registry();
    r.points.lock().unwrap().clear();
    r.armed.store(false, Ordering::SeqCst);
    r.generation.fetch_add(1, Ordering::SeqCst);
}

/// Serialize tests that arm failpoints: the registry is process-global,
/// so concurrent `#[test]`s would trample each other's policies. Hold
/// the returned guard for the duration of the test.
pub fn exclusive() -> MutexGuard<'static, ()> {
    registry()
        .test_mutex
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

/// Evaluate the named failpoint: `true` if it fired (after performing
/// its action). This is what `fail_point!` expands to.
pub fn fire(name: &'static str) -> bool {
    let r = registry();
    if !r.armed.load(Ordering::Relaxed) {
        return false;
    }
    let point = {
        let map = r.points.lock().unwrap();
        match map.get(name) {
            Some(p) => Arc::clone(p),
            None => return false,
        }
    };
    let hit = point.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let fired = match point.policy.trigger {
        Trigger::Always => true,
        Trigger::Prob(p) => with_thread_rng(|rng| rng.random_bool(p)),
        Trigger::EveryNth(n) => n > 0 && hit % n == 0,
        Trigger::Once => !point.fired_once.swap(true, Ordering::Relaxed),
    };
    if fired {
        match point.policy.action {
            Action::Nothing => {}
            Action::Yield => std::thread::yield_now(),
            Action::SleepMs(ms) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            Action::Panic(msg) => panic!("failpoint {name}: {msg}"),
        }
    }
    fired
}

/// Per-thread deterministic RNG: derived from (global seed, thread
/// index in first-use order), re-derived whenever the seed changes.
fn with_thread_rng<R>(f: impl FnOnce(&mut DetRng) -> R) -> R {
    use std::cell::RefCell;
    static THREAD_COUNTER: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static STATE: RefCell<Option<(u64, u64, DetRng)>> = const { RefCell::new(None) };
    }
    let r = registry();
    let generation = r.generation.load(Ordering::SeqCst);
    STATE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let needs_init = match &*slot {
            Some((gen_seen, _, _)) => *gen_seen != generation,
            None => true,
        };
        if needs_init {
            let index = match &*slot {
                Some((_, idx, _)) => *idx,
                None => THREAD_COUNTER.fetch_add(1, Ordering::SeqCst),
            };
            let seed = r.seed.load(Ordering::SeqCst);
            let mut mix = seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
            let rng = DetRng::seed_from_u64(crate::rng::splitmix64(&mut mix));
            *slot = Some((generation, index, rng));
        }
        let (_, _, rng) = slot.as_mut().unwrap();
        f(rng)
    })
}

/// Number of times the named point has been *evaluated* (not fired)
/// since it was armed. Useful for asserting a failpoint is actually on
/// the exercised path.
pub fn hit_count(name: &str) -> u64 {
    let r = registry();
    let map = r.points.lock().unwrap();
    map.get(name).map_or(0, |p| p.hits.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        let _g = exclusive();
        reset();
        assert!(!fire("registry-test.nope"));
    }

    #[test]
    fn always_and_once_triggers() {
        let _g = exclusive();
        set_seed(1);
        configure("registry-test.always", Policy::new(Trigger::Always));
        configure("registry-test.once", Policy::new(Trigger::Once));
        for _ in 0..3 {
            assert!(fire("registry-test.always"));
        }
        assert!(fire("registry-test.once"));
        assert!(!fire("registry-test.once"));
        assert_eq!(hit_count("registry-test.always"), 3);
        reset();
    }

    #[test]
    fn every_nth_counts_globally() {
        let _g = exclusive();
        set_seed(1);
        configure("registry-test.nth", Policy::new(Trigger::EveryNth(3)));
        let fires: Vec<bool> = (0..6).map(|_| fire("registry-test.nth")).collect();
        assert_eq!(fires, [false, false, true, false, false, true]);
        reset();
    }

    #[test]
    fn prob_is_seed_deterministic() {
        let _g = exclusive();
        let run = |seed| {
            set_seed(seed);
            configure("registry-test.prob", Policy::new(Trigger::Prob(0.5)));
            let v: Vec<bool> = (0..64).map(|_| fire("registry-test.prob")).collect();
            reset();
            v
        };
        // Same seed twice on the same thread: identical schedule.
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn panic_action_panics_with_point_name() {
        let _g = exclusive();
        set_seed(1);
        configure(
            "registry-test.boom",
            Policy::new(Trigger::Always).with_action(Action::Panic("injected")),
        );
        let err = std::panic::catch_unwind(|| fire("registry-test.boom")).expect_err("must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("registry-test.boom"), "got: {msg}");
        reset();
    }
}
