//! Deterministic fault injection ("chaos substrate") for the ZMSQ
//! reproduction, plus the workspace's seeded PRNG.
//!
//! # Failpoints
//!
//! Concurrency code threads **named failpoints** through its race
//! windows with [`fail_point!`]:
//!
//! ```
//! fn try_acquire(flag: &std::sync::atomic::AtomicBool) -> bool {
//!     // Chaos builds can force the spurious-failure path:
//!     fault::fail_point!("example.spurious-fail", return false);
//!     !flag.swap(true, std::sync::atomic::Ordering::Acquire)
//! }
//! # assert!(try_acquire(&std::sync::atomic::AtomicBool::new(false)));
//! ```
//!
//! Without `--features fault-inject` the macro expands to **nothing**:
//! no branch, no atomic load, no registry — production builds carry
//! zero overhead and the chaos schedule cannot perturb benchmarks.
//!
//! With the feature, tests arm points by name:
//!
//! ```ignore
//! let _x = fault::exclusive();            // serialize vs other chaos tests
//! fault::set_seed(42);                    // deterministic schedules
//! fault::configure("pool.refill-delay",
//!     fault::Policy::new(fault::Trigger::Prob(0.2))
//!         .with_action(fault::Action::SleepMs(1)));
//! // ... run the workload ...
//! fault::reset();
//! ```
//!
//! The two macro forms:
//!
//! * `fail_point!("name")` — the effect is the armed `Action` alone
//!   (yield / sleep / panic at this program point).
//! * `fail_point!("name", expr)` — when the point fires, additionally
//!   evaluate `expr` in the caller's scope; `expr` may `return`,
//!   `continue` or `break` to force the surrounding control flow down
//!   the rare path (spurious failure, forced retry, simulated EINTR).
//!
//! # Determinism model
//!
//! One global seed (`set_seed`) is expanded into independent
//! per-thread xoshiro streams keyed by thread first-use order. Given
//! the same seed, policies, and thread schedule, every probabilistic
//! trigger fires identically run over run; `EveryNth`/`Once` triggers
//! are schedule-independent (global counters). Tests that want exact
//! replay therefore pin thread counts and use `EveryNth`/`Once`, or
//! accept per-thread (not cross-thread) determinism with `Prob`.

#![warn(missing_docs)]

pub mod rng;

pub use rng::{DetRng, Sample, SampleRange};

#[cfg(feature = "fault-inject")]
mod registry;

#[cfg(feature = "fault-inject")]
pub use registry::{
    configure, exclusive, fire, hit_count, remove, reset, set_seed, Action, Policy, Trigger,
};

/// Evaluate a named failpoint. See the crate docs for the two forms.
///
/// Compiles to nothing without the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        let _ = $crate::fire($name);
    };
    ($name:expr, $body:expr) => {
        if $crate::fire($name) {
            $body
        }
    };
}

/// Evaluate a named failpoint. See the crate docs for the two forms.
///
/// Compiles to nothing without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
    ($name:expr, $body:expr) => {};
}

#[cfg(test)]
mod tests {
    // The macro must be usable in both expression-statement positions.
    fn body_form_controls_flow(spurious: bool) -> u32 {
        if spurious {
            // Disabled builds: the macro vanishes and this is dead code
            // driven by the plain bool instead.
            #[cfg(feature = "fault-inject")]
            {
                crate::fail_point!("fault-test.flow", return 1);
            }
            #[cfg(not(feature = "fault-inject"))]
            {
                return 2;
            }
        }
        crate::fail_point!("fault-test.noop");
        0
    }

    #[test]
    fn macro_compiles_in_both_modes() {
        #[cfg(feature = "fault-inject")]
        {
            let _x = crate::exclusive();
            crate::set_seed(5);
            crate::configure(
                "fault-test.flow",
                crate::Policy::new(crate::Trigger::Always),
            );
            assert_eq!(body_form_controls_flow(true), 1);
            crate::reset();
            assert_eq!(body_form_controls_flow(true), 0);
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            assert_eq!(body_form_controls_flow(true), 2);
        }
        assert_eq!(body_form_controls_flow(false), 0);
    }
}
