//! Demonstrates the failpoint lifecycle end to end: arm a point,
//! run a workload, observe the (seed-deterministic) fire schedule.
//!
//! ```text
//! cargo run -p fault --example demo --features fault-inject
//! cargo run -p fault --example demo            # feature off: no-op
//! ```

/// A "lock attempt" whose spurious-failure path is driven by a failpoint.
fn try_step() -> bool {
    fault::fail_point!("demo.spurious-fail", return false);
    true
}

fn schedule(seed: u64) -> Vec<bool> {
    #[cfg(feature = "fault-inject")]
    {
        fault::set_seed(seed);
        fault::configure(
            "demo.spurious-fail",
            fault::Policy::new(fault::Trigger::Prob(0.3)),
        );
    }
    let out: Vec<bool> = (0..20).map(|_| try_step()).collect();
    #[cfg(feature = "fault-inject")]
    fault::reset();
    let _ = seed;
    out
}

fn main() {
    #[cfg(feature = "fault-inject")]
    let _guard = fault::exclusive();

    let a = schedule(7);
    let b = schedule(7);
    let c = schedule(8);
    let render = |s: &[bool]| {
        s.iter()
            .map(|&ok| if ok { '.' } else { 'X' })
            .collect::<String>()
    };
    println!("seed 7, run 1: {}", render(&a));
    println!("seed 7, run 2: {}", render(&b));
    println!("seed 8:        {}", render(&c));
    assert_eq!(a, b, "same seed must replay the same schedule");
    if cfg!(feature = "fault-inject") {
        assert!(a.contains(&false), "Prob(0.3) over 20 trials should fire");
        println!("fault-inject ON: schedules deterministic per seed");
    } else {
        assert!(a.iter().all(|&ok| ok), "feature off: failpoints are no-ops");
        println!("fault-inject OFF: failpoints compiled to nothing");
    }
}
