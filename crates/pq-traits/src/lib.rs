//! Common trait for every concurrent priority queue in this workspace.
//!
//! The paper compares ZMSQ against the Mound, the SprayList, MultiQueue,
//! k-LSM and strict queues. All of them implement
//! [`ConcurrentPriorityQueue`] so the workload drivers and benchmark
//! harnesses in `workloads` and `bench` are generic over the queue.
//!
//! Priorities are `u64` and **higher values win**: `extract_max` on a strict
//! queue returns the element with the numerically largest priority. Relaxed
//! queues may return an element that is merely *close* to the maximum; see
//! [`ConcurrentPriorityQueue::is_relaxed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A thread-safe max-priority queue storing `(priority, value)` pairs.
///
/// Duplicate priorities are allowed. All methods take `&self`; queues are
/// shared across threads by reference (e.g. inside an `Arc` or a scoped
/// thread borrow).
pub trait ConcurrentPriorityQueue<V = u64>: Send + Sync {
    /// Insert `value` with priority `prio`.
    fn insert(&self, prio: u64, value: V);

    /// Attempt to extract a high-priority element.
    ///
    /// Returns `None` only if the queue was observed empty. For ZMSQ this
    /// observation is exact (extraction from a nonempty queue never fails);
    /// for the SprayList and k-LSM a `None` may be spurious — the paper
    /// discusses exactly this deficiency (§3.7), and the producer/consumer
    /// drivers measure its cost.
    fn extract_max(&self) -> Option<(u64, V)>;

    /// Short human-readable name used in benchmark output rows.
    fn name(&self) -> String;

    /// Whether `extract_max` may return a non-maximal element.
    fn is_relaxed(&self) -> bool {
        true
    }

    /// Best-effort current size. Used only for reporting, never correctness.
    fn len_hint(&self) -> usize {
        0
    }

    /// Bulk insertion: drain every `(priority, value)` pair out of
    /// `items` into the queue.
    ///
    /// The default implementation loops [`insert`](Self::insert); queues
    /// with a cheaper bulk path (e.g. ZMSQ's sorted-chunk insertion, or a
    /// sharded queue scattering across shards) override it. On return
    /// `items` is empty regardless of implementation.
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        for (prio, value) in items.drain(..) {
            self.insert(prio, value);
        }
    }

    /// Bulk extraction: append up to `n` high-priority elements to `out`,
    /// returning how many were actually extracted.
    ///
    /// Stops early only when the queue is observed empty (the same
    /// guarantee as [`extract_max`](Self::extract_max) — so a short count
    /// means fewer than `n` elements were available, not contention).
    /// Elements are appended in hand-out order, which for relaxed queues
    /// is only approximately descending. The default implementation loops
    /// `extract_max`; queues with a cheaper claim path override it.
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        let mut got = 0;
        while got < n {
            match self.extract_max() {
                Some(item) => {
                    out.push(item);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Export the queue's internal metrics as an [`obs::Snapshot`], if the
    /// implementation collects any. Harnesses merge this into their
    /// `*.metrics.json` output; `None` (the default) simply omits the
    /// section. Snapshots are best-effort under concurrency, like
    /// [`len_hint`](Self::len_hint).
    fn metrics(&self) -> Option<obs::Snapshot> {
        None
    }
}

/// Blanket impl so `&Q`, `Box<Q>` and `Arc<Q>` work wherever a queue does.
impl<V, Q: ConcurrentPriorityQueue<V> + ?Sized> ConcurrentPriorityQueue<V> for &Q {
    fn insert(&self, prio: u64, value: V) {
        (**self).insert(prio, value)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        (**self).extract_max()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn is_relaxed(&self) -> bool {
        (**self).is_relaxed()
    }
    fn len_hint(&self) -> usize {
        (**self).len_hint()
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        (**self).insert_batch(items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        (**self).extract_batch(out, n)
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        (**self).metrics()
    }
}

impl<V, Q: ConcurrentPriorityQueue<V> + ?Sized> ConcurrentPriorityQueue<V> for Box<Q> {
    fn insert(&self, prio: u64, value: V) {
        (**self).insert(prio, value)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        (**self).extract_max()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn is_relaxed(&self) -> bool {
        (**self).is_relaxed()
    }
    fn len_hint(&self) -> usize {
        (**self).len_hint()
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        (**self).insert_batch(items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        (**self).extract_batch(out, n)
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        (**self).metrics()
    }
}

impl<V, Q: ConcurrentPriorityQueue<V> + ?Sized> ConcurrentPriorityQueue<V> for std::sync::Arc<Q> {
    fn insert(&self, prio: u64, value: V) {
        (**self).insert(prio, value)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        (**self).extract_max()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn is_relaxed(&self) -> bool {
        (**self).is_relaxed()
    }
    fn len_hint(&self) -> usize {
        (**self).len_hint()
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        (**self).insert_batch(items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        (**self).extract_batch(out, n)
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        (**self).metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;
    use std::sync::Mutex;

    /// Minimal reference implementation used to sanity-check the trait
    /// surface (and reused conceptually by `baselines::CoarseHeap`).
    struct LockedHeap(Mutex<BinaryHeap<(u64, u64)>>);

    impl ConcurrentPriorityQueue for LockedHeap {
        fn insert(&self, prio: u64, value: u64) {
            self.0.lock().unwrap().push((prio, value));
        }
        fn extract_max(&self) -> Option<(u64, u64)> {
            self.0.lock().unwrap().pop()
        }
        fn name(&self) -> String {
            "locked-heap".into()
        }
        fn is_relaxed(&self) -> bool {
            false
        }
        fn len_hint(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn trait_object_usable() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        let dyn_q: &dyn ConcurrentPriorityQueue = &q;
        dyn_q.insert(3, 30);
        dyn_q.insert(7, 70);
        dyn_q.insert(5, 50);
        assert_eq!(dyn_q.extract_max(), Some((7, 70)));
        assert_eq!(dyn_q.len_hint(), 2);
        assert!(!dyn_q.is_relaxed());
    }

    #[test]
    fn metrics_default_is_none_and_forwards() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        assert!(q.metrics().is_none());
        let arc = std::sync::Arc::new(LockedHeap(Mutex::new(BinaryHeap::new())));
        assert!(arc.metrics().is_none());

        struct WithMetrics(LockedHeap);
        impl ConcurrentPriorityQueue for WithMetrics {
            fn insert(&self, prio: u64, value: u64) {
                self.0.insert(prio, value)
            }
            fn extract_max(&self) -> Option<(u64, u64)> {
                self.0.extract_max()
            }
            fn name(&self) -> String {
                "with-metrics".into()
            }
            fn metrics(&self) -> Option<obs::Snapshot> {
                let mut s = obs::Snapshot::new();
                s.push_counter("len", self.0.len_hint() as u64);
                Some(s)
            }
        }
        let m = WithMetrics(LockedHeap(Mutex::new(BinaryHeap::new())));
        m.insert(1, 1);
        let boxed: Box<dyn ConcurrentPriorityQueue> = Box::new(m);
        let snap = boxed.metrics().expect("override forwards through Box");
        assert_eq!(snap.counter("len"), Some(1));
    }

    #[test]
    fn default_batched_ops_loop() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        let mut items = vec![(3, 30), (9, 90), (5, 50), (7, 70)];
        q.insert_batch(&mut items);
        assert!(items.is_empty(), "insert_batch must drain its input");
        assert_eq!(q.len_hint(), 4);

        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 3), 3);
        assert_eq!(out, vec![(9, 90), (7, 70), (5, 50)]);
        // Short count when the queue runs dry, never an error.
        assert_eq!(q.extract_batch(&mut out, 10), 1);
        assert_eq!(out.last(), Some(&(3, 30)));
        assert_eq!(q.extract_batch(&mut out, 1), 0);
    }

    #[test]
    fn batched_ops_forward_through_blankets() {
        let arc = std::sync::Arc::new(LockedHeap(Mutex::new(BinaryHeap::new())));
        let mut items = vec![(1, 10), (2, 20)];
        arc.insert_batch(&mut items);
        let boxed: Box<dyn ConcurrentPriorityQueue> = Box::new(std::sync::Arc::clone(&arc));
        let mut out = Vec::new();
        assert_eq!(boxed.extract_batch(&mut out, 8), 2);
        assert_eq!(out, vec![(2, 20), (1, 10)]);
        let by_ref: &dyn ConcurrentPriorityQueue = &*arc;
        assert_eq!(by_ref.extract_batch(&mut out, 1), 0);
    }

    #[test]
    fn blanket_ref_and_arc() {
        let q = std::sync::Arc::new(LockedHeap(Mutex::new(BinaryHeap::new())));
        q.insert(1, 10);
        let by_ref: &LockedHeap = &q;
        by_ref.insert(2, 20);
        assert_eq!(q.extract_max(), Some((2, 20)));
        assert_eq!(q.extract_max(), Some((1, 10)));
        assert_eq!(q.extract_max(), None);
    }
}
