//! Common trait for every concurrent priority queue in this workspace.
//!
//! The paper compares ZMSQ against the Mound, the SprayList, MultiQueue,
//! k-LSM and strict queues. All of them implement
//! [`ConcurrentPriorityQueue`] so the workload drivers and benchmark
//! harnesses in `workloads` and `bench` are generic over the queue.
//!
//! Priorities are `u64` and **higher values win**: `extract_max` on a strict
//! queue returns the element with the numerically largest priority. Relaxed
//! queues may return an element that is merely *close* to the maximum; see
//! [`ConcurrentPriorityQueue::is_relaxed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

/// Why a fallible insertion ([`ConcurrentPriorityQueue::try_insert`] /
/// [`ConcurrentPriorityQueue::insert_timeout`]) did not admit its element.
///
/// Every variant carries the rejected value back to the caller — a bounded
/// queue never silently drops work handed to the fallible API; callers
/// decide whether to retry, reroute or shed it themselves.
pub enum InsertError<V> {
    /// The queue is at capacity and the configured policy does not admit
    /// the element (either it refuses to evict, or the element itself was
    /// the lowest-priority candidate).
    Full(V),
    /// The queue has been closed for shutdown; no new work is admitted.
    Closed(V),
    /// The deadline passed while waiting for capacity
    /// ([`ConcurrentPriorityQueue::insert_timeout`] only).
    Timeout(V),
}

impl<V> InsertError<V> {
    /// Recover the rejected value.
    pub fn into_value(self) -> V {
        match self {
            InsertError::Full(v) | InsertError::Closed(v) | InsertError::Timeout(v) => v,
        }
    }

    /// The variant name, without the (possibly non-`Debug`) value.
    pub fn kind(&self) -> &'static str {
        match self {
            InsertError::Full(_) => "Full",
            InsertError::Closed(_) => "Closed",
            InsertError::Timeout(_) => "Timeout",
        }
    }

    /// Whether the rejection is permanent (the queue is closed) rather
    /// than a transient capacity condition worth retrying.
    pub fn is_closed(&self) -> bool {
        matches!(self, InsertError::Closed(_))
    }
}

// Manual impls: the value itself need not be Debug for the error to be.
impl<V> std::fmt::Debug for InsertError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple(self.kind()).finish()
    }
}

impl<V> std::fmt::Display for InsertError<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InsertError::Full(_) => write!(f, "queue full"),
            InsertError::Closed(_) => write!(f, "queue closed"),
            InsertError::Timeout(_) => write!(f, "timed out waiting for queue capacity"),
        }
    }
}

impl<V> std::error::Error for InsertError<V> {}

/// A thread-safe max-priority queue storing `(priority, value)` pairs.
///
/// Duplicate priorities are allowed. All methods take `&self`; queues are
/// shared across threads by reference (e.g. inside an `Arc` or a scoped
/// thread borrow).
pub trait ConcurrentPriorityQueue<V = u64>: Send + Sync {
    /// Insert `value` with priority `prio`.
    fn insert(&self, prio: u64, value: V);

    /// Fallible, non-blocking insertion.
    ///
    /// Unbounded queues (the default) always admit the element, so the
    /// blanket implementation forwards to [`insert`](Self::insert) and
    /// returns `Ok(())` — every existing implementation compiles
    /// unchanged. Bounded queues (e.g. ZMSQ with
    /// `ZmsqConfig::capacity`) override this to report
    /// [`InsertError::Full`] / [`InsertError::Closed`] instead of
    /// blocking or shedding; the rejected value rides back inside the
    /// error.
    #[must_use = "the rejected element is inside the error; dropping it loses work"]
    fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        self.insert(prio, value);
        Ok(())
    }

    /// Fallible insertion with a bounded wait for capacity.
    ///
    /// Like [`try_insert`](Self::try_insert), but a bounded queue with a
    /// blocking shed policy may park the producer up to `timeout`
    /// waiting for room, returning [`InsertError::Timeout`] when the
    /// deadline passes. The blanket implementation (unbounded queues
    /// never wait) forwards to `try_insert` and ignores the timeout.
    #[must_use = "the rejected element is inside the error; dropping it loses work"]
    fn insert_timeout(&self, prio: u64, value: V, timeout: Duration) -> Result<(), InsertError<V>> {
        let _ = timeout;
        self.try_insert(prio, value)
    }

    /// Attempt to extract a high-priority element.
    ///
    /// Returns `None` only if the queue was observed empty. For ZMSQ this
    /// observation is exact (extraction from a nonempty queue never fails);
    /// for the SprayList and k-LSM a `None` may be spurious — the paper
    /// discusses exactly this deficiency (§3.7), and the producer/consumer
    /// drivers measure its cost.
    fn extract_max(&self) -> Option<(u64, V)>;

    /// Short human-readable name used in benchmark output rows.
    fn name(&self) -> String;

    /// Whether `extract_max` may return a non-maximal element.
    fn is_relaxed(&self) -> bool {
        true
    }

    /// Best-effort current size. Used only for reporting, never correctness.
    fn len_hint(&self) -> usize {
        0
    }

    /// Configured element capacity for bounded queues, `None` (the
    /// default) when unbounded. Like [`len_hint`](Self::len_hint), a
    /// reporting aid: harnesses use it to size workloads that must stay
    /// within a bounded queue's admission limit.
    fn capacity(&self) -> Option<usize> {
        None
    }

    /// Bulk insertion: drain every `(priority, value)` pair out of
    /// `items` into the queue.
    ///
    /// The default implementation loops [`insert`](Self::insert); queues
    /// with a cheaper bulk path (e.g. ZMSQ's sorted-chunk insertion, or a
    /// sharded queue scattering across shards) override it. On return
    /// `items` is empty regardless of implementation.
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        for (prio, value) in items.drain(..) {
            self.insert(prio, value);
        }
    }

    /// Bulk extraction: append up to `n` high-priority elements to `out`,
    /// returning how many were actually extracted.
    ///
    /// Stops early only when the queue is observed empty (the same
    /// guarantee as [`extract_max`](Self::extract_max) — so a short count
    /// means fewer than `n` elements were available, not contention).
    /// Elements are appended in hand-out order, which for relaxed queues
    /// is only approximately descending. The default implementation loops
    /// `extract_max`; queues with a cheaper claim path override it.
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        let mut got = 0;
        while got < n {
            match self.extract_max() {
                Some(item) => {
                    out.push(item);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Publish any operations the calling thread (or any thread) has
    /// buffered locally, making them globally visible.
    ///
    /// Queues with per-thread operation buffers (e.g. `ShardedZmsq` or
    /// `MultiQueue` with insertion/deletion buffers configured) override
    /// this to push pending buffered inserts into the shared structure
    /// and return prefetched-but-unconsumed elements to it, so that a
    /// subsequent `extract_max` from *any* thread observes them. The
    /// default is a no-op: unbuffered queues have nothing to publish.
    ///
    /// `flush` is an escape hatch for quiescence points (checkpointing,
    /// draining, handing a queue across a thread-pool generation); the
    /// buffered queues also flush automatically on buffer overflow, on
    /// sticky re-sampling, on `close()`, and before reporting emptiness.
    fn flush(&self) {}

    /// Export the queue's internal metrics as an [`obs::Snapshot`], if the
    /// implementation collects any. Harnesses merge this into their
    /// `*.metrics.json` output; `None` (the default) simply omits the
    /// section. Snapshots are best-effort under concurrency, like
    /// [`len_hint`](Self::len_hint).
    fn metrics(&self) -> Option<obs::Snapshot> {
        None
    }
}

/// Blanket impl so `&Q`, `Box<Q>` and `Arc<Q>` work wherever a queue does.
impl<V, Q: ConcurrentPriorityQueue<V> + ?Sized> ConcurrentPriorityQueue<V> for &Q {
    fn insert(&self, prio: u64, value: V) {
        (**self).insert(prio, value)
    }
    fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        (**self).try_insert(prio, value)
    }
    fn insert_timeout(&self, prio: u64, value: V, timeout: Duration) -> Result<(), InsertError<V>> {
        (**self).insert_timeout(prio, value, timeout)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        (**self).extract_max()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn is_relaxed(&self) -> bool {
        (**self).is_relaxed()
    }
    fn len_hint(&self) -> usize {
        (**self).len_hint()
    }
    fn capacity(&self) -> Option<usize> {
        (**self).capacity()
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        (**self).insert_batch(items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        (**self).extract_batch(out, n)
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        (**self).metrics()
    }
}

impl<V, Q: ConcurrentPriorityQueue<V> + ?Sized> ConcurrentPriorityQueue<V> for Box<Q> {
    fn insert(&self, prio: u64, value: V) {
        (**self).insert(prio, value)
    }
    fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        (**self).try_insert(prio, value)
    }
    fn insert_timeout(&self, prio: u64, value: V, timeout: Duration) -> Result<(), InsertError<V>> {
        (**self).insert_timeout(prio, value, timeout)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        (**self).extract_max()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn is_relaxed(&self) -> bool {
        (**self).is_relaxed()
    }
    fn len_hint(&self) -> usize {
        (**self).len_hint()
    }
    fn capacity(&self) -> Option<usize> {
        (**self).capacity()
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        (**self).insert_batch(items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        (**self).extract_batch(out, n)
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        (**self).metrics()
    }
}

impl<V, Q: ConcurrentPriorityQueue<V> + ?Sized> ConcurrentPriorityQueue<V> for std::sync::Arc<Q> {
    fn insert(&self, prio: u64, value: V) {
        (**self).insert(prio, value)
    }
    fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        (**self).try_insert(prio, value)
    }
    fn insert_timeout(&self, prio: u64, value: V, timeout: Duration) -> Result<(), InsertError<V>> {
        (**self).insert_timeout(prio, value, timeout)
    }
    fn extract_max(&self) -> Option<(u64, V)> {
        (**self).extract_max()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn is_relaxed(&self) -> bool {
        (**self).is_relaxed()
    }
    fn len_hint(&self) -> usize {
        (**self).len_hint()
    }
    fn capacity(&self) -> Option<usize> {
        (**self).capacity()
    }
    fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        (**self).insert_batch(items)
    }
    fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        (**self).extract_batch(out, n)
    }
    fn flush(&self) {
        (**self).flush()
    }
    fn metrics(&self) -> Option<obs::Snapshot> {
        (**self).metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;
    use std::sync::Mutex;

    /// Minimal reference implementation used to sanity-check the trait
    /// surface (and reused conceptually by `baselines::CoarseHeap`).
    struct LockedHeap(Mutex<BinaryHeap<(u64, u64)>>);

    impl ConcurrentPriorityQueue for LockedHeap {
        fn insert(&self, prio: u64, value: u64) {
            self.0.lock().unwrap().push((prio, value));
        }
        fn extract_max(&self) -> Option<(u64, u64)> {
            self.0.lock().unwrap().pop()
        }
        fn name(&self) -> String {
            "locked-heap".into()
        }
        fn is_relaxed(&self) -> bool {
            false
        }
        fn len_hint(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn trait_object_usable() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        let dyn_q: &dyn ConcurrentPriorityQueue = &q;
        dyn_q.insert(3, 30);
        dyn_q.insert(7, 70);
        dyn_q.insert(5, 50);
        assert_eq!(dyn_q.extract_max(), Some((7, 70)));
        assert_eq!(dyn_q.len_hint(), 2);
        assert!(!dyn_q.is_relaxed());
    }

    #[test]
    fn metrics_default_is_none_and_forwards() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        assert!(q.metrics().is_none());
        let arc = std::sync::Arc::new(LockedHeap(Mutex::new(BinaryHeap::new())));
        assert!(arc.metrics().is_none());

        struct WithMetrics(LockedHeap);
        impl ConcurrentPriorityQueue for WithMetrics {
            fn insert(&self, prio: u64, value: u64) {
                self.0.insert(prio, value)
            }
            fn extract_max(&self) -> Option<(u64, u64)> {
                self.0.extract_max()
            }
            fn name(&self) -> String {
                "with-metrics".into()
            }
            fn metrics(&self) -> Option<obs::Snapshot> {
                let mut s = obs::Snapshot::new();
                s.push_counter("len", self.0.len_hint() as u64);
                Some(s)
            }
        }
        let m = WithMetrics(LockedHeap(Mutex::new(BinaryHeap::new())));
        m.insert(1, 1);
        let boxed: Box<dyn ConcurrentPriorityQueue> = Box::new(m);
        let snap = boxed.metrics().expect("override forwards through Box");
        assert_eq!(snap.counter("len"), Some(1));
    }

    #[test]
    fn default_batched_ops_loop() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        let mut items = vec![(3, 30), (9, 90), (5, 50), (7, 70)];
        q.insert_batch(&mut items);
        assert!(items.is_empty(), "insert_batch must drain its input");
        assert_eq!(q.len_hint(), 4);

        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 3), 3);
        assert_eq!(out, vec![(9, 90), (7, 70), (5, 50)]);
        // Short count when the queue runs dry, never an error.
        assert_eq!(q.extract_batch(&mut out, 10), 1);
        assert_eq!(out.last(), Some(&(3, 30)));
        assert_eq!(q.extract_batch(&mut out, 1), 0);
    }

    #[test]
    fn batched_ops_forward_through_blankets() {
        let arc = std::sync::Arc::new(LockedHeap(Mutex::new(BinaryHeap::new())));
        let mut items = vec![(1, 10), (2, 20)];
        arc.insert_batch(&mut items);
        let boxed: Box<dyn ConcurrentPriorityQueue> = Box::new(std::sync::Arc::clone(&arc));
        let mut out = Vec::new();
        assert_eq!(boxed.extract_batch(&mut out, 8), 2);
        assert_eq!(out, vec![(2, 20), (1, 10)]);
        let by_ref: &dyn ConcurrentPriorityQueue = &*arc;
        assert_eq!(by_ref.extract_batch(&mut out, 1), 0);
    }

    #[test]
    fn flush_default_is_noop_and_forwards() {
        use std::sync::atomic::{AtomicU64, Ordering};

        // Default: nothing to publish, nothing happens.
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        q.insert(1, 10);
        q.flush();
        assert_eq!(q.len_hint(), 1);

        // Override must propagate through &Q, Box<Q> and Arc<Q>.
        struct Flushy(AtomicU64);
        impl ConcurrentPriorityQueue for Flushy {
            fn insert(&self, _prio: u64, _value: u64) {}
            fn extract_max(&self) -> Option<(u64, u64)> {
                None
            }
            fn name(&self) -> String {
                "flushy".into()
            }
            fn flush(&self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let arc = std::sync::Arc::new(Flushy(AtomicU64::new(0)));
        arc.flush();
        let by_ref: &dyn ConcurrentPriorityQueue = &*arc;
        by_ref.flush();
        let boxed: Box<dyn ConcurrentPriorityQueue> = Box::new(std::sync::Arc::clone(&arc));
        boxed.flush();
        assert_eq!(arc.0.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn try_insert_default_always_admits() {
        let q = LockedHeap(Mutex::new(BinaryHeap::new()));
        q.try_insert(1, 10).unwrap();
        q.insert_timeout(2, 20, Duration::from_millis(1)).unwrap();
        assert_eq!(q.len_hint(), 2);
        assert_eq!(q.extract_max(), Some((2, 20)));
    }

    #[test]
    fn fallible_inserts_forward_through_blankets() {
        /// A queue that is always full, to prove overrides propagate.
        struct Full;
        impl ConcurrentPriorityQueue for Full {
            fn insert(&self, _prio: u64, _value: u64) {}
            fn try_insert(&self, _prio: u64, value: u64) -> Result<(), InsertError<u64>> {
                Err(InsertError::Full(value))
            }
            fn insert_timeout(
                &self,
                _prio: u64,
                value: u64,
                _timeout: Duration,
            ) -> Result<(), InsertError<u64>> {
                Err(InsertError::Timeout(value))
            }
            fn extract_max(&self) -> Option<(u64, u64)> {
                None
            }
            fn name(&self) -> String {
                "full".into()
            }
        }
        let boxed: Box<dyn ConcurrentPriorityQueue> = Box::new(Full);
        let err = boxed.try_insert(1, 42).unwrap_err();
        assert!(matches!(err, InsertError::Full(42)));
        assert_eq!(err.into_value(), 42);
        let arc = std::sync::Arc::new(Full);
        let err = arc
            .insert_timeout(1, 7, Duration::from_millis(1))
            .unwrap_err();
        assert!(matches!(err, InsertError::Timeout(7)));
        let by_ref: &dyn ConcurrentPriorityQueue = &Full;
        assert!(by_ref.try_insert(0, 0).is_err());
    }

    #[test]
    fn insert_error_debug_display_without_value_debug() {
        // The value type is not Debug; the error still is.
        struct Opaque;
        let e: InsertError<Opaque> = InsertError::Full(Opaque);
        assert_eq!(format!("{e:?}"), "Full");
        assert_eq!(format!("{e}"), "queue full");
        assert!(!e.is_closed());
        let c: InsertError<Opaque> = InsertError::Closed(Opaque);
        assert_eq!(c.kind(), "Closed");
        assert!(c.is_closed());
        let t: InsertError<Opaque> = InsertError::Timeout(Opaque);
        assert_eq!(format!("{t}"), "timed out waiting for queue capacity");
    }

    #[test]
    fn blanket_ref_and_arc() {
        let q = std::sync::Arc::new(LockedHeap(Mutex::new(BinaryHeap::new())));
        q.insert(1, 10);
        let by_ref: &LockedHeap = &q;
        by_ref.insert(2, 20);
        assert_eq!(q.extract_max(), Some((2, 20)));
        assert_eq!(q.extract_max(), Some((1, 10)));
        assert_eq!(q.extract_max(), None);
    }
}
