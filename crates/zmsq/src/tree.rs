//! The level-indexed binary tree (§3.1).
//!
//! "In practice, the ZMSQ nodes field is an array of arrays of TNodes. In
//! nodes, the sub-array at position i stores 2^i TNodes. This
//! representation of a binary tree allows binary searches along the path
//! from any node to the root."
//!
//! Level arrays are allocated lazily (under a growth lock) and **never
//! freed until the queue drops**, so optimistic traversals need no memory
//! protection for tree nodes — the paper's hazard pointers are only needed
//! for the extraction pool, which *is* replaced dynamically.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use zmsq_sync::{RawTryLock, TatasLock};

use crate::set::NodeSet;
use crate::tnode::TNode;

/// Maximum tree depth. Level `MAX_LEVELS - 1` alone holds 2^25 nodes; with
/// any realistic `target_len` that is far beyond available memory before
/// it is ever reached.
pub(crate) const MAX_LEVELS: usize = 26;

/// Position of a node: `(level, slot)` with `slot < 2^level`.
pub(crate) type Pos = (usize, usize);

/// The array-of-arrays tree spine.
pub(crate) struct Tree<V, S, L> {
    levels: [AtomicPtr<TNode<V, S, L>>; MAX_LEVELS],
    leaf_level: AtomicUsize,
    grow_lock: TatasLock,
}

impl<V: Send, S: NodeSet<V>, L: RawTryLock> Tree<V, S, L> {
    /// Create a tree with levels `0..=initial_leaf` allocated, each
    /// node's set attached to `arena`.
    pub fn new(initial_leaf: usize, arena: &S::Arena) -> Self {
        assert!(initial_leaf < MAX_LEVELS);
        let tree = Self {
            levels: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            leaf_level: AtomicUsize::new(initial_leaf),
            grow_lock: TatasLock::default(),
        };
        for level in 0..=initial_leaf {
            tree.levels[level].store(Self::alloc_level(level, arena), Ordering::Relaxed);
        }
        tree
    }

    fn alloc_level(level: usize, arena: &S::Arena) -> *mut TNode<V, S, L> {
        let n = 1usize << level;
        let mut nodes: Vec<TNode<V, S, L>> = Vec::with_capacity(n);
        nodes.resize_with(n, TNode::new);
        // Sets are attached while the level is still exclusively owned,
        // before any node becomes reachable.
        for node in &mut nodes {
            node.attach_arena(arena);
        }
        // Box<[T]> -> thin pointer to the first element; the length (2^level)
        // is implicit in the level index and restored in Drop.
        Box::into_raw(nodes.into_boxed_slice()).cast()
    }

    /// Current deepest allocated level.
    #[inline]
    pub fn leaf_level(&self) -> usize {
        self.leaf_level.load(Ordering::Acquire)
    }

    /// Borrow the node at `pos`. The level must be allocated, which holds
    /// for any level `<=` a previously observed `leaf_level()` (the
    /// level-pointer store happens-before the `leaf_level` bump).
    #[inline]
    pub fn node(&self, pos: Pos) -> &TNode<V, S, L> {
        let (level, slot) = pos;
        debug_assert!(level < MAX_LEVELS && slot < (1 << level));
        let base = self.levels[level].load(Ordering::Acquire);
        debug_assert!(!base.is_null(), "level {level} not allocated");
        // SAFETY: level arrays are allocated before becoming reachable,
        // never freed until Drop, and `slot` is in bounds.
        unsafe { &*base.add(slot) }
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> &TNode<V, S, L> {
        self.node((0, 0))
    }

    /// Parent position. Panics on the root in debug builds.
    #[inline]
    pub fn parent(pos: Pos) -> Pos {
        debug_assert!(pos.0 > 0);
        (pos.0 - 1, pos.1 / 2)
    }

    /// Children positions (which may be beyond the leaf level).
    #[inline]
    pub fn children(pos: Pos) -> (Pos, Pos) {
        ((pos.0 + 1, pos.1 * 2), (pos.0 + 1, pos.1 * 2 + 1))
    }

    /// Slot of the ancestor of `pos` at `level` (on the root path).
    #[inline]
    pub fn ancestor_slot(pos: Pos, level: usize) -> usize {
        debug_assert!(level <= pos.0);
        pos.1 >> (pos.0 - level)
    }

    /// Grow the tree by one level if `observed_leaf` is still current.
    /// Returns the (possibly already larger) new leaf level. Saturates at
    /// [`MAX_LEVELS`]`- 1` — callers must tolerate no progress (sets then
    /// simply exceed their target size; a quality loss, not an error).
    pub fn grow(&self, observed_leaf: usize, arena: &S::Arena) -> usize {
        let _g = self.grow_lock.guard();
        let cur = self.leaf_level.load(Ordering::Relaxed);
        if cur != observed_leaf {
            return cur; // someone else grew concurrently
        }
        let next = cur + 1;
        if next >= MAX_LEVELS {
            return cur; // saturated: 2^25 leaves already allocated
        }
        // Publish the array before the new leaf level becomes visible.
        self.levels[next].store(Self::alloc_level(next, arena), Ordering::Release);
        self.leaf_level.store(next, Ordering::Release);
        next
    }

    /// Whether the tree can no longer deepen.
    pub fn is_saturated(&self) -> bool {
        self.leaf_level() + 1 >= MAX_LEVELS
    }

    /// Visit every allocated node (single-threaded use: drop, debug,
    /// invariant checks in tests).
    pub fn for_each_allocated(&self, mut f: impl FnMut(Pos, &TNode<V, S, L>)) {
        let leaf = self.leaf_level();
        for level in 0..=leaf {
            for slot in 0..(1usize << level) {
                f((level, slot), self.node((level, slot)));
            }
        }
    }
}

impl<V, S, L> Drop for Tree<V, S, L> {
    fn drop(&mut self) {
        for (level, ptr) in self.levels.iter_mut().enumerate() {
            let base = *ptr.get_mut();
            if base.is_null() {
                continue;
            }
            let n = 1usize << level;
            // SAFETY: `base` came from Box::into_raw of a boxed slice of
            // exactly `n` nodes; reconstructing with the same length.
            unsafe {
                drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(base, n)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{ListSet, NodeSet};
    use zmsq_sync::TatasLock;

    type T = Tree<u64, ListSet<u64>, TatasLock>;

    #[test]
    fn initial_levels_allocated() {
        let t = T::new(3, &());
        assert_eq!(t.leaf_level(), 3);
        for level in 0..=3 {
            for slot in 0..(1usize << level) {
                assert_eq!(t.node((level, slot)).count(), 0);
            }
        }
    }

    #[test]
    fn grow_adds_one_level() {
        let t = T::new(2, &());
        assert_eq!(t.grow(2, &()), 3);
        assert_eq!(t.leaf_level(), 3);
        assert_eq!(t.node((3, 7)).count(), 0);
        // Stale observation is a no-op.
        assert_eq!(t.grow(2, &()), 3);
        assert_eq!(t.leaf_level(), 3);
    }

    #[test]
    fn concurrent_grow_settles_on_one_level() {
        use std::sync::Arc;
        let t = Arc::new(T::new(2, &()));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || t.grow(2, &())));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
        assert_eq!(t.leaf_level(), 3);
    }

    #[test]
    fn navigation_identities() {
        assert_eq!(T::parent((3, 5)), (2, 2));
        assert_eq!(T::children((2, 2)), ((3, 4), (3, 5)));
        for slot in 0..8usize {
            let (l, r) = T::children((2, slot % 4));
            assert_eq!(T::parent(l), (2, slot % 4));
            assert_eq!(T::parent(r), (2, slot % 4));
        }
        assert_eq!(T::ancestor_slot((4, 13), 0), 0);
        assert_eq!(T::ancestor_slot((4, 13), 2), 3);
        assert_eq!(T::ancestor_slot((4, 13), 4), 13);
    }

    #[test]
    fn drop_releases_elements() {
        // Tracked via a value type whose drop counts down.
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicU64::new(0));
        {
            let t: Tree<D, ListSet<D>, TatasLock> = Tree::new(2, &());
            let node = t.node((1, 0));
            node.lock();
            // SAFETY: lock held.
            unsafe {
                live.fetch_add(2, Ordering::SeqCst);
                node.set_mut().insert(1, D(Arc::clone(&live)));
                node.set_mut().insert(2, D(Arc::clone(&live)));
                node.refresh_cache();
            }
            node.unlock();
        }
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn for_each_visits_all() {
        let t = T::new(3, &());
        let mut n = 0;
        t.for_each_allocated(|_, _| n += 1);
        assert_eq!(n, 1 + 2 + 4 + 8);
    }
}
