//! Thread-local fast RNG for random leaf selection.
//!
//! Insertion probes random leaves (Listing 1 line 5); the probe is on the
//! hot path, so it uses an inline xorshift64* generator in TLS rather than
//! going through the `rand` crate's thread RNG machinery. Statistical
//! quality well beyond what leaf selection needs; each thread is seeded
//! from a global counter mixed through SplitMix64 so streams differ.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x0DDB_1A5E_5BAD_5EED);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// First-use seed for this thread's stream. Under the deterministic
/// scheduler each vthread gets a seed derived from the schedule seed (a
/// fresh OS thread is spawned per vthread, so TLS re-initializes per
/// schedule — that is what makes leaf probes replay byte-identically);
/// otherwise the global counter keeps real threads' streams distinct.
fn initial_seed() -> u64 {
    if let Some(s) = det::det_thread_seed!() {
        return splitmix64(s);
    }
    splitmix64(SEED_COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
}

thread_local! {
    static STATE: Cell<u64> = Cell::new(initial_seed());
}

/// Next pseudo-random `u64` from the calling thread's stream.
#[inline]
pub(crate) fn next_u64() -> u64 {
    STATE.with(|s| {
        let mut x = s.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Uniform-ish index in `[0, n)`. `n` must be nonzero. Uses the
/// multiply-shift trick (Lemire) to avoid a modulo.
#[inline]
pub(crate) fn next_index(n: usize) -> usize {
    debug_assert!(n > 0);
    (((next_u64() as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_in_range() {
        for n in [1usize, 2, 3, 7, 1024, 1 << 20] {
            for _ in 0..1000 {
                assert!(next_index(n) < n);
            }
        }
    }

    #[test]
    fn covers_small_domains() {
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[next_index(8)] = true;
        }
        assert!(
            seen.iter().all(|&b| b),
            "all 8 slots should be hit: {seen:?}"
        );
    }

    #[test]
    fn streams_differ_across_threads() {
        let a: Vec<u64> = (0..8).map(|_| next_u64()).collect();
        let b = std::thread::spawn(|| (0..8).map(|_| next_u64()).collect::<Vec<_>>())
            .join()
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn roughly_uniform() {
        // Chi-squared-ish sanity: 16 buckets, 32k draws, each bucket
        // within 25% of expectation.
        let mut counts = [0u32; 16];
        for _ in 0..32_768 {
            counts[next_index(16)] += 1;
        }
        for &c in &counts {
            assert!((1536..=2560).contains(&c), "bucket count {c} out of range");
        }
    }
}
