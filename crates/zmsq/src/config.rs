//! Queue configuration: the `batch` / `targetLen` tuning knobs of §4.2,
//! the lock acquisition strategy of §4.1, and the reclamation mode.

/// How pool buffers are reclaimed (paper §3.5 and the `ZMSQ (leak)`
/// evaluation arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reclamation {
    /// Swap in a fresh buffer on every refill and retire the old one into
    /// a hazard-pointer domain. Consumers protect the buffer before
    /// claiming — this is the memory-safe default ("ZMSQ" curves).
    Hazard,
    /// One buffer for the queue's lifetime; the refiller waits for lagging
    /// consumers to finish reading before overwriting (Listing 2 line 8).
    /// No hazard pointers on the consumer fast path; the wait is the
    /// synchronization (§3.5's observation).
    ConsumerWait,
    /// Swap buffers and leak the old ones ("ZMSQ (leak)" curves): isolates
    /// the cost of memory safety in benchmarks. Never use in production.
    Leak,
}

/// Whether node locks are acquired with a bounded trylock (restarting the
/// operation on failure) or by waiting (§4.1, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStrategy {
    /// `try_lock`; on failure the operation restarts and (for inserts)
    /// picks a different random path. The paper's recommended strategy:
    /// a held lock predicts a failed validation.
    TryRestart,
    /// Blocking acquisition — the `std::mutex` discipline of Figure 2.
    Blocking,
}

/// What a bounded queue does when an insertion finds it at capacity
/// (see [`ZmsqConfig::capacity`]). Irrelevant while the queue is
/// unbounded (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Park the producer on a futex-based `ProducerWait` until an
    /// extraction frees capacity (the mirror image of the §3.6 consumer
    /// blocking). Infallible `insert` waits indefinitely; `try_insert`
    /// returns `Full` without waiting; `insert_timeout` waits up to its
    /// deadline. No element is ever dropped. The default.
    #[default]
    Block,
    /// Refuse the incoming element. `try_insert` returns `Full` with the
    /// value; the infallible `insert` *drops* the element and counts it
    /// in `zmsq.shed.rejected` (open-loop producers that cannot block
    /// must lose the newest work). Never touches admitted elements.
    Reject,
    /// Evict a lowest-priority element from the deepest qualifying tree
    /// node to admit higher-priority work; if the incoming element is
    /// itself the lowest on offer, it is the one shed. Degrades by
    /// dropping the *least urgent* work first, which preserves the
    /// queue's top-k window far better than rejecting fresh arrivals
    /// (evictions count in `zmsq.shed.evicted`).
    ShedLowest,
}

/// Ablation switches for the §3.2 insertion-quality mechanisms.
///
/// Both default to enabled — disabling them degrades ZMSQ toward the
/// plain mound (shorter sets, poorer pool quality); the `ablation` bench
/// quantifies each mechanism's contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityOpts {
    /// Forced non-max insertion into deep under-full nodes (Listing 1
    /// lines 8–9 / 36–45): the primary density mechanism.
    pub forced_insert: bool,
    /// The parent-min swap (§3.2 / Fig. 1): tightens the parent's range
    /// when a new max is inserted below it.
    pub parent_min_swap: bool,
}

impl Default for QualityOpts {
    fn default() -> Self {
        Self {
            forced_insert: true,
            parent_min_swap: true,
        }
    }
}

/// Tuning and feature configuration for a [`Zmsq`](crate::Zmsq).
#[derive(Debug, Clone)]
pub struct ZmsqConfig {
    /// Upper bound on the number of elements moved to the shared pool per
    /// root extraction, and therefore on relaxation: in `k * batch`
    /// consecutive extractions the top `k` elements are returned.
    /// `0` makes the queue strict (identical to the mound).
    ///
    /// When an adaptive range is configured (see
    /// [`adaptive_batch`](Self::adaptive_batch)), this is only the
    /// *starting point*: the effective refill batch moves within
    /// `batch_min..=batch_max` at runtime.
    pub batch: usize,
    /// Lower bound for the adaptive refill batch. Equal to `batch` by
    /// default (adaptation disabled).
    pub batch_min: usize,
    /// Upper bound for the adaptive refill batch — also the capacity the
    /// extraction pool is allocated with. Equal to `batch` by default
    /// (adaptation disabled).
    pub batch_max: usize,
    /// Target number of elements per `TNode` set; a set holds at most
    /// `2 * target_len` before it is split.
    pub target_len: usize,
    /// Lock acquisition strategy (Figure 2).
    pub lock_strategy: LockStrategy,
    /// Pool reclamation mode (§3.5).
    pub reclamation: Reclamation,
    /// Enable the futex blocking layer (§3.6). `insert` then signals a
    /// circular futex buffer and `extract_max_blocking` can park.
    pub blocking: bool,
    /// Futex slots in the blocking buffer (rounded up to a power of two).
    pub event_slots: usize,
    /// Depth of the initially allocated tree. Forced insertion only
    /// applies below level 3, so the default of 4 makes it available
    /// immediately.
    pub initial_leaf_level: usize,
    /// §3.2 quality-mechanism ablation switches (both on by default).
    pub quality: QualityOpts,
    /// Multiplier on the number of random leaf probes per insertion
    /// before the tree is expanded (Listing 1 tries `leaf_level` probes;
    /// this scales that budget). Larger values resist premature tree
    /// growth under churn at the cost of longer worst-case probing.
    pub probe_factor: usize,
    /// Experimental (§5 future work): let `insert` place an element
    /// directly into the extraction pool when its priority is at least
    /// the pool's current best, so it can be extracted immediately
    /// without waiting for the next refill. Preserves conservation and
    /// the pool's descending hand-out order; slightly blurs the formal
    /// `k × batch` window bound (the fast-inserted element displaces one
    /// pool claim). Off by default.
    pub pool_fast_insert: bool,
    /// Upper bound on the number of live elements. `None` (the default)
    /// is the paper's unbounded queue. `Some(n)` makes insertion subject
    /// to admission control: when `n` elements are live, the
    /// [`shed`](Self::shed) policy decides whether producers block, the
    /// incoming element is refused, or a lowest-priority element is
    /// evicted. Clamped to at least 1 during normalization.
    pub capacity: Option<usize>,
    /// What happens when an insertion finds the queue at
    /// [`capacity`](Self::capacity). Ignored while unbounded.
    pub shed: ShedPolicy,
    /// Online rank-error telemetry: `Some(shift)` attaches an
    /// `obs::RankEstimator` sampling inserted keys at rate `1/2^shift`
    /// and reporting estimated per-extraction rank, staleness age and
    /// wasted-work ratio under `quality.*` in
    /// [`metrics`](pq_traits::ConcurrentPriorityQueue::metrics).
    /// `None` disables it (zero overhead). Defaults to `Some(6)` —
    /// 1/64 sampling, whose cost the `obs_overhead` bench bounds below
    /// 5% per op. The shift is clamped to `0..=32` during
    /// normalization (`0` samples every key: exact but O(reservoir)
    /// per op — testing only).
    pub rank_estimator: Option<u32>,
    /// Sampled sojourn-time telemetry: `Some(shift)` attaches an
    /// [`obs::SojournTracker`] stamping inserted keys at rate
    /// `1/2^shift` and recording enqueue→extract wall time into the
    /// `queue.sojourn_ns` histogram surfaced by
    /// [`metrics`](pq_traits::ConcurrentPriorityQueue::metrics).
    /// `None` disables it (zero overhead). Defaults to `Some(6)` —
    /// the same 1/64 rate as the rank estimator; the combined cost is
    /// bounded by the `obs_overhead` bench's per-op budget. Clamped to
    /// `0..=32` during normalization (`0` stamps every key — testing
    /// only).
    pub sojourn: Option<u32>,
}

impl ZmsqConfig {
    /// The paper's recommended default: `batch = 48`, `target_len = 72`
    /// (§4.2: "We recommend the static (batch=48, targetLen=72)
    /// configuration as the default setting").
    pub fn recommended() -> Self {
        Self {
            batch: 48,
            batch_min: 48,
            batch_max: 48,
            target_len: 72,
            lock_strategy: LockStrategy::TryRestart,
            reclamation: Reclamation::Hazard,
            blocking: false,
            event_slots: 16,
            initial_leaf_level: 4,
            quality: QualityOpts::default(),
            probe_factor: 1,
            pool_fast_insert: false,
            capacity: None,
            shed: ShedPolicy::Block,
            rank_estimator: Some(6),
            sojourn: Some(6),
        }
    }

    /// The configuration the paper tuned for the SSSP workloads (§4.6):
    /// `batch = 42`, `target_len = 64`.
    pub fn sssp_tuned() -> Self {
        Self {
            batch: 42,
            batch_min: 42,
            batch_max: 42,
            target_len: 64,
            ..Self::recommended()
        }
    }

    /// Strict (non-relaxed) mode: `batch = 0`. Behaves exactly like the
    /// mound; `extract_max` always returns the true maximum.
    pub fn strict() -> Self {
        Self {
            batch: 0,
            batch_min: 0,
            batch_max: 0,
            target_len: 32,
            ..Self::recommended()
        }
    }

    /// Set `batch` (builder style). Also collapses the adaptive range to
    /// exactly `batch` — call [`adaptive_batch`](Self::adaptive_batch)
    /// *after* this to re-enable adaptation around the new starting point.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self.batch_min = batch;
        self.batch_max = batch;
        self
    }

    /// Enable adaptive batching (builder style): the effective refill
    /// batch moves within `min..=max` at runtime, driven by the observed
    /// root-contention signal (see `ShardedZmsq`'s batch controller). The
    /// starting `batch` is clamped into the range; the pool is allocated
    /// at `max` capacity.
    ///
    /// Incoherent ranges are a caller bug: `min > max` trips a
    /// `debug_assert!` and is repaired by swapping; `min == 0` with
    /// `max > 0` would flip the queue in and out of strict mode and is
    /// clamped up to 1 during normalization.
    pub fn adaptive_batch(mut self, min: usize, max: usize) -> Self {
        debug_assert!(
            min <= max,
            "adaptive_batch: batch_min ({min}) > batch_max ({max})"
        );
        let (min, max) = if min <= max { (min, max) } else { (max, min) };
        self.batch_min = min;
        self.batch_max = max;
        self.batch = self.batch.clamp(min, max);
        self
    }

    /// Whether an adaptive batch range is configured (`batch_min <
    /// batch_max`).
    pub fn is_adaptive(&self) -> bool {
        self.batch_min < self.batch_max
    }

    /// Set `target_len` (builder style).
    pub fn target_len(mut self, target_len: usize) -> Self {
        self.target_len = target_len;
        self
    }

    /// Set the reclamation mode (builder style).
    pub fn reclamation(mut self, mode: Reclamation) -> Self {
        self.reclamation = mode;
        self
    }

    /// Set the lock strategy (builder style).
    pub fn lock_strategy(mut self, strategy: LockStrategy) -> Self {
        self.lock_strategy = strategy;
        self
    }

    /// Enable or disable the blocking layer (builder style).
    pub fn blocking(mut self, on: bool) -> Self {
        self.blocking = on;
        self
    }

    /// Set the quality-mechanism ablation switches (builder style).
    pub fn quality(mut self, quality: QualityOpts) -> Self {
        self.quality = quality;
        self
    }

    /// Enable the experimental direct-to-pool insertion (builder style).
    pub fn pool_fast_insert(mut self, on: bool) -> Self {
        self.pool_fast_insert = on;
        self
    }

    /// Bound the queue at `n` live elements (builder style). Insertions
    /// beyond the bound are governed by the [`shed`](Self::shed_policy)
    /// policy. `n` is clamped to at least 1 during normalization.
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = Some(n);
        self
    }

    /// Remove a capacity bound (builder style) — back to the paper's
    /// unbounded queue.
    pub fn unbounded(mut self) -> Self {
        self.capacity = None;
        self
    }

    /// Select the at-capacity behaviour (builder style). Only meaningful
    /// together with [`capacity`](Self::capacity).
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed = policy;
        self
    }

    /// Attach the online rank-error estimator sampling at rate
    /// `1/2^shift` (builder style). `shift = 0` samples everything
    /// (exact, slow — testing only).
    pub fn rank_estimator(mut self, shift: u32) -> Self {
        self.rank_estimator = Some(shift);
        self
    }

    /// Detach the rank-error estimator (builder style): no sampling, no
    /// `quality.*` metrics, zero per-op overhead.
    pub fn no_rank_estimator(mut self) -> Self {
        self.rank_estimator = None;
        self
    }

    /// Attach the sojourn-time tracker stamping at rate `1/2^shift`
    /// (builder style). `shift = 0` stamps everything (testing only).
    pub fn sojourn(mut self, shift: u32) -> Self {
        self.sojourn = Some(shift);
        self
    }

    /// Detach the sojourn-time tracker (builder style): no stamping,
    /// no `queue.sojourn_ns` histogram, zero per-op overhead.
    pub fn no_sojourn(mut self) -> Self {
        self.sojourn = None;
        self
    }

    /// Validate and normalize; called by the queue constructor.
    pub(crate) fn normalized(mut self) -> Self {
        self.target_len = self.target_len.max(1);
        // The pool cannot usefully exceed what one refill can supply: a
        // full root set holds at most 2 * target_len elements (§4.2 also
        // observes batch > targetLen leaves the pool under-filled).
        let cap = 2 * self.target_len;
        self.batch = self.batch.min(cap);
        // Repair incoherent adaptive ranges. A struct-literal user may
        // have set `batch` without touching the range (or vice versa), so
        // the range is widened around `batch` rather than moving it:
        // `batch` always keeps its (capped) requested value.
        if self.batch_min > self.batch_max {
            std::mem::swap(&mut self.batch_min, &mut self.batch_max);
        }
        self.batch_max = self.batch_max.min(cap).max(self.batch);
        self.batch_min = self.batch_min.min(self.batch);
        // batch == 0 selects strict mode (no pool at all); an adaptive
        // range reaching 0 would flip strictness at runtime. Strictness
        // wins: a zero starting batch collapses the range, and a live
        // range keeps its floor at 1.
        if self.batch == 0 {
            self.batch_min = 0;
            self.batch_max = 0;
        } else {
            self.batch_min = self.batch_min.max(1);
        }
        self.initial_leaf_level = self
            .initial_leaf_level
            .clamp(1, crate::tree::MAX_LEVELS - 1);
        self.event_slots = self.event_slots.max(1);
        self.probe_factor = self.probe_factor.max(1);
        // A zero capacity would admit nothing — Block would deadlock the
        // first producer forever. One live element is the smallest bound
        // with a progress guarantee.
        if let Some(cap) = self.capacity {
            self.capacity = Some(cap.max(1));
        }
        // Shifts past 32 would sample (effectively) nothing while still
        // paying the hash on every op; the estimator clamps identically.
        if let Some(shift) = self.rank_estimator {
            self.rank_estimator = Some(shift.min(32));
        }
        if let Some(shift) = self.sojourn {
            self.sojourn = Some(shift.min(32));
        }
        self
    }
}

impl Default for ZmsqConfig {
    fn default() -> Self {
        Self::recommended()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_matches_paper() {
        let c = ZmsqConfig::recommended();
        assert_eq!((c.batch, c.target_len), (48, 72));
        assert_eq!(c.lock_strategy, LockStrategy::TryRestart);
    }

    #[test]
    fn sssp_tuned_matches_paper() {
        let c = ZmsqConfig::sssp_tuned();
        assert_eq!((c.batch, c.target_len), (42, 64));
    }

    #[test]
    fn strict_means_zero_batch() {
        assert_eq!(ZmsqConfig::strict().batch, 0);
    }

    #[test]
    fn normalization_clamps() {
        let c = ZmsqConfig::recommended()
            .batch(10_000)
            .target_len(0)
            .normalized();
        assert_eq!(c.target_len, 1);
        assert_eq!(c.batch, 2, "batch clamped to 2 * target_len");

        let c = ZmsqConfig {
            initial_leaf_level: 99,
            ..ZmsqConfig::recommended()
        }
        .normalized();
        assert!(c.initial_leaf_level < crate::tree::MAX_LEVELS);
    }

    #[test]
    fn batch_builder_collapses_adaptive_range() {
        let c = ZmsqConfig::default().adaptive_batch(4, 64).batch(8);
        assert_eq!((c.batch_min, c.batch, c.batch_max), (8, 8, 8));
        assert!(!c.is_adaptive());
    }

    #[test]
    fn adaptive_batch_clamps_start_into_range() {
        let c = ZmsqConfig::default().batch(100).adaptive_batch(4, 16);
        assert_eq!((c.batch_min, c.batch, c.batch_max), (4, 16, 16));
        assert!(c.is_adaptive());
        let c = ZmsqConfig::default().batch(1).adaptive_batch(4, 16);
        assert_eq!(c.batch, 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "batch_min")]
    fn adaptive_batch_inverted_range_asserts() {
        let _ = ZmsqConfig::default().adaptive_batch(16, 4);
    }

    #[test]
    fn normalization_repairs_inverted_range() {
        // Struct-literal escape hatch around the builder's debug_assert.
        let c = ZmsqConfig {
            batch: 8,
            batch_min: 32,
            batch_max: 4,
            ..ZmsqConfig::recommended()
        }
        .normalized();
        assert!(c.batch_min <= c.batch && c.batch <= c.batch_max);
        assert_eq!((c.batch_min, c.batch, c.batch_max), (4, 8, 32));
    }

    #[test]
    fn normalization_caps_adaptive_range_at_refill_supply() {
        let c = ZmsqConfig::default()
            .target_len(8)
            .adaptive_batch(4, 10_000)
            .normalized();
        assert_eq!(c.batch_max, 16, "batch_max capped at 2 * target_len");
        assert!(c.batch <= c.batch_max);
    }

    #[test]
    fn normalization_widens_range_around_literal_batch() {
        // A struct-literal user setting only `batch` must keep it.
        let c = ZmsqConfig {
            batch: 8,
            ..ZmsqConfig::recommended()
        }
        .normalized();
        assert_eq!(c.batch, 8);
        assert!(c.batch_min <= 8 && c.batch_max >= 8);
    }

    #[test]
    fn normalization_strict_collapses_range() {
        let c = ZmsqConfig {
            batch: 0,
            batch_min: 4,
            batch_max: 16,
            ..ZmsqConfig::recommended()
        }
        .normalized();
        assert_eq!((c.batch_min, c.batch, c.batch_max), (0, 0, 0));
        // And a live range never adapts down into strict mode.
        let c = ZmsqConfig {
            batch: 8,
            batch_min: 0,
            batch_max: 16,
            ..ZmsqConfig::recommended()
        }
        .normalized();
        assert_eq!(c.batch_min, 1);
    }

    #[test]
    fn adaptive_after_strict_reenables_pool() {
        let c = ZmsqConfig::strict().adaptive_batch(4, 16).normalized();
        assert_eq!((c.batch_min, c.batch, c.batch_max), (4, 4, 16));
        assert!(c.is_adaptive());
    }

    #[test]
    fn capacity_defaults_off_and_clamps() {
        let c = ZmsqConfig::default();
        assert_eq!(c.capacity, None);
        assert_eq!(c.shed, ShedPolicy::Block);
        let c = ZmsqConfig::default().capacity(0).normalized();
        assert_eq!(c.capacity, Some(1), "zero capacity clamped to 1");
        let c = ZmsqConfig::default()
            .capacity(64)
            .shed_policy(ShedPolicy::ShedLowest)
            .normalized();
        assert_eq!(c.capacity, Some(64));
        assert_eq!(c.shed, ShedPolicy::ShedLowest);
        let c = ZmsqConfig::default().capacity(8).unbounded().normalized();
        assert_eq!(c.capacity, None, "unbounded() removes the bound");
    }

    #[test]
    fn sojourn_defaults_on_and_clamps() {
        assert_eq!(ZmsqConfig::default().sojourn, Some(6));
        let c = ZmsqConfig::default().no_sojourn();
        assert_eq!(c.sojourn, None);
        assert_eq!(c.normalized().sojourn, None);
        let c = ZmsqConfig::default().sojourn(0).normalized();
        assert_eq!(c.sojourn, Some(0));
        let c = ZmsqConfig::default().sojourn(99).normalized();
        assert_eq!(c.sojourn, Some(32), "shift clamped to 32");
    }

    #[test]
    fn rank_estimator_defaults_on_and_clamps() {
        assert_eq!(ZmsqConfig::default().rank_estimator, Some(6));
        let c = ZmsqConfig::default().no_rank_estimator();
        assert_eq!(c.rank_estimator, None);
        assert_eq!(c.normalized().rank_estimator, None);
        let c = ZmsqConfig::default().rank_estimator(0).normalized();
        assert_eq!(c.rank_estimator, Some(0));
        let c = ZmsqConfig::default().rank_estimator(99).normalized();
        assert_eq!(c.rank_estimator, Some(32), "shift clamped to 32");
    }

    #[test]
    fn builder_chain() {
        let c = ZmsqConfig::default()
            .batch(8)
            .target_len(16)
            .reclamation(Reclamation::Leak)
            .lock_strategy(LockStrategy::Blocking)
            .blocking(true);
        assert_eq!(c.batch, 8);
        assert_eq!(c.target_len, 16);
        assert_eq!(c.reclamation, Reclamation::Leak);
        assert_eq!(c.lock_strategy, LockStrategy::Blocking);
        assert!(c.blocking);
    }
}
