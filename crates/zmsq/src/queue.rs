//! The ZMSQ queue: insertion (Listing 1), extraction (Listing 2), the
//! concurrency protocol (§3.4) and blocking (§3.6).
//!
//! # Locking protocol (§3.4)
//!
//! Every `TNode` has a lock; a node is only mutated under its lock, while
//! the cached `max`/`min`/`count` may be read optimistically. **Parents
//! are always locked before children** — insertion locks `(parent, node)`,
//! extraction and splitting lock a node then its children — so every lock
//! acquisition sequence descends the tree and deadlock is impossible.
//! Optimistic decisions are re-validated after locking; failed validation
//! restarts the operation (usually on a different random path, §4.1).
//!
//! # The emptiness guarantee
//!
//! ZMSQ reports empty only when it *is* empty. The structural invariant
//! making the check O(1) is: **a nonempty node never has an empty
//! ancestor** (equivalently, the mound property with empty = −∞). Inserts
//! preserve it by validating `parent.max > prio` (so the parent is
//! nonempty) before inserting below the root; extraction's swap-down
//! keeps pulling a nonempty child's set upward into an emptied node until
//! the empty set rests above empty children. Hence, under the root lock,
//! `root.count == 0` plus an exhausted pool proves the queue empty.
//!
//! # Panic safety
//!
//! A panic while holding a `TNode` lock would classically wedge the tree:
//! every later operation touching that node spins forever. Two scope
//! guards harden the locked windows:
//!
//! * [`UnwindUnlock`] — for insertion windows, where partial mutations
//!   are always repairable per node (elements are only ever *added*,
//!   under a bound validated against the locked parent). On unwind it
//!   recomputes each held node's cached `max`/`min`/`count` from its set
//!   and releases the lock, so the tree stays fully usable. The
//!   in-flight element is dropped by the unwind — lost to the panic, as
//!   any panicking call loses its arguments — but nothing already in the
//!   queue is affected.
//! * [`AbortOnUnwind`] — for multi-node critical sections (swap-down,
//!   split, the root-extraction refill), whose mid-window states can
//!   violate cross-node invariants (mound property, emptiness chain)
//!   that no local cleanup can restore. A panic there escalates to
//!   `abort`: a loud crash beats a silently corrupt or wedged queue.
//!
//! # Fault injection (`--features fault-inject`)
//!
//! * `queue.insert.locked-panic` — fires inside the node-locked windows
//!   of `regular_insert`, `forced_insert` and `bulk_insert_at`, after
//!   validation and before mutation. With `Action::Panic` it proves
//!   [`UnwindUnlock`] releases the locks: the queue must remain fully
//!   operational afterwards.
//! * `queue.extract.locked-panic` — fires under the root lock, after
//!   the emptiness/threshold checks and before any mutation. A panic
//!   here must release the root and lose nothing.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use pq_traits::InsertError;
use zmsq_sync::{
    Backoff, CachePadded, EventBuffer, ProducerWait, RawTryLock, TatasLock, WaitOutcome,
};

use crate::config::{LockStrategy, ShedPolicy, ZmsqConfig};
use crate::pool::Pool;
use crate::rng;
use crate::set::{ListSet, NodeSet};
use crate::stats::{Stats, StatsSnapshot};
use crate::tnode::TNode;
use crate::tree::{Pos, Tree};

/// Forced (non-max) insertion is forbidden at levels `<=` this bound
/// (Listing 1 line 8: `level > 3`), because parking a low-priority element
/// high in the tree would let it reach the pool too early.
const FORCE_MIN_LEVEL: usize = 3;

/// Lock-wait attribution site for the root lock (see
/// [`zmsq_sync::site`]): the root is the queue's serialization point,
/// so `sync.wait_ns{site=zmsq.root}` is the headline contention signal.
fn root_site() -> zmsq_sync::SiteId {
    static S: std::sync::OnceLock<zmsq_sync::SiteId> = std::sync::OnceLock::new();
    *S.get_or_init(|| zmsq_sync::site::register("zmsq.root"))
}

/// Lock-wait attribution site for non-root tree-node locks (insertion
/// probing, splits).
fn node_site() -> zmsq_sync::SiteId {
    static S: std::sync::OnceLock<zmsq_sync::SiteId> = std::sync::OnceLock::new();
    *S.get_or_init(|| zmsq_sync::site::register("zmsq.node"))
}

/// A practical, scalable, relaxed concurrent priority queue.
///
/// See the [crate docs](crate) for the algorithm overview. Type
/// parameters select the per-node set representation (`S`) and the node
/// lock (`L`); the aliases [`ZmsqList`](crate::ZmsqList) and
/// [`ZmsqArray`](crate::ZmsqArray) cover the paper's two variants.
pub struct Zmsq<V, S = ListSet<V>, L = TatasLock>
where
    V: Send,
    S: NodeSet<V>,
    L: RawTryLock,
{
    tree: Tree<V, S, L>,
    pool: Pool<V>,
    cfg: ZmsqConfig,
    /// Queue-wide node-storage arena. `()` for plain sets; the shared
    /// recycling slab for [`SlabSet`](crate::SlabSet), pre-sized to
    /// `cfg.capacity` so a bounded queue never grows it in steady state.
    arena: S::Arena,
    events: Option<EventBuffer>,
    /// Producer-side blocking, allocated iff `cfg.capacity` is set (all
    /// shed policies share it so `close()` and the waiter gauges are
    /// uniform; only `Block` actually parks on it).
    producer_wait: Option<ProducerWait>,
    /// Live-element count for capacity admission. Maintained as exactly
    /// `admitted inserts − extractions − evictions`, so at quiescence it
    /// equals the true queue length.
    occupancy: CachePadded<AtomicUsize>,
    stats: Stats,
    /// Online rank-error telemetry, allocated iff `cfg.rank_estimator`
    /// is set: a lock-free sampled shadow reservoir fed by every
    /// insert/extract path and exported as `quality.*` metrics.
    rank_est: Option<obs::RankEstimator>,
    /// Sampled sojourn-time telemetry, allocated iff `cfg.sojourn` is
    /// set: a lock-free stamp table recording enqueue→extract wall time
    /// into the `queue.sojourn_ns` histogram.
    sojourn: Option<obs::SojournTracker>,
    /// Effective refill batch, `cfg.batch_min ..= cfg.batch_max`. Equal
    /// to `cfg.batch` unless an adaptive controller (see `ShardedZmsq`)
    /// moves it at runtime.
    batch_cur: AtomicUsize,
    /// Scratch buffer for pool refills, guarded by the root lock.
    refill_scratch: UnsafeCell<Vec<(u64, V)>>,
}

// SAFETY: `refill_scratch` is only accessed while holding the root node's
// lock (see `extract_root`); all other shared state is internally
// synchronized (atomics, locks, the pool's own protocol).
unsafe impl<V: Send, S: NodeSet<V>, L: RawTryLock> Sync for Zmsq<V, S, L> {}
unsafe impl<V: Send, S: NodeSet<V>, L: RawTryLock> Send for Zmsq<V, S, L> {}

enum RootOutcome<V> {
    Got((u64, V)),
    Empty,
    /// Conditional extraction only: the global max is below the threshold.
    Below,
    Retry,
}

/// Unwind guard for insertion windows (see the module docs on panic
/// safety): while armed, a panic refreshes each held node's cache from
/// its set and releases its lock instead of wedging the tree.
///
/// Slots must be cleared (via [`UnwindUnlock::release`]) the moment a
/// lock is released normally or its ownership moves to a callee —
/// otherwise an unwind would unlock a lock this window no longer holds.
struct UnwindUnlock<'a, V: Send, S: NodeSet<V>, L: RawTryLock> {
    nodes: [Option<&'a TNode<V, S, L>>; 2],
}

impl<'a, V: Send, S: NodeSet<V>, L: RawTryLock> UnwindUnlock<'a, V, S, L> {
    fn one(node: &'a TNode<V, S, L>) -> Self {
        Self {
            nodes: [Some(node), None],
        }
    }

    fn two(node: &'a TNode<V, S, L>, parent: &'a TNode<V, S, L>) -> Self {
        Self {
            nodes: [Some(node), Some(parent)],
        }
    }

    /// Stop covering `node`: its lock was (or is about to be) released
    /// through the normal path, or a callee now owns it.
    fn release(&mut self, node: &TNode<V, S, L>) {
        for slot in &mut self.nodes {
            if slot.is_some_and(|n| std::ptr::eq(n, node)) {
                *slot = None;
            }
        }
    }
}

impl<V: Send, S: NodeSet<V>, L: RawTryLock> Drop for UnwindUnlock<'_, V, S, L> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        for node in self.nodes.into_iter().flatten() {
            // SAFETY: an armed slot means this thread still holds the
            // node's lock. The set itself is in a valid (if partially
            // mutated) state — std containers stay valid across a
            // panicking insert — so recomputing the cache restores every
            // per-node invariant before the lock is released.
            unsafe { node.refresh_cache() };
            node.unlock();
        }
        // The tree is usable again; preserve the flight recorder's view
        // of the moments leading up to the panic (no-op unless the
        // `obs-trace` feature compiled the recorder in).
        obs::recorder::dump_on_failure("zmsq-unwind-recovery");
    }
}

/// Escalates a panic inside a multi-node critical section to an abort.
/// Mid-window states there can violate cross-node invariants (mound
/// property, emptiness chain) that no local cleanup can restore.
struct AbortOnUnwind(&'static str);

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // Under the det harness the panic is already recorded as the
            // schedule's failure; park this vthread forever (leak
            // policy) rather than abort the exploration process. The
            // guard's contract holds either way: the mid-window queue
            // state is never observed again.
            det::det_unwind_park!();
            eprintln!(
                "fatal: panic inside zmsq critical section `{}`; \
                 aborting rather than leaving a corrupt queue",
                self.0
            );
            // Last words: flush the flight recorder so the post-mortem
            // shows what led here (no-op without `obs-trace`).
            obs::recorder::dump_on_failure(self.0);
            std::process::abort();
        }
    }
}

/// Distribution of set sizes over nonempty non-leaf nodes (§3.2's
/// stability metric). Obtained from [`Zmsq::set_size_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SetSizeStats {
    /// Number of nonempty non-leaf nodes sampled.
    pub nonempty_nodes: usize,
    /// Mean set size.
    pub mean: f64,
    /// Population standard deviation of set sizes.
    pub std_dev: f64,
    /// Smallest nonempty set.
    pub min: usize,
    /// Largest set.
    pub max: usize,
}

impl<V: Send, S: NodeSet<V>, L: RawTryLock> Zmsq<V, S, L> {
    /// Create a queue with the paper's recommended configuration
    /// (`batch = 48`, `target_len = 72`).
    pub fn new() -> Self {
        Self::with_config(ZmsqConfig::default())
    }

    /// Create a fixed-capacity queue whose slab (for slab-backed sets)
    /// is pre-allocated to `n` elements: with admission control keeping
    /// occupancy at or below `n`, steady-state operation performs zero
    /// allocator calls (`alloc.slab_grows` stays 0 — see
    /// [`slab_stats`](Self::slab_stats)). Admission defaults to
    /// [`ShedPolicy::Block`](crate::ShedPolicy::Block); compose with
    /// [`ZmsqConfig::shed_policy`] via `with_config` for other policies.
    pub fn bounded(n: usize) -> Self {
        Self::with_config(ZmsqConfig::default().capacity(n))
    }

    /// Create a queue with an explicit configuration.
    pub fn with_config(cfg: ZmsqConfig) -> Self {
        let cfg = cfg.normalized();
        let arena = S::new_arena(cfg.capacity.unwrap_or(0));
        Self {
            tree: Tree::new(cfg.initial_leaf_level, &arena),
            // The pool is allocated at the top of the adaptive range so a
            // widened batch never outgrows the (ConsumerWait) buffer;
            // batch_max == batch when adaptation is off.
            pool: Pool::new(cfg.batch_max, cfg.reclamation),
            events: cfg
                .blocking
                .then(|| EventBuffer::with_slots(cfg.event_slots)),
            producer_wait: cfg
                .capacity
                .is_some()
                .then(|| ProducerWait::with_slots(cfg.event_slots)),
            occupancy: CachePadded::new(AtomicUsize::new(0)),
            refill_scratch: UnsafeCell::new(Vec::with_capacity(cfg.batch_max)),
            batch_cur: AtomicUsize::new(cfg.batch),
            stats: Stats::default(),
            rank_est: cfg.rank_estimator.map(obs::RankEstimator::new),
            sojourn: cfg.sojourn.map(obs::SojournTracker::new),
            cfg,
            arena,
        }
    }

    /// The attached rank-error estimator, if `cfg.rank_estimator` is set.
    pub fn rank_estimator(&self) -> Option<&obs::RankEstimator> {
        self.rank_est.as_ref()
    }

    /// The attached sojourn-time tracker, if `cfg.sojourn` is set.
    pub fn sojourn_tracker(&self) -> Option<&obs::SojournTracker> {
        self.sojourn.as_ref()
    }

    /// The queue's (normalized) configuration.
    pub fn config(&self) -> &ZmsqConfig {
        &self.cfg
    }

    /// Snapshot of the operation counters. For slab-backed sets the
    /// arena's allocation counters are merged in (`slab_hits`,
    /// `slab_grows`).
    pub fn stats(&self) -> StatsSnapshot {
        let mut s = self.stats.snapshot();
        if let Some(sl) = S::arena_stats(&self.arena) {
            s.slab_hits = sl.hits;
            s.slab_grows = sl.grows;
        }
        s
    }

    /// Allocation counters of the node-storage slab, or `None` for set
    /// representations that allocate per element (list/array/deque).
    pub fn slab_stats(&self) -> Option<crate::slab::SlabStats> {
        S::arena_stats(&self.arena)
    }

    /// Best-effort size (inserts minus extractions; exact when quiescent).
    pub fn len_hint(&self) -> usize {
        let snap = &self.stats;
        snap.inserts.sum().saturating_sub(snap.extracts.sum()) as usize
    }

    /// Optimistic hint of the current maximum priority (the root's cached
    /// max). Exact on a quiescent queue; under concurrency it is a racy
    /// snapshot, and elements recently moved to the extraction pool are
    /// not reflected. `None` means the *tree* looked empty.
    pub fn peek_max_hint(&self) -> Option<u64> {
        self.tree.root().max_key()
    }

    /// Pool buffers leaked so far ([`Reclamation::Leak`](crate::Reclamation::Leak) mode only).
    pub fn leaked_buffers(&self) -> u64 {
        self.pool.leaked_count()
    }

    /// The effective pool-refill batch currently in force. Equals
    /// `config().batch` unless [`set_current_batch`](Self::set_current_batch)
    /// moved it (e.g. `ShardedZmsq`'s adaptive controller).
    pub fn current_batch(&self) -> usize {
        self.batch_cur.load(Ordering::Relaxed)
    }

    /// Set the effective pool-refill batch, clamped into the configured
    /// `batch_min ..= batch_max` range; returns the value actually
    /// applied. A no-op (returning 0) on a strict queue (`batch == 0`).
    ///
    /// Safe to call at any time from any thread: the value is read once
    /// per refill under the root lock, and the pool's buffer is allocated
    /// at `batch_max`, so any in-range value fits.
    pub fn set_current_batch(&self, n: usize) -> usize {
        if self.cfg.batch_max == 0 {
            return 0;
        }
        let applied = n.clamp(self.cfg.batch_min.max(1), self.cfg.batch_max);
        self.batch_cur.store(applied, Ordering::Relaxed);
        applied
    }

    // ------------------------------------------------------------------
    // Insertion (Listing 1)
    // ------------------------------------------------------------------

    /// Insert `value` with priority `prio`. Never fails; restarts
    /// internally on validation conflicts.
    ///
    /// On a capacity-bounded queue ([`ZmsqConfig::capacity`]) the call
    /// first passes admission control per the configured
    /// [`ShedPolicy`]: `Block` parks the producer until an extraction
    /// frees room (or the queue closes, which force-admits — an
    /// infallible insert never silently drops its element), `Reject`
    /// drops the incoming element, `ShedLowest` evicts a lower-priority
    /// element from deep in the tree to make room (shedding the incoming
    /// element instead when no victim is found). Use
    /// [`try_insert`](Self::try_insert) or
    /// [`insert_timeout`](Self::insert_timeout) to keep the rejected
    /// element.
    pub fn insert(&self, prio: u64, value: V) {
        let _op = obs::span!(obs::SpanPhase::Insert);
        let Some(cap) = self.cfg.capacity else {
            self.insert_admitted(prio, value);
            return;
        };
        loop {
            let admitted = {
                let _adm = obs::span!(obs::SpanPhase::Admission);
                self.try_admit(cap)
            };
            if admitted {
                self.insert_admitted(prio, value);
                return;
            }
            self.stats.capacity_hits.incr();
            match self.cfg.shed {
                ShedPolicy::Reject => {
                    self.stats.shed_rejected.incr();
                    obs::trace_event!(obs::EventKind::Insert, 2, prio);
                    return; // drops `value`
                }
                ShedPolicy::ShedLowest => {
                    if self.try_evict_lowest(prio) {
                        // The victim's reservation transfers to us:
                        // occupancy is net unchanged.
                        self.insert_admitted(prio, value);
                    } else {
                        self.stats.shed_rejected.incr();
                        obs::trace_event!(obs::EventKind::Insert, 2, prio);
                    }
                    return;
                }
                ShedPolicy::Block => {
                    let _adm = obs::span!(obs::SpanPhase::Admission);
                    let pw = self.producer_wait.as_ref().expect("capacity set");
                    self.stats.producer_waits.incr();
                    match pw.wait_for_room(|| self.has_room(cap)) {
                        WaitOutcome::Closed => {
                            // Closed queues stop enforcing capacity: the
                            // element is force-admitted so the infallible
                            // contract ("never fails") holds to the end.
                            self.occupancy.fetch_add(1, Ordering::SeqCst);
                            self.insert_admitted(prio, value);
                            return;
                        }
                        WaitOutcome::TimedOut => unreachable!("untimed wait"),
                        WaitOutcome::Ready | WaitOutcome::Woken => {}
                    }
                }
            }
        }
    }

    /// The insertion path proper, after (or without) capacity admission.
    fn insert_admitted(&self, prio: u64, value: V) {
        det::det_point!("zmsq.insert");
        // Every path below ends with the element inserted (the retry
        // loop is infallible), so the shadow sample is noted up front.
        if let Some(est) = &self.rank_est {
            est.note_insert(prio);
        }
        if let Some(soj) = &self.sojourn {
            soj.note_insert(prio);
        }
        // Experimental §5 fast path: high-priority elements go straight
        // into the extraction pool when it has headroom, skipping the
        // tree entirely. Falls through to the normal path on any
        // conflict (the element is handed back untouched).
        let mut value = value;
        if self.cfg.pool_fast_insert {
            match self.pool.try_fast_insert(prio, value) {
                Ok(()) => {
                    self.stats.fast_pool_inserts.incr();
                    self.stats.inserts.incr();
                    obs::trace_event!(obs::EventKind::Insert, 1, prio);
                    if let Some(ev) = &self.events {
                        ev.signal();
                    }
                    return;
                }
                Err((_, v)) => value = v,
            }
        }
        let _walk = obs::span!(obs::SpanPhase::TreeWalk);
        let mut consecutive_failures = 0u32;
        loop {
            match self.insert_attempt(prio, value) {
                Ok(()) => break,
                Err(v) => {
                    self.stats.insert_retries.incr();
                    value = v;
                    // §4.1's immediate-retry strategy assumes the lock
                    // holder runs on another core. When threads
                    // outnumber cores, spinning through restarts starves
                    // the holder, so yield after a sustained streak.
                    consecutive_failures += 1;
                    if consecutive_failures.is_multiple_of(32) {
                        std::thread::yield_now();
                    }
                }
            }
        }
        self.stats.inserts.incr();
        obs::trace_event!(obs::EventKind::Insert, 0, prio);
        if let Some(ev) = &self.events {
            ev.signal();
        }
    }

    /// Bulk insertion: drain `items` into the queue, inserting sorted
    /// chunks of up to `target_len` elements per node-lock acquisition.
    ///
    /// ```
    /// use zmsq::Zmsq;
    /// let q: Zmsq<u64> = Zmsq::new();
    /// let mut burst: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
    /// q.insert_batch(&mut burst);
    /// assert!(burst.is_empty());
    /// assert_eq!(q.len_hint(), 100);
    /// ```
    ///
    /// Amortizes the traversal + locking cost of [`Zmsq::insert`] across
    /// a chunk — useful for producers that generate work in bursts. Each
    /// chunk is placed by its *maximum* priority exactly like a regular
    /// insertion (validated under the parent/node locks), so all tree
    /// invariants hold; chunk elements below the node's previous maximum
    /// simply join the set as non-max elements. Quality note: for
    /// adversarial distributions, chunking can park low elements slightly
    /// higher in the tree than element-wise insertion would.
    pub fn insert_batch(&self, items: &mut Vec<(u64, V)>) {
        if self.cfg.capacity.is_some() {
            // Bounded queues apply admission (and the shed policy)
            // per element; chunked placement would have to carve a
            // multi-slot reservation out of the budget mid-shed, for a
            // path whose point is amortizing *lock* traffic.
            for (prio, value) in items.drain(..) {
                self.insert(prio, value);
            }
            return;
        }
        items.sort_unstable_by_key(|&(k, _)| k);
        while !items.is_empty() {
            let take = items.len().min(self.cfg.target_len.max(1));
            let start = items.len() - take;
            let chunk_max = items.last().expect("nonempty").0;
            if let Some(est) = &self.rank_est {
                // The placement loop below is infallible: every chunk
                // element will be inserted exactly once.
                for &(k, _) in &items[start..] {
                    est.note_insert(k);
                }
            }
            if let Some(soj) = &self.sojourn {
                for &(k, _) in &items[start..] {
                    soj.note_insert(k);
                }
            }
            loop {
                // `allow_force = false`: a forced position only admits
                // *non-max* elements one at a time, which the chunked
                // placement below cannot honour — accepting one here
                // would spin forever re-validating an impossible fit.
                let (pos, _) = self.select_position(chunk_max, false);
                let target = self.search_root_path(pos, chunk_max);
                if self.bulk_insert_at(target, chunk_max, items, start) {
                    break;
                }
                self.stats.insert_retries.incr();
            }
            self.stats.inserts.add(take as u64);
            if let Some(ev) = &self.events {
                // One signal per element: up to `take` parked consumers
                // now have work.
                for _ in 0..take {
                    ev.signal();
                }
            }
        }
    }

    /// Place `items[start..]` (sorted ascending, maximum `chunk_max`)
    /// into the node at `pos`, under the same validation as
    /// `regular_insert`. Returns false to restart.
    fn bulk_insert_at(
        &self,
        pos: Pos,
        chunk_max: u64,
        items: &mut Vec<(u64, V)>,
        start: usize,
    ) -> bool {
        let node = self.tree.node(pos);
        if pos.0 == 0 {
            if !self.acquire(node) {
                return false;
            }
            if node.count() > 0 && node.max_key() > Some(chunk_max) {
                node.unlock();
                return false;
            }
        } else {
            let parent = self.tree.node(Tree::<V, S, L>::parent(pos));
            if !self.acquire(parent) {
                return false;
            }
            if !self.acquire(node) {
                parent.unlock();
                return false;
            }
            let fits = (node.count() == 0 || node.max_key() <= Some(chunk_max))
                && parent.max_key() > Some(chunk_max);
            if !fits {
                node.unlock();
                parent.unlock();
                return false;
            }
            parent.unlock();
        }
        let mut unwind = UnwindUnlock::one(node);
        fault::fail_point!("queue.insert.locked-panic");
        // SAFETY: node locked.
        unsafe {
            let set = node.set_mut();
            for (k, v) in items.drain(start..) {
                set.insert(k, v);
            }
            node.refresh_cache();
        }
        unwind.release(node); // finish_insert owns the lock now
        self.finish_insert(pos, node);
        true
    }

    /// One optimistic placement attempt; `Err` hands the element back
    /// for a restart (this is *not* the fallible capacity-aware
    /// [`try_insert`](Self::try_insert)).
    fn insert_attempt(&self, prio: u64, value: V) -> Result<(), V> {
        let (pos, force) = self.select_position(prio, true);
        if force {
            return self.forced_insert(pos, prio, value);
        }
        let target = self.search_root_path(pos, prio);
        self.regular_insert(target, prio, value)
    }

    /// `selectPosition`: probe random leaves for either (a) a leaf whose
    /// max is `<= prio` — then a binary search up the root path finds the
    /// insertion node — or (b) with `allow_force`, a deep, under-full
    /// leaf accepting `prio` as a non-max element. After `leaf_level`
    /// failed probes, expand. Callers that cannot perform a forced
    /// (non-max) placement — the chunked [`insert_batch`] path — pass
    /// `allow_force = false` so the probe loop keeps searching (and
    /// growing) instead of handing them a position they cannot use.
    ///
    /// [`insert_batch`]: Self::insert_batch
    fn select_position(&self, prio: u64, allow_force: bool) -> (Pos, bool) {
        loop {
            let leaf = self.tree.leaf_level();
            for _ in 0..leaf.max(1) * self.cfg.probe_factor {
                let slot = rng::next_index(1usize << leaf);
                let node = self.tree.node((leaf, slot));
                // Empty max is None (−∞): an empty leaf always qualifies.
                if node.max_key() <= Some(prio) || node.count() == 0 {
                    return ((leaf, slot), false);
                }
                if allow_force
                    && self.cfg.quality.forced_insert
                    && leaf > FORCE_MIN_LEVEL
                    && node.count() < self.cfg.target_len
                {
                    return ((leaf, slot), true);
                }
            }
            let grown = self.tree.grow(leaf, &self.arena);
            if grown > leaf {
                self.stats.tree_grows.incr();
                obs::trace_event!(obs::EventKind::TreeGrow, grown as u32);
            } else if grown == leaf && self.tree.is_saturated() {
                // Saturated and no good leaf found: fall back to a random
                // leaf on the regular path — the binary search will place
                // the element as some ancestor's new max (possibly making
                // an oversized set; quality loss only).
                return ((leaf, rng::next_index(1usize << leaf)), false);
            }
        }
    }

    /// Binary search the root path for the shallowest node whose max is
    /// `<= prio` — the candidate that makes `prio` a new maximum without
    /// violating its parent (§3.1: the level-array layout exists for
    /// exactly this search). Racy by design; the result is re-validated
    /// under locks.
    fn search_root_path(&self, pos: Pos, prio: u64) -> Pos {
        let (mut lo, mut hi) = (0usize, pos.0);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let node = self
                .tree
                .node((mid, Tree::<V, S, L>::ancestor_slot(pos, mid)));
            let fits = node.count() == 0 || node.max_key() <= Some(prio);
            if fits {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        (lo, Tree::<V, S, L>::ancestor_slot(pos, lo))
    }

    /// `forcedInsert`: add `prio` as a *non-max* element of a deep,
    /// under-full, nonempty node. Only the node's own lock is needed —
    /// its cached max (and thus all tree invariants) are untouched.
    fn forced_insert(&self, pos: Pos, prio: u64, value: V) -> Result<(), V> {
        let node = self.tree.node(pos);
        if !self.acquire(node) {
            return Err(value);
        }
        let mut unwind = UnwindUnlock::one(node);
        // Re-validate: still nonempty, still under-full, still not a max.
        // Listing 1 line 39 fails only when `count > targetLen`, so a
        // node at exactly targetLen still accepts (filling to target+1).
        let ok =
            node.count() > 0 && node.count() <= self.cfg.target_len && Some(prio) <= node.max_key();
        if !ok {
            node.unlock();
            return Err(value);
        }
        fault::fail_point!("queue.insert.locked-panic");
        // SAFETY: lock held.
        unsafe {
            node.set_mut().insert(prio, value);
            node.cache_after_insert(prio);
        }
        unwind.release(node);
        node.unlock();
        self.stats.forced_inserts.incr();
        Ok(())
    }

    /// `regularInsert`: make `prio` the new maximum of the target node,
    /// with the parent locked to pin `parent.max > prio` (§3.4 form 2),
    /// applying the parent-min quality swap (§3.2) when profitable.
    fn regular_insert(&self, pos: Pos, prio: u64, value: V) -> Result<(), V> {
        let node = self.tree.node(pos);

        if pos.0 == 0 {
            // Root: no parent constraint; `prio` must still be >= max.
            if !self.acquire(node) {
                return Err(value);
            }
            let mut unwind = UnwindUnlock::one(node);
            if node.count() > 0 && node.max_key() > Some(prio) {
                node.unlock();
                return Err(value);
            }
            fault::fail_point!("queue.insert.locked-panic");
            // SAFETY: lock held.
            unsafe {
                node.set_mut().insert(prio, value);
                node.cache_after_insert(prio);
            }
            unwind.release(node); // finish_insert owns the lock now
            self.finish_insert(pos, node);
            return Ok(());
        }

        let ppos = Tree::<V, S, L>::parent(pos);
        let parent = self.tree.node(ppos);
        // Lock order: parent before child, always.
        if !self.acquire(parent) {
            return Err(value);
        }
        if !self.acquire(node) {
            parent.unlock();
            return Err(value);
        }
        let mut unwind = UnwindUnlock::two(node, parent);
        // Validate the optimistic placement: prio becomes node's max and
        // stays below the parent's max (which also proves the parent is
        // nonempty, preserving the emptiness chain).
        let fits_node = node.count() == 0 || node.max_key() <= Some(prio);
        let below_parent = parent.max_key() > Some(prio);
        if !fits_node || !below_parent {
            node.unlock();
            parent.unlock();
            return Err(value);
        }

        fault::fail_point!("queue.insert.locked-panic");

        // Quality optimization (§3.2, Fig. 1): if the parent's min is
        // below prio, putting prio in the *parent* and demoting the
        // parent's min tightens the parent's range at no extra locking.
        let parent_min = parent.min_key();
        if self.cfg.quality.parent_min_swap && parent_min.is_some_and(|pm| pm < prio) {
            debug_assert!(parent.count() >= 2, "min < prio < max needs two elements");
            // SAFETY: both locks held.
            unsafe {
                let (demoted_prio, demoted_val) =
                    parent.set_mut().remove_min().expect("parent nonempty");
                parent.set_mut().insert(prio, value);
                parent.refresh_cache();
                node.set_mut().insert(demoted_prio, demoted_val);
                node.refresh_cache();
            }
            self.stats.min_swap_inserts.incr();
            unwind.release(parent);
            parent.unlock();
            unwind.release(node); // finish_insert owns the lock now
            self.finish_insert(pos, node);
            return Ok(());
        }

        // Plain form: insert as the node's new maximum.
        // SAFETY: lock held.
        unsafe {
            node.set_mut().insert(prio, value);
            node.cache_after_insert(prio);
        }
        unwind.release(parent);
        parent.unlock();
        unwind.release(node); // finish_insert owns the lock now
        self.finish_insert(pos, node);
        Ok(())
    }

    /// Post-insert bookkeeping with `node` (at `pos`) still locked:
    /// split oversized sets downward, then release.
    fn finish_insert(&self, pos: Pos, node: &TNode<V, S, L>) {
        if node.count() > 2 * self.cfg.target_len {
            self.split_down(pos);
        } else {
            node.unlock();
        }
    }

    /// Split an oversized set: keep the upper half in place, merge the
    /// lower half into the children (locked before the parent unlocks so
    /// no extraction can observe the pre-split child with the post-split
    /// parent — §3.4 form 3). Recurses if a child overflows in turn.
    ///
    /// Precondition: the node at `pos` is locked; this call unlocks it.
    fn split_down(&self, pos: Pos) {
        // A panic mid-split leaves demoted elements split across parent
        // and children with stale caches on several nodes — abort.
        let _critical = AbortOnUnwind("split_down");
        let node = self.tree.node(pos);
        if node.count() <= 2 * self.cfg.target_len {
            node.unlock();
            return;
        }
        // Make sure children exist. If the tree is saturated (degenerate
        // configs with tiny target_len can dig split cascades arbitrarily
        // deep), keep the oversized set instead — a quality concession,
        // never a correctness one.
        while self.tree.leaf_level() <= pos.0 {
            let before = self.tree.leaf_level();
            if self.tree.grow(before, &self.arena) == before {
                node.unlock();
                return;
            }
            self.stats.tree_grows.incr();
        }
        let (lp, rp) = Tree::<V, S, L>::children(pos);
        let (left, right) = (self.tree.node(lp), self.tree.node(rp));
        // Blocking acquisition is deadlock-free here: we hold the parent
        // and every lock sequence in the queue descends the tree.
        let _site = zmsq_sync::site::enter(node_site());
        left.lock();
        right.lock();

        // SAFETY: node locked.
        let lower = unsafe {
            let lower = node.set_mut().split_lower_half();
            node.refresh_cache();
            lower
        };
        node.unlock();
        self.stats.splits.incr();
        obs::trace_event!(obs::EventKind::Split, pos.0 as u32);

        // Distribute the demoted elements across both children. Their
        // maxes can only grow up to the parent's kept minimum, so the
        // mound invariant survives.
        // SAFETY: both child locks held.
        unsafe {
            let (ls, rs) = (left.set_mut(), right.set_mut());
            for (i, (k, v)) in lower.into_iter().enumerate() {
                if i % 2 == 0 {
                    ls.insert(k, v);
                } else {
                    rs.insert(k, v);
                }
            }
            left.refresh_cache();
            right.refresh_cache();
        }

        let cap = 2 * self.cfg.target_len;
        let l_over = left.count() > cap;
        let r_over = right.count() > cap;
        if !r_over {
            right.unlock();
        }
        if l_over {
            self.split_down(lp); // unlocks left
        } else {
            left.unlock();
        }
        if r_over {
            self.split_down(rp); // unlocks right
        }
    }

    // ------------------------------------------------------------------
    // Capacity, backpressure and shedding
    // ------------------------------------------------------------------

    /// Reserve one occupancy slot if the queue is below `cap`.
    fn try_admit(&self, cap: usize) -> bool {
        let admitted = self
            .occupancy
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |o| {
                (o < cap).then_some(o + 1)
            })
            .is_ok();
        if admitted {
            // Widen the window between reservation and tree insertion so
            // chaos tests can race extractions against half-admitted
            // elements.
            fault::fail_point!("queue.capacity.race");
        }
        admitted
    }

    #[inline]
    fn has_room(&self, cap: usize) -> bool {
        self.occupancy.load(Ordering::SeqCst) < cap
    }

    /// Return `n` occupancy slots after extraction and wake parked
    /// producers. The release happens *before* the signal so a woken
    /// producer's `has_room` re-check observes the freed slots.
    #[inline]
    fn release_capacity(&self, n: usize) {
        if self.cfg.capacity.is_none() || n == 0 {
            return;
        }
        fault::fail_point!("queue.capacity.race");
        self.occupancy.fetch_sub(n, Ordering::SeqCst);
        if let Some(pw) = &self.producer_wait {
            for _ in 0..n {
                pw.signal();
            }
        }
    }

    /// `ShedLowest` eviction: drop one element with priority `< below`
    /// from as deep in the tree as possible, freeing its occupancy slot
    /// for the caller (a reservation transfer — occupancy is *not*
    /// decremented). Best-effort: probes a bounded number of random
    /// nodes per level, deepest level first; returns `false` when no
    /// victim was validated, and the caller sheds the incoming element
    /// instead.
    fn try_evict_lowest(&self, below: u64) -> bool {
        let leaf = self.tree.leaf_level();
        for level in (0..=leaf).rev() {
            let width = 1usize << level;
            let probes = width.min(8 * self.cfg.probe_factor.max(1));
            for _ in 0..probes {
                let pos = (level, rng::next_index(width));
                // Racy pre-screen; re-validated under the node lock.
                if self.tree.node(pos).min_key().is_some_and(|m| m < below)
                    && self.try_evict_at(pos, below)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Evict this node's minimum if, under the lock, it is still below
    /// the threshold *and* removal cannot empty a node that has nonempty
    /// children (which would break the emptiness chain). A node with one
    /// element is only a valid victim when both children are empty —
    /// and they stay empty while we hold this lock, because every path
    /// that fills an empty node locks its parent first (regular/bulk
    /// insert) or requires a nonempty target (forced insert).
    fn try_evict_at(&self, pos: Pos, below: u64) -> bool {
        let node = self.tree.node(pos);
        if !self.acquire(node) {
            return false;
        }
        let unwind = UnwindUnlock::one(node);
        let viable = node.min_key().is_some_and(|m| m < below)
            && (node.count() >= 2 || self.children_empty(pos));
        if !viable {
            drop(unwind);
            node.unlock();
            return false;
        }
        // SAFETY: node locked.
        let victim_key = unsafe {
            let victim = node.set_mut().remove_min().expect("count > 0");
            let key = victim.0;
            drop(victim);
            node.refresh_cache();
            key
        };
        drop(unwind);
        node.unlock();
        if let Some(est) = &self.rank_est {
            // Evicted, not handed out: release the shadow slot without
            // recording a rank sample.
            est.note_remove(victim_key);
        }
        if let Some(soj) = &self.sojourn {
            // Likewise: an eviction is not a service completion, so the
            // stamp is released without recording a sojourn.
            soj.note_remove(victim_key);
        }
        self.stats.shed_evicted.incr();
        obs::trace_event!(obs::EventKind::Extract, 2, below);
        true
    }

    /// Whether both children of `pos` are empty. Unallocated levels
    /// (`pos` at or below the current leaf level) count as empty: nodes
    /// there cannot be filled while the caller holds `pos`'s lock.
    fn children_empty(&self, pos: Pos) -> bool {
        if pos.0 >= self.tree.leaf_level() {
            return true;
        }
        let (lp, rp) = Tree::<V, S, L>::children(pos);
        self.tree.node(lp).count() == 0 && self.tree.node(rp).count() == 0
    }

    /// Fallible insert: apply capacity admission once and hand the
    /// element back instead of blocking or dropping it.
    ///
    /// * Unbounded queues always admit.
    /// * [`InsertError::Closed`] after [`Zmsq::close`] on a bounded queue.
    /// * Under `ShedLowest`, a successful eviction admits the element;
    ///   otherwise [`InsertError::Full`] returns it (nothing is shed —
    ///   the caller keeps the element, unlike [`Zmsq::insert`]).
    /// * Under `Block`/`Reject`, a full queue returns
    ///   [`InsertError::Full`] immediately (no parking).
    #[must_use = "the rejected element is inside the error; dropping it loses work"]
    pub fn try_insert(&self, prio: u64, value: V) -> Result<(), InsertError<V>> {
        let Some(cap) = self.cfg.capacity else {
            self.insert_admitted(prio, value);
            return Ok(());
        };
        if self.producer_wait.as_ref().is_some_and(|pw| pw.is_closed()) {
            return Err(InsertError::Closed(value));
        }
        if self.try_admit(cap) {
            self.insert_admitted(prio, value);
            return Ok(());
        }
        self.stats.capacity_hits.incr();
        if self.cfg.shed == ShedPolicy::ShedLowest && self.try_evict_lowest(prio) {
            self.insert_admitted(prio, value);
            return Ok(());
        }
        Err(InsertError::Full(value))
    }

    /// [`try_insert`](Self::try_insert) that, under
    /// [`ShedPolicy::Block`], parks the producer up to `timeout` waiting
    /// for room. Other policies never block, so `Full` is returned
    /// immediately as in `try_insert`.
    #[must_use = "the rejected element is inside the error; dropping it loses work"]
    pub fn insert_timeout(
        &self,
        prio: u64,
        value: V,
        timeout: std::time::Duration,
    ) -> Result<(), InsertError<V>> {
        let value = match self.try_insert(prio, value) {
            Ok(()) => return Ok(()),
            Err(InsertError::Full(v)) if self.cfg.shed == ShedPolicy::Block => v,
            Err(e) => return Err(e),
        };
        let cap = self.cfg.capacity.expect("Full implies bounded");
        let pw = self.producer_wait.as_ref().expect("capacity set");
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.try_admit(cap) {
                self.insert_admitted(prio, value);
                return Ok(());
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(InsertError::Timeout(value));
            }
            self.stats.producer_waits.incr();
            match pw.wait_for_room_timeout(|| self.has_room(cap), remaining) {
                WaitOutcome::Closed => return Err(InsertError::Closed(value)),
                // The park consumed the whole remaining budget (timed
                // futex waits only time out at their deadline): one last
                // admission attempt so a last-instant release still wins,
                // then report the timeout. Returning here rather than
                // re-deriving from the wall clock keeps the loop finite
                // under virtual-time schedulers (`det`).
                WaitOutcome::TimedOut => {
                    if self.try_admit(cap) {
                        self.insert_admitted(prio, value);
                        return Ok(());
                    }
                    return Err(InsertError::Timeout(value));
                }
                WaitOutcome::Ready | WaitOutcome::Woken => {}
            }
        }
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.cfg.capacity
    }

    /// Current live-element count under capacity accounting (0 on
    /// unbounded queues — use [`len_hint`](Self::len_hint) there).
    pub fn occupancy(&self) -> usize {
        self.occupancy.load(Ordering::SeqCst)
    }

    /// Producers currently parked waiting for room.
    pub fn producer_waiters(&self) -> usize {
        self.producer_wait
            .as_ref()
            .map_or(0, |pw| pw.sleeper_count() as usize)
    }

    // ------------------------------------------------------------------
    // Extraction (Listing 2)
    // ------------------------------------------------------------------

    /// Extract a high-priority element.
    ///
    /// Returns `None` **only** when the queue was observed truly empty
    /// (root set empty under the root lock with the pool exhausted).
    /// With `batch = 0` the result is always the exact maximum.
    pub fn extract_max(&self) -> Option<(u64, V)> {
        det::det_point!("zmsq.extract");
        let _op = obs::span!(obs::SpanPhase::Extract);
        let mut backoff = Backoff::new();
        loop {
            // Fast path: claim from the shared pool.
            let claimed = {
                let _claim = obs::span!(obs::SpanPhase::PoolClaim);
                self.pool.try_claim()
            };
            if let Some(got) = claimed {
                self.stats.pool_hits.incr();
                self.stats.extracts.incr();
                obs::trace_event!(obs::EventKind::PoolHit, 0, got.0);
                self.note_extracted(got.0);
                self.release_capacity(1);
                return Some(got);
            }
            obs::trace_event!(obs::EventKind::PoolMiss);
            match self.extract_root() {
                RootOutcome::Got(got) => {
                    self.stats.extracts.incr();
                    obs::trace_event!(obs::EventKind::Extract, 0, got.0);
                    self.note_extracted(got.0);
                    self.release_capacity(1);
                    return Some(got);
                }
                RootOutcome::Empty => {
                    self.stats.empty_observed.incr();
                    return None;
                }
                RootOutcome::Below => unreachable!("no threshold was given"),
                RootOutcome::Retry => backoff.wait(),
            }
        }
    }

    /// Shadow-sample a handed-out element and close its sojourn stamp
    /// (no-ops when the respective telemetry is detached).
    #[inline]
    fn note_extracted(&self, key: u64) {
        if let Some(est) = &self.rank_est {
            est.note_extract(key);
        }
        if let Some(soj) = &self.sojourn {
            soj.note_extract(key);
        }
    }

    /// Batched extraction: append up to `n` high-priority elements to
    /// `out`, returning how many were extracted. Returns fewer than `n`
    /// **only** when the queue was observed truly empty mid-drain (the
    /// same guarantee as [`extract_max`](Self::extract_max)).
    ///
    /// ```
    /// use zmsq::Zmsq;
    /// let q: Zmsq<u64> = Zmsq::new();
    /// for i in 0..100 { q.insert(i, i); }
    /// let mut out = Vec::new();
    /// assert_eq!(q.extract_batch(&mut out, 30), 30);
    /// assert_eq!(q.extract_batch(&mut out, 100), 70);
    /// assert_eq!(q.extract_batch(&mut out, 1), 0);
    /// ```
    ///
    /// The fast path reserves up to `n` pool slots with a **single**
    /// `fetch_sub` — one contended RMW instead of `n` — so consumers that
    /// drain in bursts touch the shared pool index once per burst.
    /// Elements arrive in hand-out order (approximately descending, same
    /// relaxation as element-wise extraction).
    pub fn extract_batch(&self, out: &mut Vec<(u64, V)>, n: usize) -> usize {
        det::det_point!("zmsq.extract");
        let mut got = 0;
        let mut backoff = Backoff::new();
        while got < n {
            let claimed = self.pool.try_claim_many(out, n - got);
            if claimed > 0 {
                self.stats.pool_hits.add(claimed as u64);
                self.stats.extracts.add(claimed as u64);
                obs::trace_event!(obs::EventKind::PoolHit, claimed as u32);
                let start = out.len() - claimed;
                for key in out[start..].iter().map(|(k, _)| *k) {
                    self.note_extracted(key);
                }
                self.release_capacity(claimed);
                got += claimed;
                continue;
            }
            obs::trace_event!(obs::EventKind::PoolMiss);
            match self.extract_root() {
                RootOutcome::Got(item) => {
                    self.stats.extracts.incr();
                    obs::trace_event!(obs::EventKind::Extract, 0, item.0);
                    self.note_extracted(item.0);
                    self.release_capacity(1);
                    out.push(item);
                    got += 1;
                }
                RootOutcome::Empty => {
                    self.stats.empty_observed.incr();
                    break;
                }
                RootOutcome::Below => unreachable!("no threshold was given"),
                RootOutcome::Retry => backoff.wait(),
            }
        }
        got
    }

    /// Conditional extraction (§1: "non-blocking conditional
    /// extraction"): take a high-priority element only if its priority is
    /// at least `min_prio`.
    ///
    /// ```
    /// use zmsq::{Zmsq, ZmsqConfig};
    /// let q: Zmsq<&str> = Zmsq::with_config(ZmsqConfig::strict());
    /// q.insert(10, "routine");
    /// q.insert(90, "urgent");
    /// // Only take work that meets the urgency bar:
    /// assert_eq!(q.try_extract_if(50), Some((90, "urgent")));
    /// assert_eq!(q.try_extract_if(50), None); // 10 < 50 stays queued
    /// assert_eq!(q.len_hint(), 1);
    /// ```
    ///
    /// Semantics are relaxed, matching the queue: `Some` is always a
    /// qualifying element; `None` means *no qualifying element was
    /// readily available* — the pool's best remaining entry and (when the
    /// pool is empty) the root maximum were below the threshold. Deeper
    /// tree elements above the threshold cannot exist in quiescence
    /// (the mound invariant puts the global max at the root), but under
    /// concurrency a racing insert may be missed, exactly as a racing
    /// `extract_max` could have taken it.
    pub fn try_extract_if(&self, min_prio: u64) -> Option<(u64, V)> {
        use crate::pool::ClaimIf;
        let mut backoff = Backoff::new();
        loop {
            match self.pool.try_claim_if(min_prio) {
                ClaimIf::Got(got) => {
                    // An exhaust+refill ABA between peek and claim can
                    // hand us a below-threshold element; give it back.
                    // Straight to the admitted path: the element's
                    // occupancy reservation was never released, so
                    // re-running admission would double-count it (and
                    // could block or shed an element we must not lose).
                    if got.0 < min_prio {
                        // `insert_admitted` will note the key again, so
                        // release its existing shadow slot first (as a
                        // removal, not a hand-out: no rank sample) —
                        // otherwise one live element would occupy two
                        // reservoir slots.
                        if let Some(est) = &self.rank_est {
                            est.note_remove(got.0);
                        }
                        if let Some(soj) = &self.sojourn {
                            // The give-back re-inserts via
                            // `insert_admitted`, which will re-stamp;
                            // release the original stamp as a removal so
                            // the rollback never records a sojourn.
                            soj.note_remove(got.0);
                        }
                        self.insert_admitted(got.0, got.1);
                        return None;
                    }
                    self.stats.pool_hits.incr();
                    self.stats.extracts.incr();
                    self.note_extracted(got.0);
                    self.release_capacity(1);
                    return Some(got);
                }
                ClaimIf::Below => return None,
                ClaimIf::Exhausted => {}
            }
            match self.extract_root_cond(Some(min_prio)) {
                RootOutcome::Got(got) => {
                    self.stats.extracts.incr();
                    self.note_extracted(got.0);
                    self.release_capacity(1);
                    return Some(got);
                }
                RootOutcome::Empty => {
                    self.stats.empty_observed.incr();
                    return None;
                }
                RootOutcome::Below => return None,
                RootOutcome::Retry => backoff.wait(),
            }
        }
    }

    /// Slow path: take the maximum from the root, refill the pool with
    /// the next-best `batch` elements, and restore the mound invariant.
    fn extract_root(&self) -> RootOutcome<V> {
        self.extract_root_cond(None)
    }

    /// Root extraction with an optional priority threshold: with
    /// `Some(min)`, returns `Empty` (without extracting) when the root
    /// maximum — the global maximum, by the mound invariant — is below
    /// `min`.
    fn extract_root_cond(&self, min_prio: Option<u64>) -> RootOutcome<V> {
        let root = self.tree.root();
        // Attribute the whole root critical section (acquisition, refill,
        // swap-down and their nested lock waits) to the root site.
        let _site = zmsq_sync::site::enter(root_site());
        let acquired = match self.cfg.lock_strategy {
            LockStrategy::TryRestart => root.try_lock(),
            LockStrategy::Blocking => {
                root.lock();
                true
            }
        };
        if !acquired {
            // Likely a concurrent refiller; back off and retry the pool.
            self.stats.trylock_fails.incr();
            return RootOutcome::Retry;
        }
        let unwind = UnwindUnlock::one(root);
        // Someone may have refilled while we waited for the lock — we
        // raced another extractor to the same refill.
        if self.pool.has_items_locked() {
            self.stats.refill_races.incr();
            root.unlock();
            return RootOutcome::Retry;
        }
        if root.count() == 0 {
            // Empty root + exhausted pool == empty queue (see module docs).
            root.unlock();
            return RootOutcome::Empty;
        }
        if let Some(min) = min_prio {
            if root.max_key() < Some(min) {
                // Mound invariant: root.max is the global max, so nothing
                // qualifies.
                root.unlock();
                return RootOutcome::Below;
            }
        }
        // The last point where a panic is recoverable by unlocking: no
        // mutation has happened yet.
        fault::fail_point!("queue.extract.locked-panic");
        det::det_point!("zmsq.extract-root");
        drop(unwind);
        // From here to swap_down's return the window spans the root, the
        // pool and (transitively) children — unrecoverable mid-way.
        let _critical = AbortOnUnwind("root extraction");

        // SAFETY: root locked.
        let best = unsafe { root.set_mut().remove_max().expect("count > 0") };
        let remaining = root.count() - 1;
        if self.cfg.batch_max > 0 && remaining > 0 {
            let _refill = obs::span!(obs::SpanPhase::PoolRefill);
            // The *effective* batch: cfg.batch unless an adaptive
            // controller has moved it. Always within batch_min..=batch_max,
            // hence within the pool's allocated capacity.
            let n = remaining.min(self.batch_cur.load(Ordering::Relaxed).max(1));
            // SAFETY: `refill_scratch` is guarded by the root lock.
            let scratch = unsafe { &mut *self.refill_scratch.get() };
            scratch.clear();
            // SAFETY: root locked.
            unsafe { root.set_mut().drain_top(n, scratch) };
            self.pool.refill_locked(scratch);
            self.stats.pool_refills.incr();
            obs::trace_event!(obs::EventKind::PoolRefill, n as u32);
        }
        // SAFETY: root locked.
        unsafe { root.refresh_cache() };
        self.stats.root_extracts.incr();
        obs::trace_event!(obs::EventKind::RootAccess);
        {
            let _swap = obs::span!(obs::SpanPhase::SwapDown);
            self.swap_down((0, 0)); // consumes the root lock
        }
        RootOutcome::Got(best)
    }

    /// Restore `parent.max >= child.max` from `pos` downward by swapping
    /// sets with the larger child until the invariant holds (the mound's
    /// moundify, §2.2/§3.4). Precondition: node at `pos` locked; unlocks
    /// everything before returning.
    fn swap_down(&self, pos: Pos) {
        // A panic mid-swap can strand a nonempty child under an emptied
        // parent (breaking the emptiness chain) — abort.
        let _critical = AbortOnUnwind("swap_down");
        let mut pos = pos;
        loop {
            let node = self.tree.node(pos);
            if pos.0 >= self.tree.leaf_level() {
                node.unlock();
                return;
            }
            let (lp, rp) = Tree::<V, S, L>::children(pos);
            let (left, right) = (self.tree.node(lp), self.tree.node(rp));
            left.lock();
            right.lock();
            let (big_pos, big, small) = if left.max_key() >= right.max_key() {
                (lp, left, right)
            } else {
                (rp, right, left)
            };
            // Option ordering treats empty as −∞: an emptied parent keeps
            // sinking until its whole subtree below is empty, preserving
            // the emptiness chain.
            if big.max_key() <= node.max_key() {
                small.unlock();
                big.unlock();
                node.unlock();
                return;
            }
            // SAFETY: both locks held, distinct nodes.
            unsafe { node.swap_contents(big) };
            self.stats.swap_downs.incr();
            small.unlock();
            node.unlock();
            pos = big_pos; // `big` stays locked for the next round
        }
    }

    // ------------------------------------------------------------------
    // Blocking (§3.6)
    // ------------------------------------------------------------------

    /// Extract, parking the thread on the futex buffer while the queue is
    /// empty. Returns `None` only after [`Zmsq::close`] with the queue
    /// drained.
    ///
    /// # Panics
    ///
    /// If the queue was built without `blocking` enabled.
    pub fn extract_max_blocking(&self) -> Option<(u64, V)> {
        let events = self
            .events
            .as_ref()
            .expect("extract_max_blocking requires ZmsqConfig::blocking(true)");
        loop {
            if let Some(got) = self.extract_max() {
                return Some(got);
            }
            match events.wait_until(|| self.len_hint() > 0) {
                WaitOutcome::Closed => return self.extract_max(),
                WaitOutcome::TimedOut => unreachable!("untimed wait"),
                WaitOutcome::Ready | WaitOutcome::Woken => {}
            }
        }
    }

    /// Extract, parking up to `timeout` while the queue is empty.
    ///
    /// Returns `None` on timeout, on close-with-empty-queue, or if
    /// blocking is disabled and the queue is empty (degrades to a single
    /// non-blocking attempt).
    ///
    /// ```
    /// use zmsq::{Zmsq, ZmsqConfig};
    /// use std::time::Duration;
    /// let q: Zmsq<u64> = Zmsq::with_config(ZmsqConfig::default().blocking(true));
    /// assert_eq!(q.extract_max_timeout(Duration::from_millis(10)), None);
    /// q.insert(5, 5);
    /// assert_eq!(q.extract_max_timeout(Duration::from_millis(10)), Some((5, 5)));
    /// ```
    #[must_use = "a timed-out extraction returns None; ignoring it hides the stall"]
    pub fn extract_max_timeout(&self, timeout: std::time::Duration) -> Option<(u64, V)> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(got) = self.extract_max() {
                return Some(got);
            }
            let events = self.events.as_ref()?;
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            match events.wait_until_timeout(|| self.len_hint() > 0, remaining) {
                WaitOutcome::Closed => return self.extract_max(),
                WaitOutcome::TimedOut => return self.extract_max(),
                WaitOutcome::Ready | WaitOutcome::Woken => {}
            }
        }
    }

    /// Extract, spin-waiting while the queue is empty (§1's third
    /// consumer discipline, between [`Zmsq::extract_max`] and
    /// [`Zmsq::extract_max_blocking`]). Backs off exponentially and
    /// yields to the scheduler once the spin budget is exhausted.
    ///
    /// Returns `None` only if the queue was [`Zmsq::close`]d (requires
    /// blocking to be enabled for close to exist; without it this spins
    /// until an element arrives).
    pub fn extract_max_spinning(&self) -> Option<(u64, V)> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(got) = self.extract_max() {
                return Some(got);
            }
            if self.is_closed() {
                return self.extract_max();
            }
            backoff.wait();
        }
    }

    /// Wake all blocked consumers *and* blocked producers permanently
    /// (shutdown). Subsequent [`Zmsq::extract_max_blocking`] calls drain
    /// the queue and then return `None`; producers parked on a full
    /// [`ShedPolicy::Block`] queue wake and (for the fallible surface)
    /// see [`InsertError::Closed`].
    pub fn close(&self) {
        if let Some(ev) = &self.events {
            ev.close();
        }
        if let Some(pw) = &self.producer_wait {
            pw.close();
        }
    }

    /// Whether [`Zmsq::close`] has been called (always `false` when
    /// neither blocking nor a capacity bound is configured).
    pub fn is_closed(&self) -> bool {
        self.events.as_ref().is_some_and(|e| e.is_closed())
            || self.producer_wait.as_ref().is_some_and(|pw| pw.is_closed())
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    #[inline]
    fn acquire(&self, node: &TNode<V, S, L>) -> bool {
        let _site = zmsq_sync::site::enter(node_site());
        match self.cfg.lock_strategy {
            LockStrategy::TryRestart => {
                if node.try_lock() {
                    true
                } else {
                    self.stats.trylock_fails.incr();
                    false
                }
            }
            LockStrategy::Blocking => {
                node.lock();
                true
            }
        }
    }

    /// Extract everything, returning how many elements were drained.
    pub fn drain_count(&self) -> usize {
        let mut n = 0;
        while self.extract_max().is_some() {
            n += 1;
        }
        n
    }

    /// Per-node set-size statistics over nonempty non-leaf nodes —
    /// regenerates the §3.2 in-text experiment ("After initialization,
    /// count varied from 32 to 51 across all non-leaf nodes... the
    /// average count was 32 for all nodes (standard deviation 2.76)").
    /// Requires exclusive access (quiescence).
    pub fn set_size_stats(&mut self) -> SetSizeStats {
        let leaf = self.tree.leaf_level();
        let mut counts: Vec<usize> = Vec::new();
        self.tree.for_each_allocated(|pos, node| {
            if pos.0 < leaf && node.count() > 0 {
                counts.push(node.count());
            }
        });
        let n = counts.len();
        if n == 0 {
            return SetSizeStats::default();
        }
        let sum: usize = counts.iter().sum();
        let mean = sum as f64 / n as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        SetSizeStats {
            nonempty_nodes: n,
            mean,
            std_dev: var.sqrt(),
            min: counts.iter().copied().min().unwrap_or(0),
            max: counts.iter().copied().max().unwrap_or(0),
        }
    }

    /// Check every structural invariant. Requires exclusive access
    /// (hence `&mut self`), so it can read sets without locks.
    ///
    /// Verified invariants:
    /// 1. cached `max`/`min`/`count` match the set contents;
    /// 2. mound property: `parent.max >= child.max` (empty = −∞);
    /// 3. emptiness chain: a nonempty node has a nonempty parent;
    /// 4. no set exceeds `2 * target_len`.
    pub fn validate_invariants(&mut self) -> Result<(), String> {
        let cap = 2 * self.cfg.target_len;
        let mut problems = Vec::new();
        self.tree.for_each_allocated(|pos, node| {
            // SAFETY: exclusive &mut self access; no other threads.
            let set = unsafe { node.set_mut() };
            if set.len() != node.count() {
                problems.push(format!(
                    "{pos:?}: cached count {} != set len {}",
                    node.count(),
                    set.len()
                ));
            }
            if set.max_key() != node.max_key() && node.count() > 0 {
                problems.push(format!(
                    "{pos:?}: cached max {:?} != set max {:?}",
                    node.max_key(),
                    set.max_key()
                ));
            }
            if set.min_key() != node.min_key() && node.count() > 0 {
                problems.push(format!(
                    "{pos:?}: cached min {:?} != set min {:?}",
                    node.min_key(),
                    set.min_key()
                ));
            }
            if set.len() > cap && !self.tree.is_saturated() {
                problems.push(format!("{pos:?}: set len {} > cap {cap}", set.len()));
            }
            if pos.0 > 0 {
                let parent = self.tree.node(Tree::<V, S, L>::parent(pos));
                if node.max_key() > parent.max_key() {
                    problems.push(format!(
                        "{pos:?}: mound violation: node max {:?} > parent max {:?}",
                        node.max_key(),
                        parent.max_key()
                    ));
                }
                if node.count() > 0 && parent.count() == 0 {
                    problems.push(format!("{pos:?}: nonempty node under empty parent"));
                }
            }
        });
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }
}

impl<V: Send, S: NodeSet<V>, L: RawTryLock> Default for Zmsq<V, S, L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Send, S: NodeSet<V>, L: RawTryLock> std::fmt::Debug for Zmsq<V, S, L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Zmsq")
            .field("batch", &self.cfg.batch)
            .field("target_len", &self.cfg.target_len)
            .field("leaf_level", &self.tree.leaf_level())
            .field("len_hint", &self.len_hint())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArraySet, Reclamation};

    type ListQ = Zmsq<u64>;
    type ArrayQ = Zmsq<u64, ArraySet<u64>>;

    #[test]
    fn empty_queue_extracts_none() {
        let q = ListQ::new();
        assert_eq!(q.extract_max(), None);
        assert_eq!(q.len_hint(), 0);
        assert_eq!(q.stats().empty_observed, 1);
    }

    #[test]
    fn single_element_roundtrip() {
        let q = ListQ::new();
        q.insert(42, 420);
        assert_eq!(q.len_hint(), 1);
        assert_eq!(q.extract_max(), Some((42, 420)));
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn strict_mode_is_exact() {
        let q: ListQ = Zmsq::with_config(ZmsqConfig::strict());
        let keys = [17u64, 3, 99, 45, 99, 2, 63, 0, 1000];
        for &k in &keys {
            q.insert(k, k);
        }
        let mut sorted: Vec<u64> = keys.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for expect in sorted {
            assert_eq!(q.extract_max().map(|p| p.0), Some(expect));
        }
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn strict_mode_many_random() {
        let q: ListQ = Zmsq::with_config(ZmsqConfig::strict().target_len(8));
        let mut keys: Vec<u64> = (0..5000).map(|i| (i * 2654435761u64) % 100_000).collect();
        for &k in &keys {
            q.insert(k, k);
        }
        keys.sort_unstable_by(|a, b| b.cmp(a));
        for &expect in &keys {
            assert_eq!(q.extract_max().map(|p| p.0), Some(expect));
        }
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn relaxed_mode_conserves_elements() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(12));
        let n = 10_000u64;
        let mut expect_sum = 0u64;
        for i in 0..n {
            let k = (i * 48271) % 65536;
            expect_sum += k;
            q.insert(k, k);
        }
        let mut got_sum = 0u64;
        let mut got_n = 0u64;
        while let Some((k, v)) = q.extract_max() {
            assert_eq!(k, v);
            got_sum += k;
            got_n += 1;
        }
        assert_eq!(got_n, n);
        assert_eq!(got_sum, expect_sum);
    }

    #[test]
    fn insert_batch_of_low_keys_terminates() {
        // Regression: `select_position` may only hand out *forced*
        // positions (deep under-full leaves whose max exceeds the key —
        // valid solely for single non-max placements). The chunked bulk
        // path used to accept one and retry the impossible regular
        // placement forever. Build that state — a grown tree where every
        // leaf holds a few high keys — then bulk-insert keys below all
        // of them.
        let q = ListQ::with_config(ZmsqConfig::default().batch(4).target_len(6));
        for i in 0..600u64 {
            q.insert(10_000 + (i * 48271) % 50_000, i);
        }
        let mut low: Vec<(u64, u64)> = (0..32).map(|i| (i, i)).collect();
        q.insert_batch(&mut low);
        assert!(low.is_empty());
        assert_eq!(q.len_hint(), 632);
        let mut got = 0;
        while q.extract_max().is_some() {
            got += 1;
        }
        assert_eq!(got, 632);
    }

    #[test]
    fn relaxation_bound_holds_single_threaded() {
        // §3.7: k * batch consecutive extractions return the top k
        // elements. Single-threaded, quiescent: extract batch+1 and the
        // true max must be among them.
        for batch in [1usize, 4, 16] {
            let q = ListQ::with_config(ZmsqConfig::default().batch(batch).target_len(batch.max(8)));
            for i in 0..2000u64 {
                q.insert(i, i);
            }
            let mut window = Vec::new();
            for _ in 0..=batch {
                window.push(q.extract_max().unwrap().0);
            }
            assert!(
                window.contains(&1999),
                "batch={batch}: max not in first batch+1 extractions: {window:?}"
            );
        }
    }

    #[test]
    fn invariants_after_mixed_single_threaded() {
        let mut q = ListQ::with_config(ZmsqConfig::default().batch(16).target_len(16));
        let mut x = 7u64;
        for i in 0..30_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 3 != 2 {
                q.insert(x % 1_000_000, x);
            } else {
                q.extract_max();
            }
        }
        q.validate_invariants().unwrap();
    }

    #[test]
    fn array_set_variant_works() {
        let q = ArrayQ::with_config(ZmsqConfig::default().batch(8).target_len(12));
        for i in 0..5000u64 {
            q.insert(i % 97, i);
        }
        assert_eq!(q.drain_count(), 5000);
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn all_reclamation_modes_roundtrip() {
        for mode in [
            Reclamation::Hazard,
            Reclamation::ConsumerWait,
            Reclamation::Leak,
        ] {
            let q = ListQ::with_config(
                ZmsqConfig::default()
                    .batch(4)
                    .target_len(8)
                    .reclamation(mode),
            );
            for i in 0..1000u64 {
                q.insert(i, i);
            }
            assert_eq!(q.drain_count(), 1000, "mode {mode:?}");
            if mode == Reclamation::Leak {
                assert!(q.leaked_buffers() > 0, "leak mode should leak buffers");
            }
        }
    }

    #[test]
    fn zero_priority_elements_are_not_lost() {
        // Priority 0 exercises the empty-set sentinel edge cases.
        let q = ListQ::with_config(ZmsqConfig::default().batch(4).target_len(4));
        for _ in 0..100 {
            q.insert(0, 0);
        }
        q.insert(5, 5);
        assert_eq!(q.drain_count(), 101);
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn duplicate_priorities() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(8));
        for i in 0..1000u64 {
            q.insert(7, i);
        }
        let mut vals: Vec<u64> = std::iter::from_fn(|| q.extract_max().map(|p| p.1)).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn stats_track_operations() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(8));
        for i in 0..500u64 {
            q.insert(i, i);
        }
        let drained = q.drain_count();
        let s = q.stats();
        assert_eq!(s.inserts, 500);
        assert_eq!(s.extracts as usize, drained);
        assert!(s.pool_hits > 0, "relaxed mode must hit the pool");
        assert!(s.pool_refills > 0);
        assert!(
            s.root_access_ratio() < 0.5,
            "most extractions avoid the root"
        );
    }

    #[test]
    fn drop_with_elements_does_not_leak_values() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicU64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicU64::new(0));
        {
            let q: Zmsq<D> = Zmsq::with_config(ZmsqConfig::default().batch(4).target_len(4));
            for i in 0..200u64 {
                live.fetch_add(1, Ordering::SeqCst);
                q.insert(i, D(Arc::clone(&live)));
            }
            // Pull a few so some values sit in the pool at drop time.
            for _ in 0..3 {
                q.extract_max();
            }
        }
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "tree + pool values all dropped"
        );
    }

    #[test]
    fn spinning_extraction_waits_for_producer() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = ListQ::with_config(ZmsqConfig::default().batch(4).target_len(8).blocking(true));
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            let (q2, got2) = (&q, &got);
            s.spawn(move || {
                while q2.extract_max_spinning().is_some() {
                    got2.fetch_add(1, Ordering::Relaxed);
                }
            });
            for i in 0..500u64 {
                q.insert(i, i);
                if i % 100 == 0 {
                    std::thread::yield_now();
                }
            }
            while got.load(Ordering::Relaxed) < 500 {
                std::thread::yield_now();
            }
            q.close();
        });
        assert_eq!(got.into_inner(), 500);
    }

    #[test]
    fn blocking_misconfiguration_panics() {
        let q = ListQ::new();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.extract_max_blocking()));
        assert!(err.is_err());
    }

    #[test]
    fn os_lock_and_blocking_strategy() {
        use zmsq_sync::OsLock;
        let q: Zmsq<u64, ListSet<u64>, OsLock> = Zmsq::with_config(
            ZmsqConfig::default()
                .batch(8)
                .target_len(8)
                .lock_strategy(LockStrategy::Blocking),
        );
        for i in 0..2000u64 {
            q.insert(i, i);
        }
        assert_eq!(q.drain_count(), 2000);
    }

    #[test]
    fn insert_batch_roundtrip_and_order() {
        let q: ListQ = Zmsq::with_config(ZmsqConfig::strict().target_len(8));
        let mut items: Vec<(u64, u64)> = (0..1000u64).map(|i| ((i * 7919) % 5000, i)).collect();
        let mut expect: Vec<u64> = items.iter().map(|&(k, _)| k).collect();
        q.insert_batch(&mut items);
        assert!(items.is_empty(), "batch must be drained");
        assert_eq!(q.len_hint(), 1000);
        expect.sort_unstable_by(|a, b| b.cmp(a));
        for &e in &expect {
            assert_eq!(q.extract_max().map(|p| p.0), Some(e), "strict order");
        }
    }

    #[test]
    fn insert_batch_mixed_with_single_inserts() {
        let mut q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(12));
        let mut total = 0u64;
        for round in 0..50u64 {
            let mut batch: Vec<(u64, u64)> =
                (0..37u64).map(|i| ((round * 37 + i) % 1000, i)).collect();
            total += batch.len() as u64;
            q.insert_batch(&mut batch);
            q.insert(round, round);
            total += 1;
            if round % 3 == 0 && q.extract_max().is_some() {
                total -= 1;
            }
        }
        q.validate_invariants().unwrap();
        assert_eq!(q.drain_count() as u64, total);
    }

    #[test]
    fn insert_batch_empty_is_noop() {
        let q = ListQ::new();
        let mut empty: Vec<(u64, u64)> = Vec::new();
        q.insert_batch(&mut empty);
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn insert_batch_concurrent_conservation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = ListQ::with_config(ZmsqConfig::default().batch(16).target_len(16));
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, got) = (&q, &got);
                s.spawn(move || {
                    for round in 0..50u64 {
                        let mut batch: Vec<(u64, u64)> = (0..40u64)
                            .map(|i| ((t * 1000 + round * 40 + i) % 7777, i))
                            .collect();
                        q.insert_batch(&mut batch);
                        for _ in 0..20 {
                            if q.extract_max().is_some() {
                                got.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let rest = q.drain_count() as u64;
        assert_eq!(got.into_inner() + rest, 4 * 50 * 40);
    }

    #[test]
    fn extract_batch_drains_and_conserves() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(12));
        for i in 0..500u64 {
            q.insert(i, i);
        }
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 123), 123);
        assert_eq!(out.len(), 123);
        // Batched hand-out stays high-quality: the best elements come out
        // well before the worst (same relaxation window as extract_max).
        let mean: u64 = out.iter().map(|&(k, _)| k).sum::<u64>() / 123;
        assert!(mean > 350, "batched extraction rank too low: mean {mean}");
        assert_eq!(q.extract_batch(&mut out, 1_000), 377);
        assert_eq!(q.extract_batch(&mut out, 4), 0);
        let mut keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..500).collect::<Vec<_>>(), "elements lost");
    }

    #[test]
    fn extract_batch_strict_is_exact() {
        let q: ListQ = Zmsq::with_config(ZmsqConfig::strict());
        for k in [3u64, 9, 1, 7] {
            q.insert(k, k);
        }
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 10), 4);
        let keys: Vec<u64> = out.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![9, 7, 3, 1], "strict mode must be exact");
    }

    #[test]
    fn extract_batch_concurrent_conservation() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = ListQ::with_config(ZmsqConfig::default().batch(16).target_len(16));
        let got = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (q, got) = (&q, &got);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..100u64 {
                        for i in 0..20u64 {
                            q.insert((t * 2000 + round * 20 + i) % 7777, i);
                        }
                        out.clear();
                        got.fetch_add(q.extract_batch(&mut out, 10) as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        let rest = q.drain_count() as u64;
        assert_eq!(got.into_inner() + rest, 4 * 100 * 20);
    }

    #[test]
    fn current_batch_moves_within_configured_range() {
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .target_len(32)
                .batch(8)
                .adaptive_batch(2, 32),
        );
        assert_eq!(q.current_batch(), 8);
        assert_eq!(q.set_current_batch(64), 32, "clamped to batch_max");
        assert_eq!(q.set_current_batch(0), 2, "clamped to batch_min");
        assert_eq!(q.set_current_batch(16), 16);
        // The widened batch is honoured by the next refill, and the
        // ConsumerWait buffer (allocated at batch_max) can hold it.
        for i in 0..500u64 {
            q.insert(i, i);
        }
        q.extract_max().unwrap();
        let s = q.stats();
        assert!(s.pool_refills >= 1);
        // Non-adaptive queues refuse to move.
        let fixed = ListQ::with_config(ZmsqConfig::default().batch(8));
        assert_eq!(fixed.set_current_batch(100), 8);
        let strict: ListQ = Zmsq::with_config(ZmsqConfig::strict());
        assert_eq!(strict.set_current_batch(100), 0);
        assert_eq!(strict.current_batch(), 0);
    }

    #[test]
    fn adaptive_consumer_wait_buffer_fits_widened_batch() {
        // ConsumerWait reuses one fixed buffer: it must be allocated at
        // batch_max, not the starting batch, or a widened refill would
        // overflow it.
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .target_len(32)
                .reclamation(Reclamation::ConsumerWait)
                .batch(2)
                .adaptive_batch(2, 48),
        );
        q.set_current_batch(48);
        for i in 0..500u64 {
            q.insert(i, i);
        }
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 500), 500);
        assert!(q.stats().pool_hits > 0);
    }

    #[test]
    fn peek_max_hint_tracks_quiescent_max() {
        let q: ListQ = Zmsq::with_config(ZmsqConfig::strict());
        assert_eq!(q.peek_max_hint(), None);
        q.insert(5, 5);
        assert_eq!(q.peek_max_hint(), Some(5));
        q.insert(9, 9);
        assert_eq!(q.peek_max_hint(), Some(9));
        q.extract_max();
        assert_eq!(q.peek_max_hint(), Some(5));
    }

    #[test]
    fn fast_pool_insert_disabled_by_default() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(8));
        for i in 0..500u64 {
            q.insert(i, i);
        }
        q.drain_count();
        assert_eq!(q.stats().fast_pool_inserts, 0);
    }

    #[test]
    fn fast_pool_insert_extracted_immediately() {
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(8)
                .target_len(8)
                .pool_fast_insert(true),
        );
        for i in 0..500u64 {
            q.insert(i, i);
        }
        // Prime the pool, then drain a little so there is headroom (a
        // fresh refill fills every slot; the fast path needs a free slot
        // above the current top).
        for _ in 0..3 {
            q.extract_max();
        }
        // A new global max should take the fast path and come straight
        // back out — the §5 "extracted immediately" property.
        q.insert(10_000, 10_000);
        let s = q.stats();
        assert!(s.fast_pool_inserts >= 1, "fast path should fire: {s:?}");
        assert_eq!(q.extract_max(), Some((10_000, 10_000)));
    }

    #[test]
    fn fast_pool_insert_conserves_under_concurrency() {
        use std::sync::atomic::{AtomicU64, Ordering};
        for mode in [
            Reclamation::Hazard,
            Reclamation::ConsumerWait,
            Reclamation::Leak,
        ] {
            let q = ListQ::with_config(
                ZmsqConfig::default()
                    .batch(8)
                    .target_len(12)
                    .reclamation(mode)
                    .pool_fast_insert(true),
            );
            let got = AtomicU64::new(0);
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let (q, got) = (&q, &got);
                    s.spawn(move || {
                        let mut x = 0xFA57_0000 + t;
                        for i in 0..5_000u64 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            q.insert(x % 100_000, x);
                            if i % 2 == 0 && q.extract_max().is_some() {
                                got.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            let rest = q.drain_count() as u64;
            assert_eq!(got.into_inner() + rest, 20_000, "{mode:?}");
            assert!(
                q.stats().fast_pool_inserts > 0,
                "{mode:?}: fast path should fire under churn"
            );
        }
    }

    #[test]
    fn fast_pool_insert_values_dropped() {
        use std::sync::atomic::{AtomicI64, Ordering};
        use std::sync::Arc;
        struct D(Arc<AtomicI64>);
        impl Drop for D {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicI64::new(0));
        {
            let q: Zmsq<D> = Zmsq::with_config(
                ZmsqConfig::default()
                    .batch(4)
                    .target_len(6)
                    .pool_fast_insert(true),
            );
            for i in 0..500u64 {
                live.fetch_add(1, Ordering::SeqCst);
                q.insert(i, D(Arc::clone(&live)));
                if i % 3 == 0 {
                    drop(q.extract_max());
                }
            }
            // Queue drops with elements in tree + pool (some fast-inserted).
        }
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "no value leaked via fast path"
        );
    }

    #[test]
    fn conditional_extraction_respects_threshold() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(12));
        for i in 0..1000u64 {
            q.insert(i, i);
        }
        // High threshold: everything returned must qualify.
        let mut got = 0;
        while let Some((k, _)) = q.try_extract_if(900) {
            assert!(k >= 900, "below-threshold element {k} returned");
            got += 1;
        }
        assert!(
            got >= 90,
            "most of the top 100 should be extractable: {got}"
        );
        // Impossible threshold: nothing comes out, nothing is lost.
        assert_eq!(q.try_extract_if(5000), None);
        assert_eq!(q.drain_count() as u64, 1000 - got);
    }

    #[test]
    fn conditional_extraction_strict_mode_is_exact() {
        let q: ListQ = Zmsq::with_config(ZmsqConfig::strict());
        for k in [10u64, 20, 30] {
            q.insert(k, k);
        }
        assert_eq!(q.try_extract_if(25), Some((30, 30)));
        assert_eq!(q.try_extract_if(25), None, "20 < 25");
        assert_eq!(q.try_extract_if(0), Some((20, 20)));
        assert_eq!(q.try_extract_if(10), Some((10, 10)));
        assert_eq!(q.try_extract_if(0), None, "empty");
    }

    #[test]
    fn conditional_extraction_on_empty_queue() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(4).target_len(8));
        assert_eq!(q.try_extract_if(0), None);
        assert_eq!(q.try_extract_if(u64::MAX), None);
    }

    #[test]
    fn conditional_extraction_concurrent_conservation() {
        let q = ListQ::with_config(ZmsqConfig::default().batch(8).target_len(12));
        use std::sync::atomic::{AtomicU64, Ordering};
        let taken = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let taken = &taken;
                s.spawn(move || {
                    for i in 0..4000u64 {
                        q.insert((t * 4000 + i) % 10_000, i);
                        if i % 2 == 0 {
                            if let Some((k, _)) = q.try_extract_if(5_000) {
                                assert!(k >= 5_000);
                                taken.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let rest = q.drain_count() as u64;
        assert_eq!(taken.into_inner() + rest, 16_000);
    }

    #[test]
    fn interleaved_refills_preserve_quality() {
        // After heavy mixing, extractions should still return elements
        // far above the median (quality smoke test, quantified properly
        // by the accuracy harness in `workloads`).
        let q = ListQ::with_config(ZmsqConfig::default().batch(32).target_len(48));
        for i in 0..100_000u64 {
            q.insert(i, i);
        }
        let mut below_median = 0;
        for _ in 0..1000 {
            if q.extract_max().unwrap().0 < 50_000 {
                below_median += 1;
            }
        }
        assert!(
            below_median < 50,
            "{below_median} / 1000 extractions below median"
        );
    }

    /// A panic injected while an insert holds TNode locks must release
    /// them (via [`UnwindUnlock`]) — the queue stays fully operational
    /// and only the in-flight element is lost.
    #[test]
    #[cfg(feature = "fault-inject")]
    fn injected_insert_panic_releases_locks() {
        let _x = fault::exclusive();
        fault::reset();
        fault::set_seed(0xBAD_1257);
        let q = ListQ::with_config(ZmsqConfig::default().batch(4).target_len(8));
        for i in 0..100u64 {
            q.insert(i, i);
        }
        fault::configure(
            "queue.insert.locked-panic",
            fault::Policy::new(fault::Trigger::Once).with_action(fault::Action::Panic("injected")),
        );
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.insert(1000, 1000);
        }));
        assert!(r.is_err(), "failpoint should have panicked the insert");
        assert_eq!(fault::hit_count("queue.insert.locked-panic"), 1);
        fault::reset();
        // The panicking insert lost its element but nothing else; locks
        // are free so both inserts and a full drain complete.
        for i in 0..100u64 {
            q.insert(i + 200, i);
        }
        let mut q = q;
        q.validate_invariants().unwrap();
        assert_eq!(q.drain_count(), 200);
    }

    /// A panic injected under the root lock during extraction fires
    /// *before* any mutation, so nothing is lost: the guard unlocks the
    /// root and every element remains extractable.
    #[test]
    #[cfg(feature = "fault-inject")]
    fn injected_extract_panic_loses_nothing() {
        let _x = fault::exclusive();
        fault::reset();
        fault::set_seed(0xBADEA7);
        let q = ListQ::with_config(ZmsqConfig::default().batch(4).target_len(8));
        let n = 500u64;
        for i in 0..n {
            q.insert(i, i);
        }
        fault::configure(
            "queue.extract.locked-panic",
            fault::Policy::new(fault::Trigger::Once).with_action(fault::Action::Panic("injected")),
        );
        let mut panicked = 0u32;
        let mut drained = 0u64;
        // Keep extracting through the injected panic; pool-served hits
        // don't touch the root, so retry until the failpoint fires.
        while drained < n {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.extract_max())) {
                Ok(Some(_)) => drained += 1,
                Ok(None) => break,
                Err(_) => panicked += 1,
            }
        }
        // hit_count counts evaluations (one per root refill); Once fires
        // exactly one of them as a panic.
        assert!(fault::hit_count("queue.extract.locked-panic") >= 1);
        assert_eq!(panicked, 1, "Once trigger fires exactly one panic");
        assert_eq!(drained, n, "extraction panic must not lose elements");
        fault::reset();
    }

    /// Regression: `extract_max_timeout` must charge spurious wakeups
    /// against the *original* deadline, not restart the full timeout on
    /// every `Woken`. With every futex wait returning spuriously, a
    /// restarting implementation would never time out.
    #[test]
    #[cfg(feature = "fault-inject")]
    fn timeout_deadline_survives_spurious_wakeups() {
        let _x = fault::exclusive();
        fault::reset();
        fault::set_seed(0x713E_0417);
        fault::configure(
            "futex.spurious-wake",
            fault::Policy::new(fault::Trigger::Always),
        );
        let q = ListQ::with_config(ZmsqConfig::default().blocking(true));
        let timeout = std::time::Duration::from_millis(50);
        let start = std::time::Instant::now();
        let got = q.extract_max_timeout(timeout);
        let elapsed = start.elapsed();
        assert!(
            fault::hit_count("futex.spurious-wake") > 0,
            "failpoint off-path"
        );
        fault::reset();
        assert_eq!(got, None);
        assert!(
            elapsed >= timeout,
            "returned before the deadline: {elapsed:?}"
        );
        assert!(
            elapsed < timeout * 20,
            "deadline restarted under spurious wakeups: {elapsed:?}"
        );
    }

    // ------------------------------------------------------------------
    // Capacity, backpressure and shedding
    // ------------------------------------------------------------------

    #[test]
    fn unbounded_queue_try_insert_always_admits() {
        let q = ListQ::new();
        for i in 0..100u64 {
            q.try_insert(i, i).unwrap();
        }
        assert_eq!(q.capacity(), None);
        assert_eq!(q.occupancy(), 0, "no accounting when unbounded");
        assert_eq!(q.drain_count(), 100);
    }

    #[test]
    fn reject_policy_sheds_overflow_and_conserves() {
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(4)
                .target_len(8)
                .capacity(10)
                .shed_policy(ShedPolicy::Reject),
        );
        for i in 0..50u64 {
            q.insert(i, i);
        }
        assert_eq!(q.occupancy(), 10);
        let s = q.stats();
        assert_eq!(s.inserts, 10, "only admitted elements count as inserts");
        assert_eq!(s.capacity_hits, 40);
        assert_eq!(s.shed_rejected, 40);
        assert_eq!(s.shed_evicted, 0);
        assert_eq!(s.shed_total(), 40);
        assert_eq!(q.drain_count(), 10);
        assert_eq!(q.occupancy(), 0);
        // Conservation identity: admitted − extracted − evicted == live.
        let s = q.stats();
        assert_eq!(s.inserts - s.extracts - s.shed_evicted, 0);
    }

    #[test]
    fn try_insert_full_hands_the_element_back() {
        let q: Zmsq<String> = Zmsq::with_config(
            ZmsqConfig::default()
                .capacity(2)
                .shed_policy(ShedPolicy::Block),
        );
        q.try_insert(1, "a".into()).unwrap();
        q.try_insert(2, "b".into()).unwrap();
        let err = q.try_insert(3, "c".into()).unwrap_err();
        match err {
            InsertError::Full(v) => assert_eq!(v, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Room frees after an extraction.
        q.extract_max().unwrap();
        q.try_insert(3, "c".into()).unwrap();
        assert_eq!(q.occupancy(), 2);
    }

    #[test]
    fn shed_lowest_evicts_low_priorities_for_high() {
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(4)
                .target_len(8)
                .capacity(64)
                .shed_policy(ShedPolicy::ShedLowest),
        );
        // Fill with low priorities, then offer strictly higher ones.
        for i in 0..64u64 {
            q.insert(i, i);
        }
        for i in 1000..1064u64 {
            q.insert(i, i);
        }
        let s = q.stats();
        assert!(
            s.shed_evicted > 0,
            "high-priority arrivals must displace low ones: {s:?}"
        );
        assert_eq!(
            s.inserts - s.extracts - s.shed_evicted,
            64,
            "reservation transfer keeps the live count at capacity"
        );
        assert_eq!(q.occupancy(), 64);
        let mut keys = Vec::new();
        while let Some((k, _)) = q.extract_max() {
            keys.push(k);
        }
        assert_eq!(keys.len(), 64);
        // Each of the 64 over-capacity arrivals either evicted a victim
        // (and was admitted) or was shed itself — never both.
        assert_eq!(s.shed_evicted + s.shed_rejected, 64);
        let high = keys.iter().filter(|&&k| k >= 1000).count();
        assert!(high > 0, "no high-priority element displaced a low one");
    }

    #[test]
    fn shed_lowest_never_admits_below_current_floor() {
        // try_insert under ShedLowest returns Full (keeping the element)
        // when nothing in the queue is lower than the incoming priority.
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .capacity(4)
                .shed_policy(ShedPolicy::ShedLowest),
        );
        for i in 10..14u64 {
            q.insert(i, i);
        }
        let err = q.try_insert(5, 5).unwrap_err();
        assert!(matches!(err, InsertError::Full(5)));
        assert_eq!(q.stats().shed_evicted, 0);
        assert_eq!(q.drain_count(), 4);
    }

    #[test]
    fn shed_lowest_invariants_survive_churn() {
        let mut q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(8)
                .target_len(8)
                .capacity(200)
                .shed_policy(ShedPolicy::ShedLowest),
        );
        let mut x = 0x5EED_u64;
        for i in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if i % 4 == 3 {
                q.extract_max();
            } else {
                q.insert(x % 100_000, x);
            }
        }
        q.validate_invariants().unwrap();
        let s = q.stats();
        assert!(s.shed_evicted > 0, "churn above capacity must evict");
        assert_eq!(
            q.drain_count() as u64,
            s.inserts - s.extracts - s.shed_evicted,
            "conservation: every admitted element is extractable or evicted"
        );
    }

    #[test]
    fn block_policy_parks_producers_until_extraction() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(2)
                .target_len(4)
                .capacity(4)
                .shed_policy(ShedPolicy::Block),
        );
        let produced = AtomicU64::new(0);
        let consumed = AtomicU64::new(0);
        const N: u64 = 2000;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let (q, produced) = (&q, &produced);
                s.spawn(move || {
                    for i in 0..N / 2 {
                        q.insert(t * 1000 + i, i);
                        produced.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let (q, consumed) = (&q, &consumed);
            s.spawn(move || {
                while consumed.load(Ordering::Relaxed) < N {
                    if q.extract_max().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
        assert_eq!(produced.into_inner(), N, "no producer lost an element");
        assert_eq!(consumed.into_inner(), N);
        assert_eq!(q.occupancy(), 0);
        let s = q.stats();
        assert_eq!(s.inserts, N);
        assert_eq!(s.shed_rejected + s.shed_evicted, 0, "Block never sheds");
        assert!(
            s.producer_waits > 0,
            "capacity 4 vs 2000 elements must park producers: {s:?}"
        );
    }

    #[test]
    fn insert_timeout_times_out_on_full_block_queue() {
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .capacity(1)
                .shed_policy(ShedPolicy::Block),
        );
        q.insert(1, 1);
        let start = std::time::Instant::now();
        let err = q
            .insert_timeout(2, 2, std::time::Duration::from_millis(40))
            .unwrap_err();
        assert!(matches!(err, InsertError::Timeout(2)), "{err:?}");
        assert!(start.elapsed() >= std::time::Duration::from_millis(40));
        // The failed insert must not leak an occupancy slot.
        assert_eq!(q.occupancy(), 1);
        assert_eq!(q.drain_count(), 1);
        assert_eq!(q.occupancy(), 0);
    }

    /// Satellite regression: a producer parked on a full `Block`-policy
    /// queue is woken by `close()` and reports `InsertError::Closed`.
    #[test]
    fn close_wakes_parked_producer_with_closed_error() {
        let q: ListQ = Zmsq::with_config(
            ZmsqConfig::default()
                .capacity(1)
                .shed_policy(ShedPolicy::Block),
        );
        q.insert(1, 1);
        std::thread::scope(|s| {
            let q2 = &q;
            let parked =
                s.spawn(move || q2.insert_timeout(2, 2, std::time::Duration::from_secs(60)));
            // Wait until the producer is actually parked, then close.
            while q.producer_waiters() == 0 {
                std::thread::yield_now();
            }
            q.close();
            let err = parked.join().unwrap().unwrap_err();
            assert!(matches!(err, InsertError::Closed(2)), "{err:?}");
        });
        assert!(q.is_closed());
        // Fallible inserts refuse outright after close.
        assert!(matches!(
            q.try_insert(9, 9).unwrap_err(),
            InsertError::Closed(9)
        ));
        // The infallible surface force-admits rather than losing work.
        q.insert(3, 3);
        assert_eq!(q.drain_count(), 2);
    }

    #[test]
    fn close_force_admits_infallible_blocked_insert() {
        let q: ListQ = Zmsq::with_config(
            ZmsqConfig::default()
                .capacity(1)
                .shed_policy(ShedPolicy::Block),
        );
        q.insert(1, 1);
        std::thread::scope(|s| {
            let q2 = &q;
            let blocked = s.spawn(move || q2.insert(2, 2));
            while q.producer_waiters() == 0 {
                std::thread::yield_now();
            }
            q.close();
            blocked.join().unwrap();
        });
        // Both elements are present: close never drops an infallible
        // insert's element.
        assert_eq!(q.drain_count(), 2);
    }

    #[test]
    fn bounded_batches_conserve() {
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(4)
                .target_len(8)
                .capacity(16)
                .shed_policy(ShedPolicy::Reject),
        );
        let mut items: Vec<(u64, u64)> = (0..64u64).map(|i| (i, i)).collect();
        q.insert_batch(&mut items);
        assert!(items.is_empty());
        assert_eq!(q.occupancy(), 16);
        let s = q.stats();
        assert_eq!(s.inserts, 16);
        assert_eq!(s.shed_rejected, 48);
        let mut out = Vec::new();
        assert_eq!(q.extract_batch(&mut out, 64), 16);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    #[cfg(feature = "fault-inject")]
    fn injected_capacity_race_keeps_accounting_exact() {
        let _x = fault::exclusive();
        fault::reset();
        fault::set_seed(0xCAFE_CA9);
        // Stretch the admit→insert and release→signal windows while
        // producers and consumers race at a tiny capacity.
        fault::configure(
            "queue.capacity.race",
            fault::Policy::new(fault::Trigger::Prob(0.2)).with_action(fault::Action::SleepMs(1)),
        );
        let q = ListQ::with_config(
            ZmsqConfig::default()
                .batch(2)
                .target_len(4)
                .capacity(8)
                .shed_policy(ShedPolicy::Reject),
        );
        use std::sync::atomic::{AtomicU64, Ordering};
        let taken = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..300u64 {
                        let _ = q.try_insert((t * 300 + i) % 97, i);
                    }
                });
            }
            let (q, taken) = (&q, &taken);
            s.spawn(move || {
                for _ in 0..400 {
                    if q.extract_max().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        });
        assert!(fault::hit_count("queue.capacity.race") > 0, "off-path");
        fault::reset();
        let rest = q.drain_count() as u64;
        let s = q.stats();
        assert_eq!(s.inserts, taken.into_inner() + rest, "conservation");
        assert_eq!(q.occupancy(), 0, "every slot released exactly once");
    }
}
